"""Chaos benchmark for the resilient serving stack, as JSON.

Drives a 16-client tile-scoring workload (12 in-process + 4 socket
clients, all with deadlines and retry policies) against a process-sharded
service through three phases:

* **baseline** — no faults: steady-state throughput of the healthy stack;
* **chaos** — a count-bounded :class:`~repro.serving.faults.FaultPlan`
  kills a shard worker, SIGSTOPs another (alive but unresponsive — the
  watchdog's failure mode), corrupts a checkpoint blob in flight, and
  drops socket connections mid-stream, all while the clients keep
  querying. Every request's outcome is classified as ``ok`` (correct
  learned answer), ``degraded`` (analytical fallback, tagged on the
  wire), ``typed_error`` (a typed serving fault), or ``untyped_error``
  (anything else — a resilience bug);
* **recovery** — the plan is exhausted; throughput is re-measured on the
  healed stack.

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration (fewer
clients/requests, no gates — chaos timing at smoke scale is too noisy to
gate on, though crashes still fail). Output is one JSON object on stdout.
In full mode the exit code enforces the resilience acceptance bars:

* zero hung client threads (every client joins within its timeout);
* 100% of chaos-phase requests resolve as answer | degraded | typed
  error — no untyped errors, no unresolved requests;
* recovered throughput >= 0.9x the no-chaos baseline;
* the chaos phase actually exercised the machinery: at least one worker
  respawn, and the fault plan fully fired.
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import Scalers, build_tile_dataset  # noqa: E402
from repro.models import LearnedPerformanceModel, ModelConfig  # noqa: E402
from repro.models.trainer import TrainResult  # noqa: E402
from repro.serving import (  # noqa: E402
    CostModelService,
    FaultInjector,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    ServiceConfig,
    ServiceEvaluator,
    ServingFault,
    SocketEvaluator,
    SocketFrontend,
)
from repro.workloads import vision  # noqa: E402

from harness import stamp_report  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

CHUNK = 4  # candidate tiles per request
CLIENTS = 6 if FAST else 16
SOCKET_CLIENTS = 2 if FAST else 4  # of CLIENTS, how many go over TCP
REQUESTS_PER_CLIENT = 6 if FAST else 30
CLIENT_JOIN_TIMEOUT_S = 120.0 if FAST else 240.0
DEADLINE_S = 60.0
RETRY = RetryPolicy(max_attempts=8, base_backoff_s=0.02, max_backoff_s=0.25)


def _chaos_plan() -> FaultPlan:
    """The count-bounded chaos schedule: every rule fires a fixed number
    of times, so the plan is exhausted before the recovery phase."""
    return FaultPlan(
        rules=(
            FaultRule(hook="executor.dispatch", kind="kill", after=2, count=1),
            FaultRule(hook="executor.dispatch", kind="hang", after=8, count=1),
            FaultRule(hook="registry.load", kind="corrupt", count=1),
            FaultRule(hook="frontend.recv", kind="drop", after=4, count=2,
                      every_n=5),
        ),
        seed=7,
    )


def _workload(records, requests_per_client: int):
    kernels = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            kernels.append((record.kernel, tiles))
    stream = []
    for i in range(requests_per_client):
        kernel, tiles = kernels[i % len(kernels)]
        start = (i * CHUNK) % (len(tiles) - CHUNK + 1)
        stream.append((kernel, tiles[start:start + CHUNK]))
    return stream


def _run_phase(service, address, stream) -> dict:
    """One measured pass of the mixed client fleet; outcome counts.

    Every client stamps deadlines and retries typed transient faults; the
    phase's contract accounting is per request: ok / degraded /
    typed_error / untyped_error, plus unresolved (a thread that never
    finished its stream) and hung (a thread that failed to join).
    """
    counts = {"ok": 0, "degraded": 0, "typed_error": 0, "untyped_error": 0}
    lock = threading.Lock()
    finished = [False] * CLIENTS
    barrier = threading.Barrier(CLIENTS + 1)

    def run_client(index: int) -> None:
        # Client i's own rotation of the stream: independent tuners, so
        # chaos hits a mixed-kernel batch stream, not one lockstep query.
        rotation = (index * len(stream)) // CLIENTS
        my_stream = stream[rotation:] + stream[:rotation]
        if index < SOCKET_CLIENTS:
            client = SocketEvaluator(
                address, timeout_s=DEADLINE_S,
                deadline_s=DEADLINE_S, retry=RETRY,
            )
        else:
            client = ServiceEvaluator(
                service, timeout_s=DEADLINE_S,
                deadline_s=DEADLINE_S, retry=RETRY,
            )
        barrier.wait()
        try:
            for kernel, tiles in my_stream:
                try:
                    client.score_tiles_batched(kernel, tiles)
                    kind = (
                        "degraded"
                        if client.last_response is not None
                        and client.last_response.degraded
                        else "ok"
                    )
                except ServingFault:
                    kind = "typed_error"
                except Exception:
                    kind = "untyped_error"
                with lock:
                    counts[kind] += 1
            finished[index] = True
        finally:
            closer = getattr(client, "close", None)
            if closer is not None:
                closer()

    threads = [
        threading.Thread(target=run_client, args=(i,), daemon=True)
        for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    deadline = time.monotonic() + CLIENT_JOIN_TIMEOUT_S
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
    elapsed = time.perf_counter() - start
    hung = sum(1 for t in threads if t.is_alive())
    total = CLIENTS * len(stream)
    resolved = sum(counts.values())
    return {
        "clients": CLIENTS,
        "socket_clients": SOCKET_CLIENTS,
        "requests": total,
        "resolved": resolved,
        "unresolved": total - resolved,
        "hung_clients": hung,
        "elapsed_s": elapsed,
        "requests_per_sec": resolved / elapsed if elapsed > 0 else 0.0,
        **counts,
    }


def main() -> dict:
    programs = (
        [vision.image_embed(0)]
        if FAST
        else [vision.image_embed(0), vision.alexnet(0)]
    )
    dataset = build_tile_dataset(
        programs,
        max_kernels_per_program=4 if FAST else 8,
        max_tiles_per_kernel=8,
        seed=0,
    )
    scalers = Scalers.fit_tile(dataset.records)
    config = ModelConfig(
        task="tile", reduction="column-wise",
        hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16,
    )
    model = LearnedPerformanceModel(config, seed=0)
    model.eval()
    result = TrainResult(model=model, scalers=scalers, loss_history=[])
    stream = _workload(dataset.records, REQUESTS_PER_CLIENT)

    # Disarmed at construction: the injector is wired through the whole
    # stack up front, but its rules' event counters only start moving when
    # the chaos phase arms it — warmup and baseline stay fault-free.
    injector = FaultInjector(_chaos_plan(), armed=False)
    # dispatch_timeout_s bounds every worker pipe reply — including a
    # respawned worker's cold boot + checkpoint load — so it must cover a
    # spawn, not just a forward.
    service_config = ServiceConfig(
        executor="process", replicas=2, max_batch_size=64,
        flush_interval_s=0.002, adaptive_flush=True,
        result_cache_entries=0, dispatch_timeout_s=3.0,
        breaker_failure_threshold=3, breaker_reset_s=0.5,
    )
    report: dict = {
        "benchmark": "bench_resilience",
        "fast_mode": FAST,
        "num_kernels": len(dataset.records),
        "requests_per_client": REQUESTS_PER_CLIENT,
        "deadline_s": DEADLINE_S,
    }
    service = CostModelService(result, service_config, faults=injector).start()
    try:
        with SocketFrontend(service, fault_injector=injector) as frontend:
            # Warm: spawn + sync the shard workers, intern the kernels, so
            # the baseline measures steady state (the chaos plan's `after`
            # warmups are counted in dispatch events, not requests).
            warm = ServiceEvaluator(service, timeout_s=DEADLINE_S)
            for kernel, tiles in stream:
                warm.score_tiles_batched(kernel, tiles)

            report["baseline"] = _run_phase(service, frontend.address, stream)
            injector.arm()
            report["chaos"] = _run_phase(service, frontend.address, stream)
            report["fault_plan_exhausted"] = injector.exhausted()
            report["faults"] = injector.snapshot()
            injector.arm(False)  # recovery measures the healed stack only
            metrics = service.metrics()
            report["chaos_metrics"] = {
                "degraded": metrics["degraded"],
                "deadline_expired": metrics["deadline_expired"],
                "overload_rejections": metrics["overload_rejections"],
                "breaker_blocks": metrics["breaker_blocks"],
                "breaker_open_seconds": metrics["breaker_open_seconds"],
                "breakers": metrics["breakers"],
                "worker_restarts": metrics.get("evaluator_worker_restarts", 0),
            }
            # Give a still-open breaker its half-open probe window before
            # measuring the healed stack.
            time.sleep(2 * service_config.breaker_reset_s)
            for kernel, tiles in stream:
                warm.score_tiles_batched(kernel, tiles)
            report["recovery"] = _run_phase(service, frontend.address, stream)
    finally:
        service.stop()
    baseline_rps = report["baseline"]["requests_per_sec"]
    report["recovery_ratio"] = (
        report["recovery"]["requests_per_sec"] / baseline_rps
        if baseline_rps > 0
        else 0.0
    )
    return report


def _gates(report: dict) -> list[str]:
    """Resilience acceptance bars enforced by exit code in full mode."""
    failures = []
    for phase in ("baseline", "chaos", "recovery"):
        row = report[phase]
        if row["hung_clients"]:
            failures.append(f"{phase}: {row['hung_clients']} hung client(s)")
        if row["unresolved"]:
            failures.append(
                f"{phase}: {row['unresolved']} request(s) never resolved"
            )
        if row["untyped_error"]:
            failures.append(
                f"{phase}: {row['untyped_error']} untyped error(s)"
            )
    if report["recovery_ratio"] < 0.9:
        failures.append(
            f"recovered throughput {report['recovery_ratio']:.2f}x "
            f"of baseline < 0.9x"
        )
    if not report["fault_plan_exhausted"]:
        failures.append("chaos plan not exhausted: faults never all fired")
    if report["chaos_metrics"]["worker_restarts"] < 1:
        failures.append("chaos never forced a worker respawn")
    return failures


if __name__ == "__main__":
    report = main()
    print(json.dumps(stamp_report(report), indent=2))
    failures = [] if FAST else _gates(report)
    for failure in failures:
        print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
