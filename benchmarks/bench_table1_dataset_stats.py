"""Table 1: dataset statistics — programs and kernels per split.

Paper reference (counts at the authors' scale):
    Random split: tile-size 93/8/8 programs with 21.8M/1.6M/1.4M kernels;
    fusion 78/8/8 programs with 157.5M/30.1M/20.3M samples.
    Manual split: tile-size 22.9M/1.4M/0.5M; fusion 190.2M/11.2M/6.6M.

Our corpus is 104 synthetic programs and the per-kernel tile sweeps are
capped, so absolute counts are ~5 orders of magnitude smaller; the shape to
verify is train >> validation ~ test, and tile samples >> kernels.
"""
from harness import fusion_data, split, tile_data
from repro.evaluation import format_table

PAPER_NOTE = (
    "paper: random split 93/8/8 programs, 21.8M/1.6M/1.4M tile samples, "
    "157.5M/30.1M/20.3M fusion samples (ours is a scaled-down corpus)"
)


def _collect():
    rows = []
    for split_name in ("random", "manual"):
        s = split(split_name)
        for subset, programs in (
            ("train", s.train),
            ("validation", s.validation),
            ("test", s.test),
        ):
            tile = tile_data(split_name, subset)
            fusion = fusion_data(split_name, subset)
            rows.append(
                [
                    split_name,
                    subset,
                    len(programs),
                    tile.num_kernels,
                    tile.num_samples,
                    fusion.num_samples,
                ]
            )
    return rows


def test_table1_dataset_stats(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Split", "Set", "Programs", "Tile kernels", "Tile samples", "Fusion samples"],
            rows,
            title="Table 1 (reproduced): dataset statistics",
        )
    )
    print(PAPER_NOTE)
    # Structural checks mirroring the paper's table shape.
    random_rows = [r for r in rows if r[0] == "random"]
    assert random_rows[0][2] > random_rows[1][2]  # train programs >> val
    assert all(r[4] >= r[3] * 2 for r in rows)  # several tiles per kernel
