"""Figure 4: tile-size autotuner integration.

For each benchmark program, speedup over the *default* tile configuration
(the analytical model's top-1 choice, exactly as in the paper) of:

  * Exhaustive      — evaluate every tile on hardware;
  * Learned 10      — learned model proposes top 10, hardware verifies;
  * Analytical 10   — analytical model proposes top 10, hardware verifies;
  * Learned 1       — learned model integrated directly in the compiler.

Paper reference: 'Learned 10' is within 1-3% of 'Analytical 10' everywhere;
'Learned 1' is comparable to the analytical default on the test set (a few
percent slower on some programs, up to 20% faster on high-headroom
programs like Translate (3)).
"""
import numpy as np

from harness import scale, split, trained_tile_model
from repro.autotuner import (
    AnalyticalEvaluator,
    HardwareEvaluator,
    LearnedEvaluator,
    exhaustive_tile_autotune,
    model_tile_autotune,
)
from repro.compiler import enumerate_tile_sizes, fuse_program
from repro.evaluation import format_table
from repro.models import ModelConfig
from repro.tpu import TpuSimulator


def _program_kernels(program, cap):
    kernels = [
        k
        for k in fuse_program(program.graph, program_name=program.name)
        if k.has_tile_options() and len(enumerate_tile_sizes(k)) >= 2
    ]
    if len(kernels) > cap:
        idx = np.linspace(0, len(kernels) - 1, cap).round().astype(int)
        kernels = [kernels[i] for i in idx]
    return kernels


def _extra_headroom_programs():
    """Four additional programs 'that gain most speedup from exhaustive
    search' — picked deterministically from training families."""
    s = split("random")
    wanted = ["translate", "inception", "transformer", "smartcompose"]
    picks = []
    for fam in wanted:
        for p in s.train:
            if p.family == fam:
                picks.append(p)
                break
    return picks


def _run():
    s = split("random")
    tile_model = trained_tile_model("random", ModelConfig.paper_best_tile())
    learned = LearnedEvaluator(tile_model.model, tile_model.scalers)
    analytical = AnalyticalEvaluator()
    programs = list(s.test_names.items()) + [
        (f"{p.family} (extra)", p) for p in _extra_headroom_programs()
    ]
    cap = scale(8, 4)
    rows = []
    for display, program in programs:
        kernels = _program_kernels(program, cap)
        if not kernels:
            continue
        sim = TpuSimulator()
        # The Fig. 4 baseline: analytical model's top-1 pick per kernel.
        base = model_tile_autotune(kernels, analytical, HardwareEvaluator(sim), top_k=1)
        baseline_rt = base.program_runtime
        ex = exhaustive_tile_autotune(kernels, HardwareEvaluator(sim))
        l10 = model_tile_autotune(kernels, learned, HardwareEvaluator(sim), top_k=10)
        a10 = model_tile_autotune(kernels, analytical, HardwareEvaluator(sim), top_k=10)
        l1 = model_tile_autotune(kernels, learned, HardwareEvaluator(sim), top_k=1)
        rows.append(
            [
                display,
                baseline_rt / ex.program_runtime,
                baseline_rt / l10.program_runtime,
                baseline_rt / a10.program_runtime,
                baseline_rt / l1.program_runtime,
            ]
        )
    return rows


def test_fig4_tile_autotuner(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Program", "Exhaustive", "Learned 10", "Analytical 10", "Learned 1"],
            rows,
            title="Figure 4 (reproduced): speedup over analytical-default tiles",
        )
    )
    print(
        "paper: Learned-10 within 1-3% of Analytical-10 on all benchmarks; "
        "Learned-1 comparable to the compiler default"
    )
    ex = np.array([r[1] for r in rows])
    l10 = np.array([r[2] for r in rows])
    a10 = np.array([r[3] for r in rows])
    # Exhaustive is the upper bound; top-10 strategies track each other.
    assert (ex >= l10 - 1e-9).all() and (ex >= a10 - 1e-9).all()
    assert float(np.mean(np.abs(l10 - a10))) < 0.25
