"""Figure 5: fusion autotuner — hardware-only vs learned-model + hardware.

Search budgets stand in for wall-clock minutes on scarce hardware:
  * 'HW 10'              — SA on hardware, larger program-evaluation budget;
  * 'HW 1'               — SA on hardware, small budget;
  * 'Cost model + HW 1'  — SA on the learned model (large cheap budget),
                           then a small hardware budget verifies the best
                           predicted configurations.

Paper reference: cost-model+HW finds configurations on average 1.5% faster
than hardware alone, and cutting hardware time from 10 to 1 minute does not
degrade the cost-model variant; starting SA from a random configuration
widens the gap to ~10%.
"""
import numpy as np

from harness import scale, split, trained_fusion_model
from repro.autotuner import (
    HardwareEvaluator,
    LearnedEvaluator,
    hardware_fusion_autotune,
    model_fusion_autotune,
)
from repro.compiler import FusionConfig, fusible_edges
from repro.evaluation import format_table, geometric_mean
from repro.models import ModelConfig
from repro.tpu import TpuSimulator


def _autotuning_programs():
    """Programs analogous to the paper's fusion-autotuner set (Transformer,
    Char2Feats, ResNet-parallel, ...)."""
    s = split("random")
    wanted = ["transformer", "char2feats", "resnet_parallel", "feats2wave", "ranking"]
    picks = []
    for fam in wanted:
        for p in s.train:
            if p.family == fam:
                picks.append(p)
                break
    return picks


HW_BUDGET_10 = scale(40, 15)
HW_BUDGET_1 = scale(6, 3)
MODEL_BUDGET = scale(250, 60)


def _run():
    fusion_model = trained_fusion_model("random", ModelConfig.paper_best_fusion())
    rows = []
    for program in _autotuning_programs():
        sim = TpuSimulator()
        learned = LearnedEvaluator(fusion_model.model, fusion_model.scalers)
        hw10 = hardware_fusion_autotune(
            program, HardwareEvaluator(sim), budget=HW_BUDGET_10, seed=0
        )
        hw1 = hardware_fusion_autotune(
            program, HardwareEvaluator(sim), budget=HW_BUDGET_1, seed=0
        )
        cm1 = model_fusion_autotune(
            program, learned, HardwareEvaluator(sim),
            model_budget=MODEL_BUDGET, hardware_budget=HW_BUDGET_1, seed=0,
        )
        # Random-start comparison (paper's second experiment).
        rng = np.random.default_rng(7)
        rand_start = FusionConfig.random(len(fusible_edges(program.graph)), rng, p=0.5)
        hw_rand = hardware_fusion_autotune(
            program, HardwareEvaluator(sim), budget=HW_BUDGET_1, seed=0, start=rand_start
        )
        cm_rand = model_fusion_autotune(
            program, learned, HardwareEvaluator(sim),
            model_budget=MODEL_BUDGET, hardware_budget=HW_BUDGET_1, seed=0,
            start=rand_start,
        )
        rows.append(
            [
                program.family,
                hw10.speedup,
                hw1.speedup,
                cm1.speedup,
                hw_rand.speedup,
                cm_rand.speedup,
            ]
        )
    return rows


def test_fig5_fusion_autotuner(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["Program", "HW 10", "HW 1", "CM + HW 1", "HW 1 (rand)", "CM + HW 1 (rand)"],
            rows,
            title="Figure 5 (reproduced): fusion-autotuner speedup over default",
        )
    )
    print(
        "paper: cost model + HW ~1.5% faster than HW alone (default start); "
        "~10% faster from a random start; HW 1 min matches HW 10 min when "
        "the cost model pre-ranks"
    )
    cm1 = geometric_mean([r[3] for r in rows])
    hw1 = geometric_mean([r[2] for r in rows])
    cm_rand = geometric_mean([r[5] for r in rows])
    hw_rand = geometric_mean([r[4] for r in rows])
    # Shape: with the same tiny hardware budget, the cost model helps —
    # especially from a random start.
    assert cm1 >= hw1 * 0.97
    assert cm_rand >= hw_rand * 0.97
