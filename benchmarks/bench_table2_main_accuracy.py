"""Table 2: main accuracy on the random split, learned vs analytical.

Paper reference (random split, TPU v2):
    Tile-size task:  learned mean APE 3.7 / tau 0.80; analytical 6.1 / 0.74.
    Fusion task:     learned mean MAPE 4.5 / tau 0.92; analytical 31.1 / 0.80.
    Headline: 96.3% / 95.5% accuracy = (100 - mean error) on tile/fusion;
    learned beats analytical by 2.4% (tile) and 26.6% (fusion).

Shape to reproduce: the learned model matches or beats the analytical model
on the tile task (ConvDRAW being its weakest program) and beats it by a
large factor on the fusion task, consistently across applications.
"""
import numpy as np

from harness import (
    eval_fusion_split,
    eval_tile_split,
    print_fusion_table,
    print_tile_table,
    trained_fusion_model,
    trained_tile_model,
)
from repro.models import ModelConfig

TILE_CONFIG = ModelConfig.paper_best_tile()
FUSION_CONFIG = ModelConfig.paper_best_fusion()


def _run():
    tile_result = trained_tile_model("random", TILE_CONFIG)
    fusion_result = trained_fusion_model("random", FUSION_CONFIG)
    tile_rows = eval_tile_split("random", tile_result)
    fusion_rows = eval_fusion_split("random", fusion_result)
    return tile_rows, fusion_rows


def test_table2_main_accuracy(benchmark):
    tile_rows, fusion_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_tile_table(
        tile_rows,
        "Table 2 (reproduced), tile-size task, random split",
        "paper: learned mean APE 3.7 tau 0.80 | analytical mean APE 6.1 tau 0.74",
    )
    print_fusion_table(
        fusion_rows,
        "Table 2 (reproduced), fusion task, random split (kernels >= 5us)",
        "paper: learned mean MAPE 4.5 tau 0.92 | analytical mean MAPE 31.1 tau 0.80",
    )
    tile_learned = float(np.mean([r.learned_ape for r in tile_rows]))
    tile_ana = float(np.mean([r.analytical_ape for r in tile_rows]))
    fusion_learned = float(np.mean([r.learned_mape for r in fusion_rows]))
    fusion_ana = float(np.mean([r.analytical_mape for r in fusion_rows]))
    print(
        f"\nheadline accuracy: tile {100 - tile_learned:.1f}% (paper 96.3%), "
        f"fusion {100 - fusion_learned:.1f}% (paper 95.5%)"
    )
    print(
        f"learned-vs-analytical gap: tile {tile_ana - tile_learned:+.1f} "
        f"(paper +2.4), fusion {fusion_ana - fusion_learned:+.1f} (paper +26.6)"
    )
    tile_learned_med = float(np.median([r.learned_ape for r in tile_rows]))
    tile_ana_med = float(np.median([r.analytical_ape for r in tile_rows]))
    print(
        f"median APE: learned {tile_learned_med:.1f} vs analytical "
        f"{tile_ana_med:.1f} (paper medians 3.3 vs 6.2)"
    )
    # Shape assertions. Medians for the tile task: with only 8 test
    # programs, the mean is dominated by the single most dissimilar
    # program (ConvDRAW -- also the learned model's worst in the paper);
    # the median captures 'learned matches or beats analytical across
    # applications', which is the claim under reproduction. The fusion
    # gap is large enough to assert on the mean directly.
    assert tile_learned_med <= tile_ana_med + 2.0
    assert fusion_learned < fusion_ana
