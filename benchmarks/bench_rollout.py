"""Deployment-control-plane benchmark: rollout overhead + detection latency.

Two questions a rollout layer must answer before production turns it on:

1. **What does it cost when nothing is rolling out badly?**
   Tile-score throughput at max concurrent clients for three services
   over the same checkpoint pool, result cache off:

   * *plain* — the FullActivation default, no feedback collector (the
     pre-control-plane configuration);
   * *canary rollout* — a staged checkpoint (identical weights, so the
     workload itself is unchanged) serving a 20% deterministic canary
     slice, feedback collector attached: every batch pays the version
     chooser, the version-pure partition, the per-version stats, and the
     prediction recording;
   * *shadow rollout* — the staged checkpoint additionally re-scores a
     25% sample off the response path (informational: shadow buys its
     evidence with extra forwards by design).

   The gated rows run the **independent-tuner** regime (per-client
   stream rotations, as in ``bench_serving``): batches span many
   distinct kernels, so version-pure partitioning re-groups commands
   without splitting coalesced forwards — the regime a fleet of tuners
   actually presents, and the honest measure of the control plane's
   bookkeeping overhead. The fully-correlated population-splitting
   regime is reported informationally (``canary_rollout_coalesced``):
   there a canary *necessarily* splits each single-kernel batch into two
   version-pure forwards, an intrinsic cost of never mixing checkpoints
   in one forward, not bookkeeping.

2. **How fast does it catch a bad checkpoint?**
   A regressed checkpoint (readout negated — ranking exactly reversed)
   is staged straight into a canary; a driver serves traffic, reports
   measurements, and steps the controller each request. Reported: the
   number of requests from staging to automatic rollback. Ground truth
   for the measurement side is the active model's own scores — the
   detector's job is the control loop's latency, not the checkpoint's
   absolute quality, so the benchmark makes the regression maximal and
   deterministic.

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration. Output is
one JSON object on stdout (tracked PR-over-PR in ROADMAP.md). In full
mode the exit code enforces the acceptance bars:

* canary-rollout serving throughput >= 0.9x plain serving at max clients;
* the injected regression is detected (state ``rolled_back``) within the
  request budget, and the active version is never disturbed.

Fast mode is informational only (it still fails on crashes): its request
counts are too small for stable ratios.
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.autotuner import LearnedEvaluator  # noqa: E402
from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import Scalers, build_tile_dataset  # noqa: E402
from repro.evaluation import ServingStats  # noqa: E402
from repro.models import LearnedPerformanceModel, ModelConfig  # noqa: E402
from repro.models import save_model_bytes  # noqa: E402
from repro.models.trainer import TrainResult  # noqa: E402
from repro.serving import (  # noqa: E402
    CANARY,
    ROLLED_BACK,
    CanaryFraction,
    CostModelService,
    FeedbackCollector,
    ModelRegistry,
    RolloutConfig,
    RolloutController,
    ServiceConfig,
    ServiceEvaluator,
    ShadowScore,
    regressed_checkpoint,
    request_key,
)
from repro.serving.protocol import TileScoresRequest  # noqa: E402
from repro.workloads import vision  # noqa: E402

from harness import stamp_report  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

CHUNK = 4  # candidate tiles per request (one search step's proposals)
CANARY_FRACTION = 0.2
SHADOW_FRACTION = 0.25
REPEATS = 1 if FAST else 3
CLIENTS = 4 if FAST else 16
REQUESTS_PER_CLIENT = 8 if FAST else 40
#: Detection-latency controller thresholds and the acceptance budget:
#: with min_samples canary observations needed at CANARY_FRACTION routing,
#: the expected detection point is min_samples / fraction requests; the
#: budget allows 2x slack over that before the gate fails.
DETECT_MIN_SAMPLES = 4 if FAST else 16
DETECT_BUDGET = int(2 * DETECT_MIN_SAMPLES / CANARY_FRACTION)


def _workload(records, requests_per_client: int):
    """Per-request (kernel, tile-chunk) stream (the bench_serving shape)."""
    kernels = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            kernels.append((record.kernel, tiles))
    stream = []
    for i in range(requests_per_client):
        kernel, tiles = kernels[i % len(kernels)]
        start = (i * CHUNK) % (len(tiles) - CHUNK + 1)
        stream.append((kernel, tiles[start:start + CHUNK]))
    return stream


def _client_streams(stream, num_clients: int, decorrelate: bool):
    """Correlated = population splitting; de-correlated = independent
    tuners (client ``i`` starts at its own rotation)."""
    if not decorrelate:
        return [stream] * num_clients
    return [
        stream[(i * len(stream)) // num_clients:]
        + stream[: (i * len(stream)) // num_clients]
        for i in range(num_clients)
    ]


def _run_clients_once(num_clients: int, streams, make_scorer) -> dict:
    barrier = threading.Barrier(num_clients + 1)

    def client(index: int) -> None:
        scorer = make_scorer()
        barrier.wait()
        for kernel, tiles in streams[index]:
            scorer.score_tiles_batched(kernel, tiles)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = sum(len(s) for s in streams)
    return {
        "clients": num_clients,
        "requests": total,
        "requests_per_sec": total / elapsed,
        "elapsed_s": elapsed,
    }


def _run_clients(num_clients: int, streams, make_scorer) -> dict:
    best = None
    for _ in range(REPEATS):
        report = _run_clients_once(num_clients, streams, make_scorer)
        if best is None or report["requests_per_sec"] > best["requests_per_sec"]:
            best = report
    best["measured_passes"] = REPEATS
    return best


def _registry_with_staged(result) -> ModelRegistry:
    """Active + staged versions over identical weights (pure overhead)."""
    registry = ModelRegistry()
    registry.publish(result, version="active")
    registry.stage(save_model_bytes(result), version="staged")
    return registry


def bench_throughput(result, stream, rollout: str, decorrelate: bool = True) -> dict:
    """Max-client throughput for one control-plane configuration."""
    registry = _registry_with_staged(result)
    feedback = FeedbackCollector() if rollout != "plain" else None
    if rollout == "canary":
        policy = CanaryFraction("staged", CANARY_FRACTION)
    elif rollout == "shadow":
        policy = ShadowScore("staged", SHADOW_FRACTION)
    else:
        policy = None
    config = ServiceConfig(
        max_batch_size=64, adaptive_flush=True, result_cache_entries=0
    )
    with CostModelService(
        registry, config, rollout=policy, feedback=feedback
    ) as service:
        # Warm both versions' pools and caches so every configuration
        # competes on steady-state forward throughput.
        warm = ServiceEvaluator(service)
        for kernel, tiles in stream:
            warm.score_tiles_batched(kernel, tiles)
        service.stats = ServingStats()
        streams = _client_streams(stream, CLIENTS, decorrelate)
        report = _run_clients(CLIENTS, streams, lambda: ServiceEvaluator(service))
        metrics = service.metrics()
    report["batch_occupancy"] = metrics["batch_occupancy"]
    report["shadow_forwards"] = metrics["shadow_forwards"]
    if rollout == "canary":
        per_version = metrics["per_version"]
        served = sum(entry["served"] for entry in per_version.values())
        report["canary_share"] = (
            per_version.get("staged", {}).get("canary", 0.0) / served
            if served
            else 0.0
        )
    return report


def bench_detection(result, stream) -> dict:
    """Requests from staging a regressed checkpoint to automatic rollback."""
    bad = regressed_checkpoint(result)
    registry = ModelRegistry()
    registry.publish(result, version="active")
    feedback = FeedbackCollector()
    service = CostModelService(
        registry,
        ServiceConfig(max_batch_size=64, result_cache_entries=0),
        feedback=feedback,
    )
    controller = RolloutController(
        service,
        feedback,
        RolloutConfig(
            canary_fraction=CANARY_FRACTION,
            min_samples=DETECT_MIN_SAMPLES,
            max_samples_per_phase=10 * DETECT_MIN_SAMPLES,
            promote_margin=0.05,
            abort_margin=0.2,
            start_phase=CANARY,
        ),
    )
    # "Hardware" ground truth = the active model's own ranking: the
    # negated canary is maximally regressed, so detection latency is a
    # property of the control loop alone.
    reference = LearnedEvaluator(result.model, result.scalers)
    try:
        controller.stage(save_model_bytes(bad), version="regressed")
        client = ServiceEvaluator(service)
        staged_at = time.perf_counter()
        requests_to_detect = None
        i = 0
        while i < 4 * DETECT_BUDGET:
            kernel, tiles = stream[i % len(stream)]
            client.score_tiles_batched(kernel, tiles)
            request = TileScoresRequest(kernel=kernel, tiles=tuple(tiles))
            feedback.record_measurement(
                request_key(request),
                reference.score_tiles_batched(kernel, tiles),
            )
            i += 1
            if controller.step() == ROLLED_BACK:
                requests_to_detect = i
                break
        elapsed = time.perf_counter() - staged_at
        return {
            "state": controller.state,
            "requests_to_detect": requests_to_detect,
            "detect_budget": DETECT_BUDGET,
            "detect_elapsed_s": elapsed,
            "active_untouched": registry.active_version == "active",
            "staged_cleared": registry.staged_version is None,
            "transitions": [
                {"state": t.state, "samples": t.staged_samples}
                for t in controller.transitions
            ],
        }
    finally:
        service.stop()


def main() -> dict:
    if FAST:
        programs = [vision.image_embed(0)]
    else:
        programs = [
            vision.resnet_v1(0), vision.alexnet(0),
            vision.image_embed(0), vision.ssd(0),
        ]
    dataset = build_tile_dataset(
        programs,
        max_kernels_per_program=4 if FAST else 8,
        max_tiles_per_kernel=8,
        seed=0,
    )
    scalers = Scalers.fit_tile(dataset.records)
    model = LearnedPerformanceModel(ModelConfig.paper_best_tile())
    model.eval()
    result = TrainResult(model=model, scalers=scalers, loss_history=[])
    stream = _workload(dataset.records, REQUESTS_PER_CLIENT)

    report: dict = {
        "benchmark": "bench_rollout",
        "fast_mode": FAST,
        "num_kernels": len(dataset.records),
        "tiles_per_request": CHUNK,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "canary_fraction": CANARY_FRACTION,
        "shadow_fraction": SHADOW_FRACTION,
        "plain": bench_throughput(result, stream, "plain"),
        "canary_rollout": bench_throughput(result, stream, "canary"),
        "shadow_rollout": bench_throughput(result, stream, "shadow"),
        # The coalescing-regime split cost, reported but not gated: a
        # canary must split a single-kernel batch into two version-pure
        # forwards (never mixing checkpoints costs exactly this).
        "plain_coalesced": bench_throughput(
            result, stream, "plain", decorrelate=False
        ),
        "canary_rollout_coalesced": bench_throughput(
            result, stream, "canary", decorrelate=False
        ),
        "detection": bench_detection(result, stream),
    }
    rps = lambda row: row["requests_per_sec"]  # noqa: E731
    report["canary_vs_plain"] = rps(report["canary_rollout"]) / rps(report["plain"])
    report["shadow_vs_plain"] = rps(report["shadow_rollout"]) / rps(report["plain"])
    report["canary_vs_plain_coalesced"] = (
        rps(report["canary_rollout_coalesced"]) / rps(report["plain_coalesced"])
    )
    return report


def _gates(report: dict) -> list[str]:
    """Acceptance bars enforced by exit code in full mode."""
    failures = []
    if report["canary_vs_plain"] < 0.9:
        failures.append(
            f"canary rollout vs plain serving at {report['clients']} clients: "
            f"{report['canary_vs_plain']:.2f}x < 0.9x"
        )
    detection = report["detection"]
    if detection["state"] != ROLLED_BACK:
        failures.append(
            f"injected regression not rolled back (state {detection['state']!r})"
        )
    elif detection["requests_to_detect"] > detection["detect_budget"]:
        failures.append(
            f"regression detected after {detection['requests_to_detect']} "
            f"requests > budget {detection['detect_budget']}"
        )
    if not detection["active_untouched"]:
        failures.append("rollback disturbed the active version")
    return failures


if __name__ == "__main__":
    report = main()
    print(json.dumps(stamp_report(report), indent=2))
    failures = [] if FAST else _gates(report)
    for failure in failures:
        print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
