"""Adaptive-placement benchmark: skewed-workload rebalance + live migration.

Two questions the placement subsystem must answer before it owns routing:

1. **What does an adaptive shard map buy on a skewed workload?**
   A fleet of independent tuners whose kernels all hash onto *one* shard
   under the legacy static ``fingerprint % n`` routing (the worst — and
   with real autotuner populations, common — case: fingerprints are
   uniform, kernel *traffic* is not). Per-shard caches are sized for a
   balanced population, so the static placement thrashes the hot shard's
   feature/precompute memos on every request while three shards idle.
   The adaptive configuration runs the same service under a
   :class:`PlacementController`: it watches the per-shard load EWMAs,
   detects the skew, and rebalances hot buckets across shards — after
   which every shard's working set fits its cache again. Reported:
   16-client throughput for both, and the ratio (gated >= 1.2x in full
   mode). This is the cache-affinity win, so it holds on a 1-CPU
   container; with more cores the process executor's parallelism widens
   it further.

2. **What does a live migration cost?**
   A process-executor service grows 2 -> 3 workers *under concurrent
   client traffic*: the new worker is spawned and synced to every live
   checkpoint version before the map swaps at a micro-batch boundary,
   and the retired placement drains cleanly. Gated in full mode: every
   submitted request resolves (zero dropped), zero errors, every
   response version-pure on the active version, and the map version
   advanced. (Bitwise equivalence of migrated vs. unmigrated responses
   at equal batch shape is enforced by ``tests/test_placement.py``.)

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration. Output is
one JSON object on stdout (tracked PR-over-PR in ROADMAP.md). In full
mode the exit code enforces the acceptance bars above; fast mode is
informational (it still fails on crashes).
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import Scalers, build_tile_dataset  # noqa: E402
from repro.models import LearnedPerformanceModel, ModelConfig  # noqa: E402
from repro.models.trainer import TrainResult  # noqa: E402
from repro.serving import (  # noqa: E402
    CostModelService,
    ModelRegistry,
    PlacementConfig,
    PlacementController,
    ServiceConfig,
    ServiceEvaluator,
    ShardMap,
)
from repro.workloads import vision  # noqa: E402

from harness import stamp_report  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

CHUNK = 4  # candidate tiles per request (one search step's proposals)
SHARDS = 4
REPEATS = 1 if FAST else 3
CLIENTS = 4 if FAST else 16
REQUESTS_PER_CLIENT = 8 if FAST else 40
MIGRATION_CLIENTS = 2 if FAST else 4
MIGRATION_REQUESTS = 6 if FAST else 24


def _hot_workload(records):
    """Per-request (kernel, tile-chunk) streams over kernels that ALL
    land on shard 0 under the static ``fingerprint % n`` routing — the
    maximally skewed independent-tuner population."""
    probe = ShardMap.uniform(SHARDS)
    hot = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        fingerprint = record.kernel.fingerprint()
        if len(tiles) >= CHUNK and probe.table[probe.bucket_of(fingerprint)] == 0:
            hot.append((record.kernel, tiles))
    hot_buckets = {
        probe.bucket_of(kernel.fingerprint()) for kernel, _ in hot
    }
    return hot, len(hot_buckets)


def _client_streams(hot, num_clients: int, requests_per_client: int):
    """Independent tuners: client i walks its own rotation of the hot
    kernel pool."""
    streams = []
    for client in range(num_clients):
        stream = []
        for i in range(requests_per_client):
            kernel, tiles = hot[(client + i) % len(hot)]
            start = (i * CHUNK) % (len(tiles) - CHUNK + 1)
            stream.append((kernel, tiles[start:start + CHUNK]))
        streams.append(stream)
    return streams


def _run_clients_once(streams, make_scorer) -> dict:
    num_clients = len(streams)
    barrier = threading.Barrier(num_clients + 1)

    def client(index: int) -> None:
        scorer = make_scorer()
        barrier.wait()
        for kernel, tiles in streams[index]:
            scorer.score_tiles_batched(kernel, tiles)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = sum(len(s) for s in streams)
    return {
        "clients": num_clients,
        "requests": total,
        "requests_per_sec": total / elapsed,
        "elapsed_s": elapsed,
    }


def _run_clients(streams, make_scorer) -> dict:
    best = None
    for _ in range(REPEATS):
        report = _run_clients_once(streams, make_scorer)
        if best is None or report["requests_per_sec"] > best["requests_per_sec"]:
            best = report
    best["measured_passes"] = REPEATS
    return best


def _service(result, hot_kernels: int) -> CostModelService:
    """Per-shard caches sized for a *balanced* population: the whole hot
    set does not fit one shard's cache, a quarter of it does."""
    per_shard_cache = max(2, (hot_kernels + SHARDS - 1) // SHARDS + 1)
    return CostModelService(
        result,
        ServiceConfig(
            max_batch_size=64,
            adaptive_flush=True,
            replicas=SHARDS,
            result_cache_entries=0,
            max_cached_kernels=per_shard_cache,
            share_kernel_cache=False,
        ),
    )


def bench_skew(result, hot, hot_buckets: int, adaptive: bool) -> dict:
    """Skewed-workload throughput, static vs. controller-rebalanced."""
    service = _service(result, len(hot))
    try:
        streams = _client_streams(hot, CLIENTS, REQUESTS_PER_CLIENT)
        controller = None
        rebalanced_after_rounds = None
        if adaptive:
            controller = PlacementController(
                service,
                PlacementConfig(
                    skew_threshold=1.3,
                    hysteresis=2,
                    cooldown_s=0.0,
                    ewma_alpha=1.0,
                    min_interval_requests=8,
                    max_moves=64,
                ),
            )
            warm = ServiceEvaluator(service)
            for round_index in range(6):
                for kernel, tiles in streams[0]:
                    warm.score_tiles_batched(kernel, tiles)
                if controller.step() is not None:
                    rebalanced_after_rounds = round_index + 1
                    break
        # One warmup pass for both configurations (steady-state caches —
        # which for the static placement still means thrash).
        warm = ServiceEvaluator(service)
        for kernel, tiles in streams[0]:
            warm.score_tiles_batched(kernel, tiles)
        report = _run_clients(streams, lambda: ServiceEvaluator(service))
        metrics = service.metrics()
        report["batch_occupancy"] = metrics["batch_occupancy"]
        report["map_version"] = metrics["placement"]["version"]
        report["hot_kernels"] = len(hot)
        report["hot_buckets"] = hot_buckets
        report["per_shard_requests"] = {
            shard: entry["requests"]
            for shard, entry in metrics["per_shard"].items()
        }
        evaluator_stats = service.executor.stats()
        report["feature_cache_hit_rate"] = (
            evaluator_stats.get("feature_hits", 0)
            / max(
                evaluator_stats.get("feature_hits", 0)
                + evaluator_stats.get("feature_misses", 0),
                1,
            )
        )
        if adaptive:
            report["rebalances"] = controller.rebalances
            report["rebalanced_after_rounds"] = rebalanced_after_rounds
            report["buckets_per_shard"] = metrics["placement"][
                "buckets_per_shard"
            ]
        return report
    finally:
        service.stop()


def bench_migration(result, hot) -> dict:
    """Live 2 -> 3 worker migration under concurrent process-executor
    traffic: count drops, errors, and version mixing."""
    registry = ModelRegistry()
    registry.publish(result, version="active")
    service = CostModelService(
        registry,
        ServiceConfig(
            executor="process",
            replicas=2,
            result_cache_entries=0,
            max_batch_size=16,
        ),
    ).start()
    controller = PlacementController(
        service,
        PlacementConfig(
            skew_threshold=1.3,
            hysteresis=1,
            cooldown_s=0.0,
            ewma_alpha=1.0,
            min_interval_requests=4,
            max_moves=64,
            autoscale=True,
            min_shards=2,
            max_shards=3,
            # Any observed backlog triggers the grow step — the point
            # here is measuring the migration, not the trigger.
            scale_up_pressure=1e-9,
            scale_down_pressure=-1.0,
        ),
    )
    try:
        streams = _client_streams(hot, MIGRATION_CLIENTS, MIGRATION_REQUESTS)
        from repro.serving import TileScoresRequest

        futures: list = []
        futures_lock = threading.Lock()
        barrier = threading.Barrier(MIGRATION_CLIENTS + 1)

        def client(index: int) -> None:
            barrier.wait()
            for kernel, tiles in streams[index]:
                request = TileScoresRequest(kernel=kernel, tiles=tuple(tiles))
                future = service.submit(request)
                with futures_lock:
                    futures.append(future)
                future.result(timeout=300)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(MIGRATION_CLIENTS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        # The queue-pressure EMA only moves once batches cut; poll the
        # controller while traffic flows until the grow step lands.
        summary = None
        migration_s = None
        for _ in range(100):
            start = time.perf_counter()
            summary = controller.step()  # spawns + syncs worker 2, swaps map
            if summary is not None:
                migration_s = time.perf_counter() - start
                break
            time.sleep(0.02)
        for t in threads:
            t.join()
        responses = [future.result(timeout=300) for future in futures]
        submitted = MIGRATION_CLIENTS * MIGRATION_REQUESTS
        return {
            "workers_before": 2,
            "workers_after": service.executor.num_shards,
            "migration_summary": summary,
            "migration_s": migration_s,
            "submitted": submitted,
            "resolved": len(responses),
            "dropped": submitted - len(responses),
            "errors": sum(1 for r in responses if r.error is not None),
            "version_mixed": sum(
                1 for r in responses if r.model_version != "active"
            ),
            "map_version": service.shard_map.version,
        }
    finally:
        service.stop()


def main() -> dict:
    if FAST:
        programs = [vision.image_embed(0), vision.alexnet(0)]
    else:
        programs = [
            vision.resnet_v1(0), vision.alexnet(0),
            vision.image_embed(0), vision.ssd(0),
        ]
    dataset = build_tile_dataset(
        programs,
        max_kernels_per_program=4 if FAST else 8,
        max_tiles_per_kernel=8,
        seed=0,
    )
    scalers = Scalers.fit_tile(dataset.records)
    model = LearnedPerformanceModel(ModelConfig.paper_best_tile())
    model.eval()
    result = TrainResult(model=model, scalers=scalers, loss_history=[])
    hot, hot_buckets = _hot_workload(dataset.records)
    if len(hot) < 2 or hot_buckets < 2:
        # A one-bucket hot set is correctly unsplittable; the skew story
        # needs a pool the controller can actually spread.
        raise SystemExit(
            f"kernel pool too small for a skewed workload "
            f"({len(hot)} hot kernels in {hot_buckets} buckets)"
        )

    report: dict = {
        "benchmark": "bench_placement",
        "fast_mode": FAST,
        "num_kernels": len(dataset.records),
        "tiles_per_request": CHUNK,
        "shards": SHARDS,
        "clients": CLIENTS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "static": bench_skew(result, hot, hot_buckets, adaptive=False),
        "adaptive": bench_skew(result, hot, hot_buckets, adaptive=True),
        "migration": bench_migration(result, hot),
    }
    report["adaptive_vs_static"] = (
        report["adaptive"]["requests_per_sec"]
        / report["static"]["requests_per_sec"]
    )
    return report


def _gates(report: dict) -> list[str]:
    """Acceptance bars enforced by exit code in full mode."""
    failures = []
    if report["adaptive_vs_static"] < 1.2:
        failures.append(
            f"adaptive shard map vs static fingerprint%n at "
            f"{report['clients']} clients: "
            f"{report['adaptive_vs_static']:.2f}x < 1.2x"
        )
    if report["adaptive"].get("rebalances", 0) < 1:
        failures.append("placement controller never rebalanced the skew")
    migration = report["migration"]
    if migration["dropped"] != 0:
        failures.append(f"live migration dropped {migration['dropped']} responses")
    if migration["errors"] != 0:
        failures.append(f"live migration produced {migration['errors']} errors")
    if migration["version_mixed"] != 0:
        failures.append(
            f"{migration['version_mixed']} responses left the active version"
        )
    if migration["workers_after"] != 3 or migration["map_version"] < 2:
        failures.append("live migration did not complete (no new worker/map)")
    return failures


if __name__ == "__main__":
    report = main()
    print(json.dumps(stamp_report(report), indent=2))
    failures = [] if FAST else _gates(report)
    for failure in failures:
        print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
