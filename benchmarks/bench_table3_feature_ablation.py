"""Table 3: graph-feature and loss-function ablations.

All variants use GraphSAGE + per-node reduction (the paper's quick-to-train
configuration). Paper reference (mean errors):

    variant                              tile   fusion
    Vanilla                              6.8    10.2
    Undirected                           6.8    14.0
    With static perf (node features)     6.3     5.2
    With static perf (kernel embedding)  5.9     6.0
    Move tile-size to kernel embedding   9.4     N/A
    MSE loss instead of rank loss       17.7     N/A

Shape to reproduce: static features help fusion a lot and tile a little;
undirected hurts fusion; moving tile size off the nodes hurts; MSE loss is
far worse than rank loss on the tile task.
"""
import numpy as np

from harness import (
    eval_fusion_split,
    eval_tile_split,
    scale,
    trained_fusion_model,
    trained_tile_model,
)
from repro.evaluation import format_table
from repro.models import ModelConfig

STEPS = scale(900, 250)

TILE_VARIANTS = {
    "Vanilla": ModelConfig.vanilla("tile"),
    "Undirected": ModelConfig.vanilla("tile").with_overrides(directed=False),
    "Static perf (node)": ModelConfig.vanilla("tile").with_overrides(
        use_static_features=True, static_placement="node"
    ),
    "Static perf (kernel emb)": ModelConfig.vanilla("tile").with_overrides(
        use_static_features=True, static_placement="kernel"
    ),
    "Tile-size in kernel emb": ModelConfig.vanilla("tile").with_overrides(
        tile_placement="kernel"
    ),
    "MSE loss (not rank)": ModelConfig.vanilla("tile").with_overrides(loss="mse"),
}

FUSION_VARIANTS = {
    "Vanilla": ModelConfig.vanilla("fusion"),
    "Undirected": ModelConfig.vanilla("fusion").with_overrides(directed=False),
    "Static perf (node)": ModelConfig.vanilla("fusion").with_overrides(
        use_static_features=True, static_placement="node"
    ),
    "Static perf (kernel emb)": ModelConfig.vanilla("fusion").with_overrides(
        use_static_features=True, static_placement="kernel"
    ),
}

PAPER = {
    "Vanilla": (6.8, 10.2),
    "Undirected": (6.8, 14.0),
    "Static perf (node)": (6.3, 5.2),
    "Static perf (kernel emb)": (5.9, 6.0),
    "Tile-size in kernel emb": (9.4, None),
    "MSE loss (not rank)": (17.7, None),
}


def _run():
    results = {}
    for name, cfg in TILE_VARIANTS.items():
        res = trained_tile_model("random", cfg, steps=STEPS)
        rows = eval_tile_split("random", res)
        results[(name, "tile")] = {
            "median": float(np.median([r.learned_ape for r in rows])),
            "mean": float(np.mean([r.learned_ape for r in rows])),
        }
    for name, cfg in FUSION_VARIANTS.items():
        res = trained_fusion_model("random", cfg, steps=STEPS)
        rows = eval_fusion_split("random", res)
        results[(name, "fusion")] = {
            "median": float(np.median([r.learned_mape for r in rows])),
            "mean": float(np.mean([r.learned_mape for r in rows])),
        }
    return results


def test_table3_feature_ablation(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    body = []
    for name in TILE_VARIANTS:
        tile = results[(name, "tile")]
        fusion = results.get((name, "fusion"))
        paper_tile, paper_fusion = PAPER[name]
        body.append(
            [
                name,
                tile["median"],
                tile["mean"],
                fusion["median"] if fusion else "N/A",
                fusion["mean"] if fusion else "N/A",
                paper_tile,
                paper_fusion if paper_fusion is not None else "N/A",
            ]
        )
    print()
    print(
        format_table(
            [
                "Variant",
                "Tile med",
                "Tile mean",
                "Fus med",
                "Fus mean",
                "paper tile",
                "paper fus",
            ],
            body,
            title="Table 3 (reproduced): feature/loss ablations (test errors)",
        )
    )
    # Key shapes, asserted on medians: the per-node reduction used by
    # this ablation is high-variance on the fusion task (the paper's own
    # Table 4 reports a 132.7 std for per-node fusion), so means over 8
    # test programs are dominated by outliers.
    assert (
        results[("MSE loss (not rank)", "tile")]["median"]
        > results[("Vanilla", "tile")]["median"] * 0.8
    )
    assert (
        results[("Static perf (node)", "fusion")]["median"]
        <= results[("Vanilla", "fusion")]["median"] * 1.6
    )
