"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*.py`` file regenerates one table or figure of the paper.
This module centralizes dataset construction, model training and
per-program evaluation so benches share cached artifacts within one pytest
session (Table 2's trained models are reused by Figures 4/5, etc.).

Scale: the paper trains for 3-5M steps on 25M/208M samples; these benches
train the same architectures for a few thousand steps on a synthetic corpus,
which preserves the qualitative comparisons (who wins, by roughly what
factor) but not absolute step counts. Set ``REPRO_BENCH_FAST=1`` for a
several-times-smaller smoke configuration.
"""
from __future__ import annotations

import os
import platform
import subprocess
import time
from dataclasses import dataclass

import numpy as np

from repro.compiler import default_tile, fuse_program
from repro.data import build_fusion_dataset, build_tile_dataset
from repro.evaluation import (
    evaluate_fusion_task,
    evaluate_tile_task,
    format_table,
    summarize,
)
from repro.models import (
    ModelConfig,
    TrainConfig,
    TrainResult,
    predict_fusion_runtimes,
    predict_tile_scores,
    train_fusion_model,
    train_tile_model,
)
from repro.tpu import (
    AnalyticalModel,
    CalibratedAnalyticalModel,
    TpuSimulator,
    calibrate_kind_scales,
)
from repro.workloads import Split, build_corpus, manual_split, random_split

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

#: Version of the bench-report JSON layout. Bump when a report's shape
#: changes incompatibly, so archived artifacts from CI runs stay
#: machine-comparable across the repo's history.
BENCH_SCHEMA_VERSION = 1


def scale(full: int, fast: int) -> int:
    """Pick a knob value depending on the benchmark scale."""
    return fast if FAST else full


def git_revision() -> str:
    """The repo's current commit hash, or ``"unknown"`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except Exception:
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def stamp_report(report: dict) -> dict:
    """Stamp one bench's JSON report with schema + provenance metadata.

    Every ``bench_*`` report passes through here before printing, so
    archived artifacts always say which schema they use, which commit
    produced them, and whether the fast (smoke) configuration ran —
    without each bench repeating the bookkeeping.
    """
    report["schema_version"] = BENCH_SCHEMA_VERSION
    report["meta"] = {
        "git_revision": git_revision(),
        "fast_mode": FAST,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "generated_at_unix": time.time(),
    }
    return report


# ------------------------------------------------------------------ caching
_CORPUS = None
_SPLITS: dict[str, Split] = {}
_TILE_DS: dict[tuple, object] = {}
_FUSION_DS: dict[tuple, object] = {}
_MODELS: dict[tuple, TrainResult] = {}


def corpus():
    global _CORPUS
    if _CORPUS is None:
        _CORPUS = build_corpus()
    return _CORPUS


def split(name: str) -> Split:
    if name not in _SPLITS:
        _SPLITS[name] = random_split(corpus()) if name == "random" else manual_split(corpus())
    return _SPLITS[name]


def tile_data(split_name: str, subset: str, seed: int = 0):
    """Tile dataset for one subset ('train'/'validation'/'test') of a split."""
    key = (split_name, subset, seed, FAST)
    if key not in _TILE_DS:
        s = split(split_name)
        programs = getattr(s, subset)
        if subset == "train" and FAST:
            programs = programs[::4]
        _TILE_DS[key] = build_tile_dataset(
            programs,
            max_kernels_per_program=scale(10, 6),
            max_tiles_per_kernel=scale(16, 8),
            seed=seed + (0 if subset == "train" else 1),
        )
    return _TILE_DS[key]


def fusion_data(split_name: str, subset: str, seed: int = 0):
    """Fusion dataset for one subset of a split."""
    key = (split_name, subset, seed, FAST)
    if key not in _FUSION_DS:
        s = split(split_name)
        programs = getattr(s, subset)
        if subset == "train" and FAST:
            programs = programs[::4]
        _FUSION_DS[key] = build_fusion_dataset(
            programs,
            configs_per_program=scale(4, 2),
            seed=seed + (0 if subset == "train" else 1),
        )
    return _FUSION_DS[key]


def default_tile_train(steps: int | None = None) -> TrainConfig:
    return TrainConfig(
        steps=steps if steps is not None else scale(1800, 400),
        learning_rate=8e-4,
        kernels_per_batch=6,
        tiles_per_kernel=6,
        log_every=500,
    )


def default_fusion_train(steps: int | None = None) -> TrainConfig:
    return TrainConfig(
        steps=steps if steps is not None else scale(2400, 500),
        learning_rate=8e-4,
        batch_size=24,
        log_every=500,
    )


def trained_tile_model(split_name: str, config: ModelConfig, steps: int | None = None) -> TrainResult:
    """Train (or fetch a cached) tile model on a split's training set."""
    key = ("tile", split_name, config, steps, FAST)
    if key not in _MODELS:
        ds = tile_data(split_name, "train")
        _MODELS[key] = train_tile_model(ds.records, config, default_tile_train(steps))
    return _MODELS[key]


def trained_fusion_model(split_name: str, config: ModelConfig, steps: int | None = None) -> TrainResult:
    """Train (or fetch a cached) fusion model on a split's training set."""
    key = ("fusion", split_name, config, steps, FAST)
    if key not in _MODELS:
        ds = fusion_data(split_name, "train")
        _MODELS[key] = train_fusion_model(ds.records, config, default_fusion_train(steps))
    return _MODELS[key]


# --------------------------------------------------------------- evaluation
@dataclass
class TileRow:
    """One Table 2/8 row for the tile task."""

    application: str
    learned_ape: float
    analytical_ape: float
    learned_tau: float
    analytical_tau: float


@dataclass
class FusionRow:
    """One Table 2/8 row for the fusion task."""

    application: str
    learned_mape: float
    analytical_mape: float
    learned_tau: float
    analytical_tau: float


def eval_tile_split(split_name: str, result: TrainResult) -> list[TileRow]:
    """Per-application tile metrics for the split's named test programs."""
    s = split(split_name)
    ds = tile_data(split_name, "test")
    by_prog = ds.by_program()
    ana = AnalyticalModel()
    rows = []
    for display, program in s.test_names.items():
        recs = by_prog.get(program.name, [])
        if not recs:
            continue
        truths = [r.runtimes for r in recs]
        learned_scores = [predict_tile_scores(result.model, result.scalers, r) for r in recs]
        ana_scores = [
            np.asarray([ana.estimate(r.kernel, t) for t in r.tiles]) for r in recs
        ]
        lm = evaluate_tile_task(truths, learned_scores)
        am = evaluate_tile_task(truths, ana_scores)
        rows.append(TileRow(display, lm.ape, am.ape, lm.kendall, am.kendall))
    return rows


def calibrated_analytical(split_name: str) -> CalibratedAnalyticalModel:
    """Per-kind-calibrated analytical model, following the paper's protocol:
    run every test program once under the default fusion configuration."""
    s = split(split_name)
    sim = TpuSimulator()
    kernels, truths = [], []
    for p in s.test:
        for k in fuse_program(p.graph, program_name=p.name):
            if k.has_tile_options():
                kernels.append(k)
                truths.append(sim.run(k, default_tile(k)))
    ana = AnalyticalModel()
    return CalibratedAnalyticalModel(ana, calibrate_kind_scales(kernels, truths, ana))


def eval_fusion_split(
    split_name: str, result: TrainResult, min_runtime: float = 5e-6
) -> list[FusionRow]:
    """Per-application fusion metrics (kernels >= min_runtime)."""
    s = split(split_name)
    ds = fusion_data(split_name, "test")
    by_prog = ds.by_program()
    cal = calibrated_analytical(split_name)
    rows = []
    for display, program in s.test_names.items():
        recs = by_prog.get(program.name, [])
        if not recs:
            continue
        truths = np.asarray([r.runtime for r in recs])
        preds = predict_fusion_runtimes(result.model, result.scalers, recs)
        lm = evaluate_fusion_task(truths, preds, min_runtime)
        keep = [i for i, r in enumerate(recs) if r.kernel.has_tile_options()]
        ana_preds = np.asarray([cal.estimate(recs[i].kernel) for i in keep])
        am = evaluate_fusion_task(truths[keep], ana_preds, min_runtime)
        if lm.num_kernels == 0:
            continue
        rows.append(FusionRow(display, lm.mape, am.mape, lm.kendall, am.kendall))
    return rows


def print_tile_table(rows: list[TileRow], title: str, paper_note: str = "") -> None:
    body = [
        [r.application, r.learned_ape, r.analytical_ape, r.learned_tau, r.analytical_tau]
        for r in rows
    ]
    la = summarize([r.learned_ape for r in rows])
    aa = summarize([r.analytical_ape for r in rows])
    lt = summarize([r.learned_tau for r in rows])
    at = summarize([r.analytical_tau for r in rows])
    body.append(["Median", la["median"], aa["median"], lt["median"], at["median"]])
    body.append(["Mean", la["mean"], aa["mean"], lt["mean"], at["mean"]])
    print()
    print(
        format_table(
            ["Application", "APE(L)", "APE(A)", "tau(L)", "tau(A)"], body, title=title
        )
    )
    if paper_note:
        print(paper_note)


def print_fusion_table(rows: list[FusionRow], title: str, paper_note: str = "") -> None:
    body = [
        [r.application, r.learned_mape, r.analytical_mape, r.learned_tau, r.analytical_tau]
        for r in rows
    ]
    lm = summarize([r.learned_mape for r in rows])
    am = summarize([r.analytical_mape for r in rows])
    lt = summarize([r.learned_tau for r in rows])
    at = summarize([r.analytical_tau for r in rows])
    body.append(["Median", lm["median"], am["median"], lt["median"], at["median"]])
    body.append(["Mean", lm["mean"], am["mean"], lt["mean"], at["mean"]])
    print()
    print(
        format_table(
            ["Application", "MAPE(L)", "MAPE(A)", "tau(L)", "tau(A)"], body, title=title
        )
    )
    if paper_note:
        print(paper_note)
