"""Table 8: main accuracy on the manual (dissimilarity) split.

Paper reference (manual split):
    Tile-size: learned mean APE 6.4 / tau 0.73 vs analytical 2.3 / 0.75
        (the learned model is *worse* here — test programs were picked to
        be unlike the training set).
    Fusion:    learned mean MAPE 6.2 / tau 0.84 vs analytical 18.1 / 0.88
        (the learned model still wins on absolute-runtime prediction).

Shapes to reproduce: learned tile APE degrades relative to the random
split; learned fusion MAPE still beats analytical.
"""
import numpy as np

from harness import FAST
from harness import (
    eval_fusion_split,
    eval_tile_split,
    print_fusion_table,
    print_tile_table,
    trained_fusion_model,
    trained_tile_model,
)
from repro.models import ModelConfig


def _run():
    tile_result = trained_tile_model("manual", ModelConfig.paper_best_tile())
    fusion_result = trained_fusion_model("manual", ModelConfig.paper_best_fusion())
    return (
        eval_tile_split("manual", tile_result),
        eval_fusion_split("manual", fusion_result),
    )


def test_table8_manual_split(benchmark):
    tile_rows, fusion_rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_tile_table(
        tile_rows,
        "Table 8 (reproduced), tile-size task, manual split",
        "paper: learned mean APE 6.4 tau 0.73 | analytical mean APE 2.3 tau 0.75",
    )
    print_fusion_table(
        fusion_rows,
        "Table 8 (reproduced), fusion task, manual split (kernels >= 5us)",
        "paper: learned mean MAPE 6.2 tau 0.84 | analytical mean MAPE 18.1 tau 0.88",
    )
    fusion_learned = float(np.mean([r.learned_mape for r in fusion_rows]))
    fusion_ana = float(np.mean([r.analytical_mape for r in fusion_rows]))
    # The robust paper shape on the hard split: learned still beats the
    # analytical model at absolute runtime prediction. The FAST smoke
    # config trains far too briefly for the hard split, so it only checks
    # the same order of magnitude.
    if FAST:
        assert fusion_learned < fusion_ana * 2.5
    else:
        assert fusion_learned < fusion_ana * 1.25
