"""Observability overhead + fidelity benchmark, as JSON.

The tracing/telemetry layer's contract is "watchable without paying for
it": tracing disabled must cost nothing (and perturb nothing), sampled
tracing must cost almost nothing, and what the sampled traces say must
be the truth — a tree spanning every layer of the stack, including the
shard-worker subprocess. Three throughput modes plus a fidelity probe,
all against process-sharded services:

* **baseline** — tracer absent: 16-client tile-scoring throughput of the
  plain stack, plus one single-client ordered pass whose score arrays
  are retained as the bitwise reference;
* **scraped** — tracer still absent, but a scraper thread polls the
  HTTP gateway's ``/metrics`` (Prometheus exposition) for the whole
  measured window: scraping must ride along at >= 0.95x baseline.
  (The scraper, the gateway's server thread, and the exposition render
  all share the client process's GIL — and the box has one core — so a
  scrape has a real, small cost — the bar says "small", not
  "unmeasurable");
* **sampled** — a 1% deterministic-sampling tracer attached: >= 0.9x
  baseline (the hook sites are single ``is not None`` checks for the
  99%, ring-buffer appends for the 1%);
* **profiled** — a full-sampling :class:`ContinuousProfiler` attached:
  >= 0.95x baseline (the record path is a handful of dict updates under
  one lock — continuous profiling must be cheap enough to leave on);
* **probed** — a :class:`SyntheticProber` sweeping golden-kernel
  probes through every live route at its default 1 s cadence while the
  fleet load runs: >= 0.97x baseline (probes coalesce into the same
  micro-batches as business traffic, so their marginal cost is a few
  extra rows per forward), zero known-answer failures, and — with the
  prober attached but *not* started — the service's score arrays must
  stay bitwise identical to the plain stack's (the hook sites are
  ``is not None`` checks; an idle prober is free);
* **traced probe** — a 100%-sampling tracer, one scoring request: the
  retained trace tree must contain spans from all four layers
  (frontend ingress, scheduler queue-wait, executor dispatch, worker
  forward) with the worker span recorded under a different pid, and the
  traced stack's score arrays must be **bitwise identical** to the
  baseline reference — observation must never perturb the answer. The
  profiled stack's score arrays are held to the same bitwise bar.

On top of the throughput modes sits the **alert-fire scenario**: a
process-sharded service with a 100% tracer, an :class:`OpsJournal`
(written under ``bench-artifacts/`` so CI uploads it), and an
:class:`AlertEngine` watching the SLO burn-rate gauge. A
:class:`FaultInjector` slow-worker rule pushes every forward past the
latency target until the burn-rate alert walks pending → firing; the
injector is then disarmed and healthy traffic walks it to resolved. The
gates check the *full journaled state sequence* and that the firing
transition carries an exemplar ``trace_id`` resolvable against the
tracer's retained ring — alerts must point at evidence, not just page.

The **incident scenario** is the end-to-end story the prober exists
for: a corrupt-checkpoint fault rule poisons one shard's next
``registry.load`` and a one-shot dispatch kill forces that reload, so
the shard comes back silently serving failures. Business traffic is
pinned to the healthy shard; only synthetic probes touch the poisoned
one. The gates require the probe known-answer sweep to catch the bad
route while ``stats.errors`` is still zero (the outage is detected
before any client request errors), the ``prober_routes_failing``
threshold alert to fire, and the :class:`IncidentReporter`'s top-ranked
cause to name the correct shard and cite a journal seq. The full
incident report is written under ``bench-artifacts/`` so CI uploads the
post-mortem with the run.

The box this runs on is noisy: back-to-back passes of the *same*
untouched service can spread >10% rps. Sequential phases would fold that
drift into the ratios, so the three throughput modes are measured as
**interleaved rounds** — each round runs one baseline pass, one scraped
pass (same service, scraper toggled on), and one sampled pass (a second
live service with the tracer attached). Each gated ratio is the
**median over rounds of the within-round ratio**: pairing against the
baseline pass of the *same* round cancels slow drift, and the median
rejects rounds poisoned by a one-off stall. What survives is the
genuine cost of the observability path.

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration (fewer
clients/requests; gates off — smoke-scale ratios are too noisy to gate
on, though crashes and fidelity failures still fail). Output is one JSON
object on stdout. In full mode the exit code enforces the bars above.
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import Scalers, build_tile_dataset  # noqa: E402
from repro.models import LearnedPerformanceModel, ModelConfig  # noqa: E402
from repro.models.trainer import TrainResult  # noqa: E402
from repro.serving import (  # noqa: E402
    AlertEngine,
    BurnRateRule,
    ContinuousProfiler,
    CostModelService,
    FaultInjector,
    FaultPlan,
    FaultRule,
    GoldenProbe,
    IncidentReporter,
    MetricsGateway,
    OpsJournal,
    ServiceConfig,
    ServiceEvaluator,
    SyntheticProber,
    ThresholdRule,
    Tracer,
    shard_of,
)
from repro.workloads import vision  # noqa: E402

from harness import stamp_report  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

CHUNK = 4  # candidate tiles per request
CLIENTS = 4 if FAST else 16
REQUESTS_PER_CLIENT = 6 if FAST else 60
REPEATS = 1 if FAST else 9
TIMEOUT_S = 120.0
SAMPLE_RATE = 0.01
#: Scrape cadence during the "scraped" phase. 2 Hz is 30x faster than
#: Prometheus' default 15 s interval while staying honest about the
#: hardware: this is a single-core box, so every millisecond a scrape
#: spends in the stdlib HTTP server + exposition render (~1.7 ms per
#: round trip) is stolen directly from serving. A zero-sleep hammer
#: loop would measure CPU theft by the benchmark driver itself, not
#: the scrape path's cost at any plausible monitoring cadence.
SCRAPE_INTERVAL_S = 0.5


def _service_config() -> ServiceConfig:
    # adaptive_flush stays OFF: each service's flush controller would
    # otherwise converge to its own operating point, and that divergence
    # (not tracing) would dominate the cross-service ratios.
    return ServiceConfig(
        executor="process", replicas=2, max_batch_size=64,
        flush_interval_s=0.002, adaptive_flush=False,
        result_cache_entries=0, dispatch_timeout_s=5.0,
    )


def _build_result():
    programs = (
        [vision.image_embed(0)]
        if FAST
        else [vision.image_embed(0), vision.alexnet(0)]
    )
    dataset = build_tile_dataset(
        programs,
        max_kernels_per_program=4 if FAST else 8,
        max_tiles_per_kernel=8,
        seed=0,
    )
    scalers = Scalers.fit_tile(dataset.records)
    config = ModelConfig(
        task="tile", reduction="column-wise",
        hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16,
    )
    model = LearnedPerformanceModel(config, seed=0)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[]), dataset


def _workload(records, requests_per_client: int):
    kernels = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            kernels.append((record.kernel, tiles))
    stream = []
    for i in range(requests_per_client):
        kernel, tiles = kernels[i % len(kernels)]
        start = (i * CHUNK) % (len(tiles) - CHUNK + 1)
        stream.append((kernel, tiles[start:start + CHUNK]))
    return stream


def _probe_corpus(records, count: int = 3) -> list[GoldenProbe]:
    """Golden probes drawn from the workload's own kernels."""
    probes = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            probes.append(GoldenProbe(record.kernel, tuple(tiles[:CHUNK])))
        if len(probes) >= count:
            break
    return probes


def _fleet_pass(service, stream) -> float:
    """One measured 16-client pass; returns requests/sec."""
    barrier = threading.Barrier(CLIENTS + 1)
    errors: list[BaseException] = []

    def run_client(index: int) -> None:
        rotation = (index * len(stream)) // CLIENTS
        my_stream = stream[rotation:] + stream[:rotation]
        client = ServiceEvaluator(service, timeout_s=TIMEOUT_S)
        barrier.wait()
        try:
            for kernel, tiles in my_stream:
                client.score_tiles_batched(kernel, tiles)
        except BaseException as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=run_client, args=(i,), daemon=True)
        for i in range(CLIENTS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join(timeout=TIMEOUT_S)
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    if any(t.is_alive() for t in threads):
        raise RuntimeError("hung client thread")
    return CLIENTS * len(stream) / elapsed if elapsed > 0 else 0.0


def _median_paired_ratio(
    mode_rates: list[float], baseline_rates: list[float]
) -> float:
    """Median over rounds of (mode rps / same-round baseline rps)."""
    ratios = sorted(
        m / b for m, b in zip(mode_rates, baseline_rates) if b > 0
    )
    if not ratios:
        return 0.0
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return 0.5 * (ratios[mid - 1] + ratios[mid])


def _summary(rates: list[float], stream) -> dict:
    """Best-of-N fleet throughput (the box is noisy; best-of compares
    steady-state capability, matching the other serving benches)."""
    return {
        "clients": CLIENTS,
        "requests": CLIENTS * len(stream),
        "repeats": len(rates),
        "requests_per_sec": max(rates),
        "all_passes_rps": rates,
    }


class _Scraper:
    """Polls ``/metrics`` at SCRAPE_INTERVAL_S cadence while started."""

    def __init__(self, host: str, port: int) -> None:
        self._url = f"http://{host}:{port}/metrics"
        self.scrapes = 0
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "_Scraper":
        self._stop = threading.Event()

        def loop() -> None:
            while not self._stop.is_set():
                with urllib.request.urlopen(self._url, timeout=10) as resp:
                    resp.read()
                self.scrapes += 1
                self._stop.wait(SCRAPE_INTERVAL_S)

        self._thread = threading.Thread(target=loop, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=10)


def _reference_scores(service, stream) -> list:
    """Single-client ordered pass: the per-request score arrays."""
    client = ServiceEvaluator(service, timeout_s=TIMEOUT_S)
    return [
        np.asarray(client.score_tiles_batched(kernel, tiles))
        for kernel, tiles in stream
    ]


def _flatten(node, out):
    out.append(node)
    for kid in node["children"]:
        _flatten(kid, out)
    return out


def _trace_probe(result, stream) -> dict:
    """100% sampling: one request's assembled tree + bitwise probe data."""
    tracer = Tracer(sample_rate=1.0)
    service = CostModelService(result, _service_config(), tracer=tracer).start()
    try:
        scores = _reference_scores(service, stream)
        summaries = tracer.recent(1)
        tree = tracer.trace(summaries[0]["trace_id"]) if summaries else None
        spans = []
        for root in (tree or {"roots": ()})["roots"]:
            _flatten(root, spans)
        processes = sorted({s["process"] for s in spans})
        worker_pids = sorted(
            {
                s["attrs"].get("pid")
                for s in spans
                if s["process"].startswith("worker-")
            }
        )
        return {
            "span_count": len(spans),
            "processes": processes,
            "span_names": sorted({s["name"] for s in spans}),
            "worker_pids": worker_pids,
            "service_pid": os.getpid(),
            "has_frontend": "frontend" in processes,
            "has_scheduler": "scheduler" in processes,
            "has_executor": "executor" in processes,
            "has_worker_subprocess": bool(
                worker_pids and all(pid != os.getpid() for pid in worker_pids)
            ),
            "rendered_chars": len(tracer.render(summaries[0]["trace_id"]))
            if summaries
            else 0,
            "_scores": scores,
        }
    finally:
        service.stop()


#: Where the alert scenario's ops journal lands. CI uploads this
#: directory, so a failed gate ships its own post-mortem evidence.
ARTIFACTS_DIR = os.environ.get("REPRO_BENCH_ARTIFACTS", "bench-artifacts")

#: Slow-worker fault: every faulted forward sleeps this long — well
#: past the scenario's 50 ms latency target, so every faulted request
#: violates (healthy single-client latency on this box is ~3 ms).
FAULT_DELAY_S = 0.12

#: Per-worker fault schedule. ``arm()`` does not cross the process
#: boundary — worker subprocesses run their own injector copy — so the
#: outage is scheduled into the rule itself: each worker serves
#: ``FAULT_AFTER`` forwards healthy, injects ``FAULT_COUNT`` slow ones,
#: then exhausts back to healthy. Warmup stays under FAULT_AFTER even
#: if one shard absorbs every warmup request.
FAULT_AFTER = 25
FAULT_COUNT = 25

#: Scenario SLO: 90% of requests under 50 ms. Budget 0.1, burn-rate
#: threshold 2.0 → the alert breaches once >20% of the windowed
#: requests violate, and clears once healthy traffic dilutes the window
#: back under 20% — reachable with a few hundred post-outage requests,
#: without waiting out the 8192-sample latency ring.
SCENARIO_SLO = dict(slo_target_latency_s=0.05, slo_objective=0.9)
BURN_THRESHOLD = 2.0
PHASE_TIMEOUT_S = 90.0


def _alert_scenario(result, stream) -> dict:
    """Drive a burn-rate alert pending → firing → resolved with real
    faults, and journal every transition with trace correlation."""
    journal_dir = os.path.join(ARTIFACTS_DIR, "observability-journal")
    os.makedirs(journal_dir, exist_ok=True)
    for name in os.listdir(journal_dir):  # stale generations from prior runs
        os.remove(os.path.join(journal_dir, name))
    journal_path = os.path.join(journal_dir, "ops.jsonl")

    injector = FaultInjector(
        FaultPlan(
            rules=(
                FaultRule(
                    hook="worker.forward",
                    kind="delay",
                    delay_s=FAULT_DELAY_S,
                    after=FAULT_AFTER,
                    count=FAULT_COUNT,
                ),
            ),
            seed=0,
        ),
    )
    # A ring deep enough that the firing transition's exemplar trace
    # survives the recovery flood for the correlation check at the end.
    tracer = Tracer(sample_rate=1.0, max_traces=4096)
    journal = OpsJournal(journal_path)
    service = CostModelService(
        result,
        ServiceConfig(
            executor="process", replicas=2, max_batch_size=64,
            flush_interval_s=0.002, adaptive_flush=False,
            result_cache_entries=0, dispatch_timeout_s=30.0,
            **SCENARIO_SLO,
        ),
        tracer=tracer,
        faults=injector,
        journal=journal,
    ).start()
    engine = AlertEngine(
        rules=[
            BurnRateRule(
                name="slo_burn",
                threshold=BURN_THRESHOLD,
                min_samples=16,
                for_s=0.25,
                severity="critical",
            )
        ]
    )
    service.attach_alerts(engine)
    observed: list[str] = []

    def evaluate() -> None:
        for move in engine.evaluate():
            observed.append(move["to"])

    try:
        client = ServiceEvaluator(service, timeout_s=TIMEOUT_S)

        def pump(n: int) -> None:
            for i in range(n):
                kernel, tiles = stream[i % len(stream)]
                client.score_tiles_batched(kernel, tiles)

        # Phase 1 — healthy traffic populates the SLO window (every
        # worker is still inside its FAULT_AFTER healthy prefix).
        pump(16)
        evaluate()
        healthy_state = engine.state("slo_burn")

        # Phase 2 — the scheduled outage: keep serving until the slow
        # forwards push the burn rate over threshold and the alert
        # holds pending for for_s, then fires.
        deadline = time.perf_counter() + PHASE_TIMEOUT_S
        while (
            engine.state("slo_burn") != "firing"
            and time.perf_counter() < deadline
        ):
            pump(2)
            evaluate()

        # Phase 3 — recovery: the fault budget exhausts and healthy
        # traffic dilutes the window back under the burn threshold.
        deadline = time.perf_counter() + PHASE_TIMEOUT_S
        while (
            engine.state("slo_burn") != "resolved"
            and time.perf_counter() < deadline
        ):
            pump(16)
            evaluate()

        transitions = journal.timeline(("alert.",))
        correlated = [
            e["trace_id"]
            for e in transitions
            if e.get("trace_id") and tracer.trace(e["trace_id"]) is not None
        ]
        return {
            "journal_path": journal_path,
            "healthy_state": healthy_state,
            "state_sequence": observed,
            "final_state": engine.state("slo_burn"),
            "transitions": [
                {k: e.get(k) for k in ("seq", "from", "to", "value", "trace_id")}
                for e in transitions
            ],
            "trace_correlated_transitions": len(correlated),
            "journal": journal.snapshot(),
            "slo_final": {
                k: v
                for k, v in service.telemetry.collect().items()
                if k.startswith("slo_")
            },
        }
    finally:
        service.stop()
        journal.close()


def _incident_scenario(result, dataset) -> dict:
    """Silent one-shard corruption: the probe must catch it before any
    client request errors, the alert must fire, and the incident report
    must blame the right shard — the paper-over-pager contract."""
    replicas = 2
    # Route the workload by fingerprint up front: probes must cover both
    # shards, business traffic must be pinned to the healthy one.
    by_shard: dict[int, list] = {0: [], 1: []}
    for record in dataset.records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            shard = shard_of(record.kernel.fingerprint(), replicas)
            by_shard[shard].append((record.kernel, tuple(tiles[:CHUNK])))
    if not by_shard[0] or not by_shard[1]:
        return {"skipped": "workload does not cover both shards"}
    bad_shard = 1
    corpus = [GoldenProbe(k, t) for k, t in (by_shard[0][0], by_shard[1][0])]
    good_stream = by_shard[0][:4] or by_shard[0]

    journal_dir = os.path.join(ARTIFACTS_DIR, "incident-journal")
    os.makedirs(journal_dir, exist_ok=True)
    for name in os.listdir(journal_dir):  # stale generations from prior runs
        os.remove(os.path.join(journal_dir, name))
    journal_path = os.path.join(journal_dir, "ops.jsonl")
    report_path = os.path.join(ARTIFACTS_DIR, "incident-report.json")

    # Armed later: every post-arm checkpoint ship to the bad shard is
    # corrupted, and a one-shot dispatch kill forces exactly one reload.
    # Both hooks fire in the scheduler process, so arm() reaches them.
    injector = FaultInjector(
        FaultPlan(
            rules=(
                FaultRule(
                    hook="registry.load", kind="corrupt",
                    shard=bad_shard, count=None,
                ),
                FaultRule(
                    hook="executor.dispatch", kind="kill",
                    shard=bad_shard, count=1,
                ),
            ),
            seed=0,
        ),
        armed=False,
    )
    journal = OpsJournal(journal_path)
    service = CostModelService(
        result,
        ServiceConfig(
            executor="process", replicas=replicas, max_batch_size=64,
            flush_interval_s=0.002, adaptive_flush=False,
            result_cache_entries=0, dispatch_timeout_s=30.0,
        ),
        faults=injector,
        journal=journal,
    ).start()
    prober = SyntheticProber(corpus, journal=journal)
    service.attach_prober(prober)
    engine = AlertEngine(
        rules=[
            ThresholdRule(
                name="probe_integrity",
                metric="prober_routes_failing",
                threshold=0.0,
                severity="critical",
            )
        ]
    )
    service.attach_alerts(engine)
    reporter = IncidentReporter()
    service.attach_incidents(reporter)
    try:
        client = ServiceEvaluator(service, timeout_s=TIMEOUT_S)

        def pump(n: int) -> None:
            for i in range(n):
                kernel, tiles = good_stream[i % len(good_stream)]
                client.score_tiles_batched(kernel, tiles)

        # Phase 1 — healthy: business traffic flows, a probe sweep
        # passes every route, the alert stays quiet.
        pump(8)
        prober.sweep()
        engine.evaluate()
        healthy = {
            "failing_routes": dict(prober.failing_routes()),
            "alert_state": engine.state("probe_integrity"),
        }

        # Phase 2 — silent corruption: the kill forces a respawn, the
        # respawn reloads a poisoned checkpoint. No business request
        # touches the bad shard; only probes do.
        injector.arm()
        detection = None
        deadline = time.perf_counter() + PHASE_TIMEOUT_S
        while detection is None and time.perf_counter() < deadline:
            prober.sweep()
            failing = prober.failing_routes()
            if failing:
                stats = service.stats.snapshot()
                detection = {
                    "failing_routes": dict(failing),
                    "client_errors": stats["errors"],
                    "client_requests": stats["requests"],
                }
        # Business traffic on the healthy shard still succeeds.
        pump(4)

        # Phase 3 — the threshold alert walks pending → firing, which
        # triggers the incident reporter.
        deadline = time.perf_counter() + PHASE_TIMEOUT_S
        while (
            engine.state("probe_integrity") != "firing"
            and time.perf_counter() < deadline
        ):
            engine.evaluate()
            time.sleep(0.01)

        incidents = reporter.reports()
        incident = reporter.report(incidents[0]["id"]) if incidents else None
        os.makedirs(ARTIFACTS_DIR, exist_ok=True)
        with open(report_path, "w", encoding="utf-8") as fh:
            json.dump(incident, fh, indent=2, default=str)
        final_stats = service.stats.snapshot()
        causes = (incident or {}).get("causes") or [{}]
        top_cause = causes[0]
        return {
            "journal_path": journal_path,
            "report_path": report_path,
            "bad_shard": bad_shard,
            "healthy": healthy,
            "detection": detection,
            "alert_state": engine.state("probe_integrity"),
            "client_errors_final": final_stats["errors"],
            "client_requests_final": final_stats["requests"],
            "incidents": incidents,
            "top_cause": {
                k: top_cause.get(k)
                for k in ("kind", "score", "cause", "evidence")
            },
            "prober": prober.health(),
        }
    finally:
        service.stop()
        journal.close()


def main() -> dict:
    result, dataset = _build_result()
    stream = _workload(dataset.records, REQUESTS_PER_CLIENT)
    report: dict = {
        "benchmark": "bench_observability",
        "fast_mode": FAST,
        "num_kernels": len(dataset.records),
        "requests_per_client": REQUESTS_PER_CLIENT,
        "trace_sample_rate": SAMPLE_RATE,
    }

    # Throughput: baseline / scraped / sampled measured as interleaved
    # rounds against two live services, so box drift cancels out of the
    # ratios (see module docstring). Passes are strictly sequential —
    # only the mode under measurement ever has client load.
    plain = CostModelService(result, _service_config()).start()
    tracer = Tracer(sample_rate=SAMPLE_RATE)
    sampled_svc = CostModelService(
        result, _service_config(), tracer=tracer
    ).start()
    profiler = ContinuousProfiler()
    profiled_svc = CostModelService(
        result, _service_config(), profiler=profiler
    ).start()
    prober = SyntheticProber(_probe_corpus(dataset.records))
    probed_svc = CostModelService(result, _service_config()).start()
    probed_svc.attach_prober(prober)
    try:
        for svc in (plain, sampled_svc, profiled_svc, probed_svc):
            warm = ServiceEvaluator(svc, timeout_s=TIMEOUT_S)
            for kernel, tiles in stream:
                warm.score_tiles_batched(kernel, tiles)
        reference = _reference_scores(plain, stream)

        # Prober attached but idle: the hook sites must be free, so the
        # probed service's answers are held to the bitwise bar.
        probed_scores = _reference_scores(probed_svc, stream)
        report["probed_bitwise_identical"] = bool(
            len(reference) == len(probed_scores)
            and all(
                np.array_equal(a, b)
                for a, b in zip(reference, probed_scores)
            )
        )
        # Prime the prober's reference evaluators (one-time checkpoint
        # deserialization) outside the measured window, then let it
        # sweep at its default cadence for the whole probed phase.
        prober.sweep()
        prober.start()

        rates: dict[str, list[float]] = {
            "baseline": [], "scraped": [], "sampled": [], "profiled": [],
            "probed": [],
        }
        scrapes = 0
        with MetricsGateway(plain) as gateway:
            host, port = gateway.address

            def scraped_pass() -> float:
                nonlocal scrapes
                with _Scraper(host, port) as scraper:
                    rate = _fleet_pass(plain, stream)
                scrapes += scraper.scrapes
                return rate

            modes = [
                ("baseline", lambda: _fleet_pass(plain, stream)),
                ("scraped", scraped_pass),
                ("sampled", lambda: _fleet_pass(sampled_svc, stream)),
                ("profiled", lambda: _fleet_pass(profiled_svc, stream)),
                ("probed", lambda: _fleet_pass(probed_svc, stream)),
            ]
            for round_idx in range(REPEATS):
                # Rotate mode order each round so any positional effect
                # (cache warmth, scheduler settling) biases no one mode.
                shift = round_idx % len(modes)
                for name, run in modes[shift:] + modes[:shift]:
                    rates[name].append(run())

        report["baseline"] = _summary(rates["baseline"], stream)
        report["scraped"] = _summary(rates["scraped"], stream)
        report["scraped"]["scrapes"] = scrapes
        report["sampled"] = _summary(rates["sampled"], stream)
        report["sampled"]["tracer"] = tracer.snapshot()
        report["profiled"] = _summary(rates["profiled"], stream)
        report["profiled"]["profiler"] = profiler.snapshot()
        prober.stop()
        report["probed"] = _summary(rates["probed"], stream)
        report["probed"]["prober"] = prober.health()
        report["probed"]["sweeps"] = prober.sweeps
        profiled_scores = _reference_scores(profiled_svc, stream)
        report["profiled_bitwise_identical"] = bool(
            len(reference) == len(profiled_scores)
            and all(
                np.array_equal(a, b)
                for a, b in zip(reference, profiled_scores)
            )
        )
    finally:
        prober.stop()
        plain.stop()
        sampled_svc.stop()
        profiled_svc.stop()
        probed_svc.stop()

    # Fidelity: 100% sampling — trace tree + the bitwise probe.
    probe = _trace_probe(result, stream)
    traced_scores = probe.pop("_scores")
    report["trace_probe"] = probe
    report["bitwise_identical"] = bool(
        len(reference) == len(traced_scores)
        and all(
            np.array_equal(a, b) for a, b in zip(reference, traced_scores)
        )
    )

    report["scraped_ratio"] = _median_paired_ratio(
        report["scraped"]["all_passes_rps"],
        report["baseline"]["all_passes_rps"],
    )
    report["sampled_ratio"] = _median_paired_ratio(
        report["sampled"]["all_passes_rps"],
        report["baseline"]["all_passes_rps"],
    )
    report["profiled_ratio"] = _median_paired_ratio(
        report["profiled"]["all_passes_rps"],
        report["baseline"]["all_passes_rps"],
    )
    report["probed_ratio"] = _median_paired_ratio(
        report["probed"]["all_passes_rps"],
        report["baseline"]["all_passes_rps"],
    )

    # Alert fidelity: slow-worker faults must walk the burn-rate alert
    # through its full state machine, durably journaled.
    report["alert_scenario"] = _alert_scenario(result, stream)

    # Incident fidelity: one silently-corrupted shard must be caught by
    # the probe sweep before any client sees an error, and the incident
    # report must blame the right shard.
    report["incident_scenario"] = _incident_scenario(result, dataset)
    return report


def _subsequence(needle: tuple, haystack: list) -> bool:
    """True when ``needle``'s items appear in ``haystack`` in order."""
    it = iter(haystack)
    return all(any(item == want for item in it) for want in needle)


def _gates(report: dict) -> list[str]:
    """Observability acceptance bars enforced by exit code in full mode."""
    failures = []
    if not report["bitwise_identical"]:
        failures.append("tracing perturbed the scores: not bitwise identical")
    if report["scraped_ratio"] < 0.95:
        failures.append(
            f"scraped throughput {report['scraped_ratio']:.3f}x baseline < 0.95x"
        )
    if report["sampled_ratio"] < 0.9:
        failures.append(
            f"1%-sampled throughput {report['sampled_ratio']:.3f}x baseline < 0.9x"
        )
    if report["profiled_ratio"] < 0.95:
        failures.append(
            f"profiled throughput {report['profiled_ratio']:.3f}x baseline < 0.95x"
        )
    if not report["profiled_bitwise_identical"]:
        failures.append("profiling perturbed the scores: not bitwise identical")
    if not report["probed_bitwise_identical"]:
        failures.append(
            "an idle attached prober perturbed the scores: "
            "not bitwise identical"
        )
    if report["probed_ratio"] < 0.97:
        failures.append(
            f"probed throughput {report['probed_ratio']:.3f}x baseline < 0.97x"
        )
    if report["probed"]["sweeps"] < 1:
        failures.append("the prober never completed a sweep under load")
    if report["probed"]["prober"]["failures"] > 0:
        failures.append(
            "probe known-answer failures on a healthy service "
            f"({report['probed']['prober']['failures']})"
        )
    scenario = report["alert_scenario"]
    sequence = scenario["state_sequence"]
    if not _subsequence(("pending", "firing", "resolved"), sequence):
        failures.append(
            "burn-rate alert never walked pending -> firing -> resolved "
            f"(observed {sequence})"
        )
    if scenario["trace_correlated_transitions"] < 1:
        failures.append(
            "no journaled alert transition carries a resolvable trace_id"
        )
    if scenario["journal"]["journal_events"] < 3:
        failures.append("the ops journal recorded fewer than 3 events")
    probe = report["trace_probe"]
    for layer in ("frontend", "scheduler", "executor"):
        if not probe[f"has_{layer}"]:
            failures.append(f"trace tree missing the {layer} layer")
    if not probe["has_worker_subprocess"]:
        failures.append(
            "trace tree has no span recorded inside a worker subprocess"
        )
    if report["scraped"]["scrapes"] < 1:
        failures.append("the scraper never completed a /metrics scrape")
    incident = report["incident_scenario"]
    if incident.get("skipped"):
        failures.append(f"incident scenario skipped: {incident['skipped']}")
        return failures
    detection = incident.get("detection")
    if not detection:
        failures.append(
            "probes never caught the silently corrupted shard"
        )
        return failures
    bad = str(incident["bad_shard"])
    if not any(
        route.split(":")[1] == bad for route in detection["failing_routes"]
    ):
        failures.append(
            f"probe failures did not isolate shard {bad} "
            f"(failing: {sorted(detection['failing_routes'])})"
        )
    if detection["client_errors"] > 0:
        failures.append(
            "clients saw errors before the probe caught the corruption "
            f"({detection['client_errors']} errors)"
        )
    if incident["alert_state"] != "firing":
        failures.append(
            "the probe-integrity alert never fired "
            f"(state {incident['alert_state']!r})"
        )
    cause = incident["top_cause"]
    if cause.get("kind") != "probe_failure":
        failures.append(
            f"incident top cause is {cause.get('kind')!r}, not probe_failure"
        )
    else:
        evidence = cause.get("evidence") or {}
        if str(evidence.get("shard")) != bad:
            failures.append(
                f"incident top cause blames shard {evidence.get('shard')}, "
                f"expected {bad}"
            )
        if evidence.get("first_failure_seq") is None:
            failures.append(
                "incident top cause cites no journal seq for first failure"
            )
    if not os.path.exists(incident.get("report_path", "")):
        failures.append("incident report JSON was not written to artifacts")
    return failures


if __name__ == "__main__":
    report = main()
    print(json.dumps(stamp_report(report), indent=2))
    failures = [] if FAST else _gates(report)
    for failure in failures:
        print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
