"""Throughput benchmark: cached vs. cold hot paths, as JSON.

Tracks the perf trajectory of the serving-layer foundation introduced with
the :class:`repro.data.KernelCache`:

* **training-step assembly** — steps/sec of batch assembly for the tile
  trainer, cold (``assemble_batch`` from scratch every step, the seed
  behaviour) vs. cached (``KernelCache.assemble`` over a precompiled step
  plan, the current behaviour);
* **full training step** — steps/sec including forward/backward, for
  context on how much of a step assembly used to eat;
* **autotuner tile scoring** — tiles/sec for repeated-kernel queries,
  cold (fresh feature extraction + normalization per query, per-candidate
  model calls) vs. cached+batched (``score_tiles_batched`` on a warm
  evaluator).

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration. Output is
a single JSON object on stdout so the numbers can be tracked PR-over-PR
(see the Performance section of ROADMAP.md).
"""
from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.autotuner import LearnedEvaluator  # noqa: E402
from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import (  # noqa: E402
    KernelCache,
    Scalers,
    TileBatchSampler,
    assemble_batch,
    build_tile_dataset,
)
from repro.models import (  # noqa: E402
    LearnedPerformanceModel,
    ModelConfig,
    TrainConfig,
    train_tile_model,
)
from repro.models.trainer import compile_step_plan  # noqa: E402
from repro.workloads import vision  # noqa: E402

from harness import stamp_report  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def _timed(fn, repeat: int) -> float:
    """Wall-clock seconds for ``repeat`` calls of ``fn`` (after one warmup)."""
    fn()
    start = time.perf_counter()
    for _ in range(repeat):
        fn()
    return time.perf_counter() - start


def bench_training_assembly(records, scalers, steps: int) -> dict:
    """Cold assemble_batch vs. cached KernelCache.assemble, same draws."""
    config = ModelConfig.paper_best_tile()
    sampler = TileBatchSampler(records, kernels_per_batch=8, tiles_per_kernel=4)
    plan = compile_step_plan(sampler.draw_items, steps)

    def cold():
        for items in plan:
            assemble_batch(items, scalers, neighbor_cap=config.neighbor_cap)

    cache = KernelCache(scalers, neighbor_cap=config.neighbor_cap)
    for items in plan:  # warm the per-kernel entries
        cache.assemble(items)

    def cached():
        for items in plan:
            cache.assemble(items)

    cold_s = _timed(cold, 1)
    cached_s = _timed(cached, 1)
    return {
        "steps": steps,
        "cold_steps_per_sec": steps / cold_s,
        "cached_steps_per_sec": steps / cached_s,
        "speedup": cold_s / cached_s,
        "kernel_cache_hits": cache.hits,
        "kernel_cache_misses": cache.misses,
    }


def bench_full_training(records, steps: int) -> dict:
    """End-to-end steps/sec of the (cache-backed) training loop."""
    start = time.perf_counter()
    train_tile_model(records, train=TrainConfig(steps=steps, log_every=steps))
    elapsed = time.perf_counter() - start
    return {"steps": steps, "steps_per_sec": steps / elapsed}


def bench_autotuner_scoring(records, scalers, queries: int) -> dict:
    """Repeated-kernel tile scoring: per-candidate cold calls vs. batched."""
    config = ModelConfig.paper_best_tile()
    model = LearnedPerformanceModel(config)
    model.eval()
    # The kernel with the most candidates — the one an autotuner hammers.
    record = max(records, key=lambda r: len(enumerate_tile_sizes(r.kernel)))
    kernel = record.kernel
    tiles = enumerate_tile_sizes(kernel)

    cold_eval = LearnedEvaluator(model, scalers, cache=False)

    def cold():
        # The seed behaviour a per-candidate search strategy induces:
        # every candidate is a fresh query with its own feature
        # extraction, normalization, and single-item forward pass.
        for tile in tiles:
            cold_eval.tile_scores(kernel, [tile])

    warm_eval = LearnedEvaluator(model, scalers, cache=True)
    warm_eval.score_tiles_batched(kernel, tiles)  # warm the caches

    def cached():
        warm_eval.score_tiles_batched(kernel, tiles)

    repeat = max(queries // max(len(tiles), 1), 1)
    cold_s = _timed(cold, repeat)
    cached_s = _timed(cached, repeat)
    scored = repeat * len(tiles)
    return {
        "kernel_nodes": int(record.features.num_nodes),
        "candidate_tiles": len(tiles),
        "queries": scored,
        "cold_tiles_per_sec": scored / cold_s,
        "cached_tiles_per_sec": scored / cached_s,
        "speedup": cold_s / cached_s,
        "feature_cache_hits": warm_eval.feature_cache_hits,
        "feature_cache_misses": warm_eval.feature_cache_misses,
    }


def main() -> dict:
    programs = [vision.resnet_v1(0), vision.alexnet(0)]
    if not FAST:
        programs += [vision.inception(0), vision.ssd(0)]
    dataset = build_tile_dataset(
        programs, max_tiles_per_kernel=8 if FAST else 16, seed=0
    )
    records = dataset.records
    scalers = Scalers.fit_tile(records)

    assembly_steps = 30 if FAST else 150
    train_steps = 10 if FAST else 60
    scoring_queries = 60 if FAST else 400

    report = {
        "benchmark": "bench_throughput",
        "fast_mode": FAST,
        "num_kernels": len(records),
        "training_assembly": bench_training_assembly(records, scalers, assembly_steps),
        "full_training": bench_full_training(records, train_steps),
        "autotuner_scoring": bench_autotuner_scoring(records, scalers, scoring_queries),
    }
    return report


if __name__ == "__main__":
    report = main()
    print(json.dumps(stamp_report(report), indent=2))
    ok = (
        report["training_assembly"]["speedup"] >= 1.0
        and report["autotuner_scoring"]["speedup"] >= 1.0
    )
    sys.exit(0 if ok else 1)
