"""Table 4: architecture ablation — {No GNN, GraphSAGE, GAT} x
{per-node, column-wise, LSTM, Transformer} on both tasks.

Paper reference (mean test error, tile / fusion):

    reduction    No GNN        GraphSAGE     GAT
    per-node     10.7 / 16.6   6.0 /  7.3    9.2 / 15.1
    column-wise   9.3 /  6.6   6.9 /  5.1    8.4 /  8.5
    LSTM          7.1 /  3.9   3.7 /  5.0    7.7 /  7.4
    Transformer  10.8 /  7.3   4.6 /  4.5    8.2 / 14.6

Shapes to reproduce: GraphSAGE columns dominate their No-GNN and GAT
counterparts; sequence reductions (LSTM/Transformer) on top of GraphSAGE
beat the non-model reductions; GAT trains worse than GraphSAGE.
"""
import numpy as np

from harness import (
    eval_fusion_split,
    eval_tile_split,
    scale,
    trained_fusion_model,
    trained_tile_model,
)
from repro.evaluation import format_table
from repro.models import ModelConfig

STEPS = scale(700, 200)
GNNS = ["none", "graphsage", "gat"]
REDUCTIONS = ["per-node", "column-wise", "lstm", "transformer"]

PAPER_TILE = {
    ("none", "per-node"): 10.7, ("graphsage", "per-node"): 6.0, ("gat", "per-node"): 9.2,
    ("none", "column-wise"): 9.3, ("graphsage", "column-wise"): 6.9, ("gat", "column-wise"): 8.4,
    ("none", "lstm"): 7.1, ("graphsage", "lstm"): 3.7, ("gat", "lstm"): 7.7,
    ("none", "transformer"): 10.8, ("graphsage", "transformer"): 4.6, ("gat", "transformer"): 8.2,
}
PAPER_FUSION = {
    ("none", "per-node"): 16.6, ("graphsage", "per-node"): 7.3, ("gat", "per-node"): 15.1,
    ("none", "column-wise"): 6.6, ("graphsage", "column-wise"): 5.1, ("gat", "column-wise"): 8.5,
    ("none", "lstm"): 3.9, ("graphsage", "lstm"): 5.0, ("gat", "lstm"): 7.4,
    ("none", "transformer"): 7.3, ("graphsage", "transformer"): 4.5, ("gat", "transformer"): 14.6,
}


def _config(task, gnn, reduction):
    loss = "rank_hinge" if task == "tile" else "mse"
    return ModelConfig(
        task=task, gnn=gnn, reduction=reduction, loss=loss,
        use_static_features=True, static_placement="node",
    )


def _run():
    tile, fusion = {}, {}
    for gnn in GNNS:
        for reduction in REDUCTIONS:
            res = trained_tile_model("random", _config("tile", gnn, reduction), steps=STEPS)
            rows = eval_tile_split("random", res)
            tile[(gnn, reduction)] = float(np.mean([r.learned_ape for r in rows]))
            res = trained_fusion_model("random", _config("fusion", gnn, reduction), steps=STEPS)
            rows = eval_fusion_split("random", res)
            fusion[(gnn, reduction)] = float(np.mean([r.learned_mape for r in rows]))
    return tile, fusion


def test_table4_architecture_ablation(benchmark):
    tile, fusion = benchmark.pedantic(_run, rounds=1, iterations=1)
    for task_name, measured, paper in (
        ("tile-size (mean APE)", tile, PAPER_TILE),
        ("fusion (mean MAPE)", fusion, PAPER_FUSION),
    ):
        body = []
        for reduction in REDUCTIONS:
            row = [reduction]
            for gnn in GNNS:
                row.append(measured[(gnn, reduction)])
            for gnn in GNNS:
                row.append(paper[(gnn, reduction)])
            body.append(row)
        print()
        print(
            format_table(
                ["Reduction", "NoGNN", "SAGE", "GAT", "p:NoGNN", "p:SAGE", "p:GAT"],
                body,
                title=f"Table 4 (reproduced): {task_name}",
            )
        )
    # Shape: GraphSAGE beats No-GNN and GAT averaged over reductions on
    # the tile task (the paper's Q1/Q3 conclusions).
    mean_by_gnn = {g: np.mean([tile[(g, r)] for r in REDUCTIONS]) for g in GNNS}
    assert mean_by_gnn["graphsage"] <= mean_by_gnn["none"] * 1.1
    assert mean_by_gnn["graphsage"] <= mean_by_gnn["gat"] * 1.1
