"""Serving-layer throughput benchmark, as JSON.

Measures requests/sec for tile-score queries at 1/4/16 concurrent clients
against three serving configurations:

* **direct** — each client thread owns a warm
  :class:`~repro.autotuner.LearnedEvaluator` and calls it in-process (no
  service boundary; per-client model copies, the thing the service layer
  exists to avoid);
* **naive service** — one shared ``CostModelService`` with
  ``max_batch_size=1``: every request pays its own forward pass (the
  per-request RPC baseline);
* **micro-batched service** — the same service with coalescing enabled:
  queued same-kernel requests merge into shared forward passes.

The workload models concurrent autotuner workers splitting one kernel's
candidate population: each request asks for scores of a small chunk of
candidate tiles, the query stream an annealing/genetic search emits.
The result cache is disabled so every request exercises the full path.

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration. Output is
one JSON object on stdout (tracked PR-over-PR in ROADMAP.md). In full
mode the exit code enforces the acceptance bar: micro-batched >= 3x naive
at 16 clients. Fast mode is informational only (it still fails on
crashes): its request counts are far too small for stable ratios, so
gating on them would make CI flaky.
"""
from __future__ import annotations

import json
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.autotuner import LearnedEvaluator  # noqa: E402
from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import Scalers, build_tile_dataset  # noqa: E402
from repro.evaluation import ServingStats  # noqa: E402
from repro.models import LearnedPerformanceModel, ModelConfig  # noqa: E402
from repro.models.trainer import TrainResult  # noqa: E402
from repro.serving import (  # noqa: E402
    CostModelService,
    ServiceConfig,
    ServiceEvaluator,
)
from repro.workloads import vision  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

CHUNK = 4  # candidate tiles per request (one search step's proposals)


def _workload(records, requests_per_client: int):
    """Per-request (kernel, tile-chunk) stream: clients walk the kernels
    round-robin, requesting successive chunks of each candidate list."""
    kernels = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            kernels.append((record.kernel, tiles))
    stream = []
    for i in range(requests_per_client):
        kernel, tiles = kernels[i % len(kernels)]
        start = (i * CHUNK) % (len(tiles) - CHUNK + 1)
        stream.append((kernel, tiles[start:start + CHUNK]))
    return stream


def _run_clients(num_clients: int, stream, make_scorer) -> dict:
    """Spin up clients, each scoring the whole stream; requests/sec."""
    barrier = threading.Barrier(num_clients + 1)

    def client() -> None:
        scorer = make_scorer()
        barrier.wait()
        for kernel, tiles in stream:
            scorer.score_tiles_batched(kernel, tiles)

    threads = [threading.Thread(target=client) for _ in range(num_clients)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = num_clients * len(stream)
    return {
        "clients": num_clients,
        "requests": total,
        "requests_per_sec": total / elapsed,
        "elapsed_s": elapsed,
    }


def bench_direct(result, stream, num_clients: int) -> dict:
    """Per-client warm evaluators, no service boundary."""
    def make_scorer():
        evaluator = LearnedEvaluator(result.model, result.scalers)
        for kernel, tiles in stream:
            evaluator.score_tiles_batched(kernel, tiles)  # warm caches
        return evaluator

    return _run_clients(num_clients, stream, make_scorer)


def bench_service(result, stream, num_clients: int, max_batch_size: int) -> dict:
    config = ServiceConfig(
        max_batch_size=max_batch_size,
        flush_interval_s=0.002,
        result_cache_entries=0,  # every request must exercise the model
    )
    with CostModelService(result, config) as service:
        # Warm the replica's kernel caches so all configurations compete
        # on steady-state forward-pass throughput.
        warm = ServiceEvaluator(service)
        for kernel, tiles in stream:
            warm.score_tiles_batched(kernel, tiles)
        # Fresh stats: occupancy/latency must describe measured traffic
        # only, not the sequential warmup.
        service.stats = ServingStats()
        report = _run_clients(
            num_clients, stream, lambda: ServiceEvaluator(service)
        )
        metrics = service.metrics()
    report["batch_occupancy"] = metrics["batch_occupancy"]
    report["requests_per_forward"] = metrics["requests_per_forward"]
    report["latency_p50_s"] = metrics["latency_p50_s"]
    report["latency_p99_s"] = metrics["latency_p99_s"]
    return report


def main() -> dict:
    programs = [vision.image_embed(0)] if FAST else [vision.resnet_v1(0), vision.alexnet(0)]
    dataset = build_tile_dataset(
        programs,
        max_kernels_per_program=4 if FAST else 8,
        max_tiles_per_kernel=8,
        seed=0,
    )
    scalers = Scalers.fit_tile(dataset.records)
    config = ModelConfig.paper_best_tile()
    model = LearnedPerformanceModel(config)
    model.eval()
    result = TrainResult(model=model, scalers=scalers, loss_history=[])

    requests_per_client = 8 if FAST else 40
    client_counts = [1, 4] if FAST else [1, 4, 16]
    stream = _workload(dataset.records, requests_per_client)

    report: dict = {
        "benchmark": "bench_serving",
        "fast_mode": FAST,
        "num_kernels": len(dataset.records),
        "tiles_per_request": CHUNK,
        "requests_per_client": requests_per_client,
        "direct": {},
        "naive_service": {},
        "micro_batched_service": {},
    }
    for n in client_counts:
        report["direct"][str(n)] = bench_direct(result, stream, n)
        report["naive_service"][str(n)] = bench_service(result, stream, n, max_batch_size=1)
        report["micro_batched_service"][str(n)] = bench_service(
            result, stream, n, max_batch_size=64
        )

    top = str(client_counts[-1])
    report["speedup_vs_naive_at_max_clients"] = (
        report["micro_batched_service"][top]["requests_per_sec"]
        / report["naive_service"][top]["requests_per_sec"]
    )
    return report


if __name__ == "__main__":
    report = main()
    print(json.dumps(report, indent=2))
    ok = FAST or report["speedup_vs_naive_at_max_clients"] >= 3.0
    sys.exit(0 if ok else 1)
