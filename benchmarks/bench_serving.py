"""Serving-stack throughput benchmark, as JSON.

Measures requests/sec for tile-score queries at 1/4/16 concurrent clients
across the transport x executor matrix:

* **direct** — each client thread owns a warm
  :class:`~repro.autotuner.LearnedEvaluator` and calls it in-process (no
  service boundary; per-client model copies, the thing the service layer
  exists to avoid);
* **naive service** — one shared ``CostModelService`` with
  ``max_batch_size=1``: every request pays its own forward pass (the
  per-request RPC baseline);
* **micro-batched service** — the same service with coalescing enabled
  and the fixed 2 ms flush window (the PR 2 configuration);
* **adaptive service** — micro-batching with the flush window derived
  from the inter-arrival EMA: zero wait in the sparse 1-client regime,
  the full window under dense concurrent load;
* **threaded pool** (max clients) — micro-batched + 4 in-thread shards:
  the in-process placement the process executor must beat;
* **process shards** (max clients) — micro-batched + 4 worker
  subprocesses: shard-fused forwards, checkpoints shipped as blobs;
* **socket frontend** (max clients) — the same micro-batched service
  queried through the length-prefixed TCP frontend, one connection per
  client. The clients run in their own process — the deployment shape
  the socket transport exists for (an in-server client thread pool would
  charge all client-side work to the server's interpreter) — and the
  flush window is doubled, the usual scaling of a batching window with
  transport round-trip time.

Two workload regimes, because the serving wins live in different ones:

* **population-splitting** (the coalescing rows): every client walks the
  same (kernel, tile-chunk) stream — concurrent search workers splitting
  one kernel's candidate population. Same-instant requests hit the same
  kernel and coalesce into single shared forwards (the micro-batching
  win). This is the PR 2 workload, kept for comparability.
* **independent tuners** (the placement rows): each client walks the
  stream at its own rotation — N tuners each tuning a different kernel
  subset, the deployment sharding exists for. Batches then span many
  distinct kernels, which is what differentiates executors: the
  in-thread pool pays one forward per kernel, the process executor fuses
  each shard's slice into one multi-kernel forward.

The result cache is disabled so every request exercises the full path.

Run with ``REPRO_BENCH_FAST=1`` for the CI smoke configuration. Output is
one JSON object on stdout (tracked PR-over-PR in ROADMAP.md). In full
mode the exit code enforces the acceptance bars:

* micro-batched >= 3x naive at max clients (the PR 2 bar);
* adaptive >= 1.5x fixed micro-batched at 1 client (no lone-client tax)
  while holding >= 3x naive at max clients;
* process shards beat the equally-sharded threaded pool at max clients
  (independent-tuner regime);
* the socket frontend sustains >= 0.5x in-process throughput at max
  clients (population-splitting regime, same as its baseline).

Fast mode is informational only (it still fails on crashes): its request
counts are far too small for stable ratios, so gating on them would make
CI flaky.
"""
from __future__ import annotations

import json
import multiprocessing
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.autotuner import LearnedEvaluator  # noqa: E402
from repro.compiler import enumerate_tile_sizes  # noqa: E402
from repro.data import Scalers, build_tile_dataset  # noqa: E402
from repro.evaluation import ServingStats  # noqa: E402
from repro.models import LearnedPerformanceModel, ModelConfig  # noqa: E402
from repro.models.trainer import TrainResult  # noqa: E402
from repro.serving import (  # noqa: E402
    CostModelService,
    ServiceConfig,
    ServiceEvaluator,
    SocketEvaluator,
    SocketFrontend,
)
from repro.workloads import vision  # noqa: E402

from harness import stamp_report  # noqa: E402

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

CHUNK = 4  # candidate tiles per request (one search step's proposals)
SHARDS = 2 if FAST else 4  # shard count for the pool/process rows
#: Measured passes per configuration; the best is reported. The container
#: benchmark box is small and noisy, so single-pass ratios between rows
#: wander by tens of percent — best-of-N compares steady-state capability.
REPEATS = 1 if FAST else 3


def _workload(records, requests_per_client: int):
    """Per-request (kernel, tile-chunk) stream: clients walk the kernels
    round-robin, requesting successive chunks of each candidate list."""
    kernels = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= CHUNK:
            kernels.append((record.kernel, tiles))
    stream = []
    for i in range(requests_per_client):
        kernel, tiles = kernels[i % len(kernels)]
        start = (i * CHUNK) % (len(tiles) - CHUNK + 1)
        stream.append((kernel, tiles[start:start + CHUNK]))
    return stream


def _client_streams(stream, num_clients: int, decorrelate: bool):
    """Per-client request streams for one measured pass.

    Correlated (default): every client walks the identical stream —
    population-splitting workers, maximal same-kernel coalescing.
    De-correlated: client ``i`` starts at its own rotation — independent
    tuners, so any instant's batch spans many distinct kernels.
    """
    if not decorrelate:
        return [stream] * num_clients
    return [
        stream[(i * len(stream)) // num_clients:]
        + stream[: (i * len(stream)) // num_clients]
        for i in range(num_clients)
    ]


def _run_clients_once(num_clients: int, streams, make_scorer) -> dict:
    """Spin up clients, each scoring its stream; requests/sec."""
    barrier = threading.Barrier(num_clients + 1)

    def client(index: int) -> None:
        scorer = make_scorer()
        barrier.wait()
        for kernel, tiles in streams[index]:
            scorer.score_tiles_batched(kernel, tiles)
        closer = getattr(scorer, "close", None)
        if closer is not None:
            closer()

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    total = sum(len(s) for s in streams)
    return {
        "clients": num_clients,
        "requests": total,
        "requests_per_sec": total / elapsed,
        "elapsed_s": elapsed,
    }


def _run_clients(num_clients: int, streams, make_scorer) -> dict:
    """Best of ``REPEATS`` measured passes (noise-robust comparison)."""
    best = None
    for _ in range(REPEATS):
        report = _run_clients_once(num_clients, streams, make_scorer)
        if best is None or report["requests_per_sec"] > best["requests_per_sec"]:
            best = report
    best["measured_passes"] = REPEATS
    return best


def _socket_client_proc(
    address, stream, num_conns: int, go_events, done_queue, repeats: int
) -> None:
    """Client-process half of the socket row: N connections, one thread
    each, driven through ``repeats`` handshake-synchronized passes."""
    from repro.serving import SocketEvaluator

    evaluators = [SocketEvaluator(address, timeout_s=300.0) for _ in range(num_conns)]

    def drive(evaluator) -> None:
        for kernel, tiles in stream:
            evaluator.score_tiles_batched(kernel, tiles)

    for i in range(repeats):
        done_queue.put(("ready", i))
        go_events[i].wait()
        threads = [
            threading.Thread(target=drive, args=(e,)) for e in evaluators
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        done_queue.put(("done", i))
    for evaluator in evaluators:
        evaluator.close()


def _await_client(queue, process, expected, timeout: float = 600.0):
    """Wait for the client process's handshake message, noticing a dead
    child within seconds instead of sitting out the whole timeout."""
    import queue as queue_module

    deadline = time.monotonic() + timeout
    while True:
        try:
            message = queue.get(timeout=5.0)
        except queue_module.Empty:
            if not process.is_alive():
                raise RuntimeError(
                    f"socket client process died before {expected!r} "
                    f"(exitcode={process.exitcode})"
                ) from None
            if time.monotonic() >= deadline:
                raise TimeoutError(f"no {expected!r} from socket client process")
            continue
        if message != expected:
            raise RuntimeError(f"unexpected client handshake {message!r}")
        return


def _run_socket_clients(frontend, stream, num_clients: int) -> dict:
    """Measure the socket frontend against a separate client process."""
    ctx = multiprocessing.get_context("spawn")
    go_events = [ctx.Event() for _ in range(REPEATS)]
    done_queue = ctx.Queue()
    process = ctx.Process(
        target=_socket_client_proc,
        args=(frontend.address, stream, num_clients, go_events, done_queue, REPEATS),
    )
    process.start()
    best = None
    try:
        for i in range(REPEATS):
            _await_client(done_queue, process, ("ready", i))
            go_events[i].set()
            start = time.perf_counter()
            _await_client(done_queue, process, ("done", i))
            elapsed = time.perf_counter() - start
            total = num_clients * len(stream)
            report = {
                "clients": num_clients,
                "requests": total,
                "requests_per_sec": total / elapsed,
                "elapsed_s": elapsed,
            }
            if best is None or report["requests_per_sec"] > best["requests_per_sec"]:
                best = report
    finally:
        process.join(timeout=60)
        if process.is_alive():
            process.terminate()
    best["measured_passes"] = REPEATS
    best["client_process"] = True
    return best


def bench_direct(result, stream, num_clients: int) -> dict:
    """Per-client warm evaluators, no service boundary."""
    def make_scorer():
        evaluator = LearnedEvaluator(result.model, result.scalers)
        for kernel, tiles in stream:
            evaluator.score_tiles_batched(kernel, tiles)  # warm caches
        return evaluator

    return _run_clients(num_clients, _client_streams(stream, num_clients, False), make_scorer)


def bench_service(
    result,
    stream,
    num_clients: int,
    max_batch_size: int,
    adaptive_flush: bool = False,
    replicas: int = 1,
    executor: str = "thread",
    transport: str = "inproc",
    decorrelate: bool = False,
    flush_interval_s: float = 0.002,
) -> dict:
    config = ServiceConfig(
        max_batch_size=max_batch_size,
        flush_interval_s=flush_interval_s,
        adaptive_flush=adaptive_flush,
        replicas=replicas,
        executor=executor,
        result_cache_entries=0,  # every request must exercise the model
    )
    with CostModelService(result, config) as service:
        # Warm the executor's kernel caches (and, for the process
        # executor, spawn + sync the workers and intern the kernels) so
        # all configurations compete on steady-state forward throughput.
        warm = ServiceEvaluator(service)
        for kernel, tiles in stream:
            warm.score_tiles_batched(kernel, tiles)
        # Fresh stats: occupancy/latency must describe measured traffic
        # only, not the sequential warmup.
        service.stats = ServingStats()
        if transport == "socket":
            with SocketFrontend(service) as frontend:
                report = _run_socket_clients(frontend, stream, num_clients)
        else:
            streams = _client_streams(stream, num_clients, decorrelate)
            report = _run_clients(
                num_clients, streams, lambda: ServiceEvaluator(service)
            )
        metrics = service.metrics()
    report["batch_occupancy"] = metrics["batch_occupancy"]
    report["requests_per_forward"] = metrics["requests_per_forward"]
    report["latency_p50_s"] = metrics["latency_p50_s"]
    report["latency_p99_s"] = metrics["latency_p99_s"]
    if replicas > 1:
        report["per_shard_requests"] = {
            shard: entry["requests"]
            for shard, entry in metrics["per_shard"].items()
        }
    return report


def main() -> dict:
    # A wide kernel pool (~30 kernels full mode): the independent-tuner
    # regime needs many distinct kernels in flight to be meaningful.
    if FAST:
        programs = [vision.image_embed(0)]
    else:
        programs = [
            vision.resnet_v1(0), vision.alexnet(0),
            vision.image_embed(0), vision.ssd(0),
        ]
    dataset = build_tile_dataset(
        programs,
        max_kernels_per_program=4 if FAST else 8,
        max_tiles_per_kernel=8,
        seed=0,
    )
    scalers = Scalers.fit_tile(dataset.records)
    config = ModelConfig.paper_best_tile()
    model = LearnedPerformanceModel(config)
    model.eval()
    result = TrainResult(model=model, scalers=scalers, loss_history=[])

    requests_per_client = 8 if FAST else 40
    client_counts = [1, 4] if FAST else [1, 4, 16]
    stream = _workload(dataset.records, requests_per_client)

    report: dict = {
        "benchmark": "bench_serving",
        "fast_mode": FAST,
        "num_kernels": len(dataset.records),
        "tiles_per_request": CHUNK,
        "requests_per_client": requests_per_client,
        "shards": SHARDS,
        "direct": {},
        "naive_service": {},
        "micro_batched_service": {},
        "adaptive_service": {},
        "threaded_pool_service": {},
        "process_shard_service": {},
        "socket_service": {},
    }
    for n in client_counts:
        report["direct"][str(n)] = bench_direct(result, stream, n)
        report["naive_service"][str(n)] = bench_service(result, stream, n, max_batch_size=1)
        report["micro_batched_service"][str(n)] = bench_service(
            result, stream, n, max_batch_size=64
        )
        report["adaptive_service"][str(n)] = bench_service(
            result, stream, n, max_batch_size=64, adaptive_flush=True
        )

    # The placement matrix is a max-concurrency, independent-tuner story;
    # measuring at one client count keeps full-mode runtime sane. Both
    # placement rows run the identical de-correlated workload. The socket
    # row runs the population-splitting workload, like the in-process
    # baseline it is compared against.
    top_n = client_counts[-1]
    top = str(top_n)
    report["threaded_pool_service"][top] = bench_service(
        result, stream, top_n, max_batch_size=64, adaptive_flush=True,
        replicas=SHARDS, executor="thread", decorrelate=True,
    )
    report["process_shard_service"][top] = bench_service(
        result, stream, top_n, max_batch_size=64, adaptive_flush=True,
        replicas=SHARDS, executor="process", decorrelate=True,
    )
    report["socket_service"][top] = bench_service(
        result, stream, top_n, max_batch_size=64, adaptive_flush=True,
        transport="socket", flush_interval_s=0.004,
    )

    rps = lambda row: row["requests_per_sec"]  # noqa: E731
    report["speedup_vs_naive_at_max_clients"] = (
        rps(report["micro_batched_service"][top]) / rps(report["naive_service"][top])
    )
    report["adaptive_vs_naive_at_max_clients"] = (
        rps(report["adaptive_service"][top]) / rps(report["naive_service"][top])
    )
    report["adaptive_vs_fixed_at_1_client"] = (
        rps(report["adaptive_service"]["1"]) / rps(report["micro_batched_service"]["1"])
    )
    report["process_vs_threaded_pool_at_max_clients"] = (
        rps(report["process_shard_service"][top])
        / rps(report["threaded_pool_service"][top])
    )
    report["socket_vs_inprocess_at_max_clients"] = (
        rps(report["socket_service"][top]) / rps(report["adaptive_service"][top])
    )
    return report


def _gates(report: dict) -> list[str]:
    """Acceptance bars enforced by exit code in full mode."""
    failures = []
    if report["speedup_vs_naive_at_max_clients"] < 3.0:
        failures.append(
            f"micro-batched vs naive at max clients: "
            f"{report['speedup_vs_naive_at_max_clients']:.2f}x < 3.0x"
        )
    if report["adaptive_vs_naive_at_max_clients"] < 3.0:
        failures.append(
            f"adaptive vs naive at max clients: "
            f"{report['adaptive_vs_naive_at_max_clients']:.2f}x < 3.0x"
        )
    if report["adaptive_vs_fixed_at_1_client"] < 1.5:
        failures.append(
            f"adaptive vs fixed micro-batching at 1 client: "
            f"{report['adaptive_vs_fixed_at_1_client']:.2f}x < 1.5x"
        )
    if report["process_vs_threaded_pool_at_max_clients"] <= 1.0:
        failures.append(
            f"process shards vs threaded pool at max clients: "
            f"{report['process_vs_threaded_pool_at_max_clients']:.2f}x <= 1.0x"
        )
    if report["socket_vs_inprocess_at_max_clients"] < 0.5:
        failures.append(
            f"socket vs in-process at max clients: "
            f"{report['socket_vs_inprocess_at_max_clients']:.2f}x < 0.5x"
        )
    return failures


if __name__ == "__main__":
    report = main()
    print(json.dumps(stamp_report(report), indent=2))
    failures = [] if FAST else _gates(report)
    for failure in failures:
        print(f"BENCH GATE FAILED: {failure}", file=sys.stderr)
    sys.exit(1 if failures else 0)
