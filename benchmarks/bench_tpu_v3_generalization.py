"""Sec. 5.1/5.2 text results: generalization across hardware generations.

The paper trains and evaluates the same architectures on TPU v3
measurements and reports (random split):
    tile-size: learned mean error 3.8% (vs 3.7% on v2), mean tau 0.65;
    fusion:    learned MAPE 4.9 / tau 0.92 on kernels >= 5us.

Shape to reproduce: retraining the same model configuration on v3
measurements yields accuracy comparable to v2 — the approach is not tuned
to one hardware generation.
"""
import numpy as np

from harness import FAST, eval_tile_split, scale, split, trained_tile_model
from repro.data import build_tile_dataset
from repro.evaluation import evaluate_tile_task, format_table
from repro.models import ModelConfig, TrainConfig, predict_tile_scores, train_tile_model
from repro.tpu import TPU_V3, TpuSimulator


def _v3_data(programs, seed):
    return build_tile_dataset(
        programs,
        simulator=TpuSimulator(TPU_V3),
        max_kernels_per_program=scale(10, 6),
        max_tiles_per_kernel=scale(16, 8),
        seed=seed,
    )


def _run():
    s = split("random")
    train_programs = s.train[::4] if FAST else s.train
    v3_train = _v3_data(train_programs, seed=0)
    v3_test = _v3_data(s.test, seed=1)
    res = train_tile_model(
        v3_train.records,
        ModelConfig.paper_best_tile(),
        TrainConfig(
            steps=scale(1800, 400), learning_rate=8e-4,
            kernels_per_batch=6, tiles_per_kernel=6, log_every=500,
        ),
    )
    rows = []
    by_prog = v3_test.by_program()
    for display, program in s.test_names.items():
        recs = by_prog.get(program.name, [])
        if not recs:
            continue
        truths = [r.runtimes for r in recs]
        scores = [predict_tile_scores(res.model, res.scalers, r) for r in recs]
        m = evaluate_tile_task(truths, scores)
        rows.append([display, m.ape, m.kendall])
    # v2 reference from the (cached) Table 2 model.
    v2_rows = eval_tile_split("random", trained_tile_model("random", ModelConfig.paper_best_tile()))
    v2_mean = float(np.mean([r.learned_ape for r in v2_rows]))
    return rows, v2_mean


def test_tpu_v3_generalization(benchmark):
    rows, v2_mean = benchmark.pedantic(_run, rounds=1, iterations=1)
    v3_mean = float(np.mean([r[1] for r in rows]))
    v3_tau = float(np.mean([r[2] for r in rows]))
    print()
    print(
        format_table(
            ["Application", "APE (v3)", "tau (v3)"],
            rows + [["Mean", v3_mean, v3_tau]],
            title="TPU v3 generalization (reproduced), tile task",
        )
    )
    print(
        f"paper: v3 learned mean error 3.8 tau 0.65 (v2: 3.7 tau 0.80); "
        f"measured v2 mean here: {v2_mean:.1f}"
    )
    # Shape: v3 accuracy is in the same band as v2 (within a few points).
    assert abs(v3_mean - v2_mean) < 6.0
