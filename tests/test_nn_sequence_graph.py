"""Tests for LSTM, Transformer and GNN layers (masking and invariances)."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    LSTM,
    LSTMCell,
    BatchedGraphContext,
    GATLayer,
    GraphSAGELayer,
    MultiHeadAttention,
    Tensor,
    TransformerEncoder,
)

rng = np.random.default_rng(3)


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(8, 16)
        h, c = cell(
            Tensor(rng.normal(size=(4, 8))),
            Tensor(np.zeros((4, 16))),
            Tensor(np.zeros((4, 16))),
        )
        assert h.shape == (4, 16)
        assert c.shape == (4, 16)

    def test_final_state_ignores_padding(self):
        lstm = LSTM(4, 8)
        x = rng.normal(size=(2, 5, 4)).astype(np.float32)
        mask = np.array([[True] * 5, [True, True, False, False, False]])
        out_padded = lstm(Tensor(x), mask).numpy()
        # Same result if the padding region contains garbage.
        x2 = x.copy()
        x2[1, 2:] = 99.0
        out_garbage = lstm(Tensor(x2), mask).numpy()
        np.testing.assert_allclose(out_padded[1], out_garbage[1], rtol=1e-5)

    def test_short_sequence_equals_truncated_run(self):
        lstm = LSTM(4, 8)
        x = rng.normal(size=(1, 6, 4)).astype(np.float32)
        mask_full = np.ones((1, 6), dtype=bool)
        mask_short = np.zeros((1, 6), dtype=bool)
        mask_short[0, :3] = True
        out_short = lstm(Tensor(x), mask_short).numpy()
        out_trunc = lstm(Tensor(x[:, :3]), np.ones((1, 3), dtype=bool)).numpy()
        np.testing.assert_allclose(out_short, out_trunc, rtol=1e-5)

    def test_gradients_flow(self):
        lstm = LSTM(4, 8)
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        lstm(x, np.ones((2, 3), dtype=bool)).sum().backward()
        assert x.grad is not None
        assert any(p.grad is not None for p in lstm.parameters())


class TestAttention:
    def test_mha_shapes(self):
        mha = MultiHeadAttention(16, heads=4)
        x = Tensor(rng.normal(size=(2, 5, 16)))
        out = mha(x, np.ones((2, 5), dtype=bool))
        assert out.shape == (2, 5, 16)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, heads=4)

    def test_padding_does_not_affect_valid_positions(self):
        enc = TransformerEncoder(8, layers=1, heads=2)
        x = rng.normal(size=(1, 6, 8)).astype(np.float32)
        mask = np.zeros((1, 6), dtype=bool)
        mask[0, :4] = True
        out1 = enc(Tensor(x), mask).numpy()
        x2 = x.copy()
        x2[0, 4:] = -50.0
        out2 = enc(Tensor(x2), mask).numpy()
        np.testing.assert_allclose(out1, out2, rtol=1e-4, atol=1e-5)

    def test_masked_sum_pooling(self):
        """Pooling is the masked sum followed by the final LayerNorm."""
        enc = TransformerEncoder(8, layers=0)
        x = rng.normal(size=(1, 3, 8)).astype(np.float32)
        mask = np.array([[True, True, False]])
        out = enc(Tensor(x), mask).numpy()
        summed = x[0, :2].sum(axis=0)
        expected = (summed - summed.mean()) / np.sqrt(summed.var() + 1e-5)
        np.testing.assert_allclose(out[0], expected, rtol=1e-4, atol=1e-5)

    def test_pooling_ignores_masked_positions(self):
        enc = TransformerEncoder(8, layers=0)
        x = rng.normal(size=(1, 3, 8)).astype(np.float32)
        mask = np.array([[True, True, False]])
        out1 = enc(Tensor(x), mask).numpy()
        x2 = x.copy()
        x2[0, 2] = 123.0
        out2 = enc(Tensor(x2), mask).numpy()
        np.testing.assert_allclose(out1, out2, rtol=1e-6)


def random_contexts(sizes, seed=0):
    r = np.random.default_rng(seed)
    adjs = []
    for n in sizes:
        a = np.triu((r.random((n, n)) < 0.4).astype(np.float32), 1)
        adjs.append(sp.csr_matrix(a))
    return adjs


class TestBatchedGraphContext:
    def test_block_structure(self):
        adjs = random_contexts([3, 4, 2])
        ctx = BatchedGraphContext(adjs)
        assert ctx.num_nodes == 9
        assert ctx.num_graphs == 3
        np.testing.assert_array_equal(ctx.graph_ids, [0, 0, 0, 1, 1, 1, 1, 2, 2])

    def test_edges_within_blocks(self):
        adjs = random_contexts([3, 4])
        ctx = BatchedGraphContext(adjs)
        blocks = np.array([0, 0, 0, 1, 1, 1, 1])
        for src, dst in ctx.edges:
            assert blocks[src] == blocks[dst]

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchedGraphContext([])


class TestGraphSAGE:
    def test_output_shape(self):
        ctx = BatchedGraphContext(random_contexts([5, 6]))
        layer = GraphSAGELayer(8, 12)
        out = layer(Tensor(rng.normal(size=(11, 8))), ctx.adj_in, ctx.adj_out)
        assert out.shape == (11, 12)

    def test_l2_normalized_rows(self):
        ctx = BatchedGraphContext(random_contexts([6]))
        layer = GraphSAGELayer(8, 8)
        out = layer(Tensor(rng.normal(size=(6, 8))), ctx.adj_in, ctx.adj_out).numpy()
        norms = np.linalg.norm(out, axis=-1)
        # relu can zero a row entirely; others must be unit.
        assert np.all((np.abs(norms - 1.0) < 1e-4) | (norms < 1e-6))

    def test_batching_invariance(self):
        """Processing two graphs in one batch == processing them separately."""
        adjs = random_contexts([4, 5], seed=9)
        x1 = rng.normal(size=(4, 8)).astype(np.float32)
        x2 = rng.normal(size=(5, 8)).astype(np.float32)
        layer = GraphSAGELayer(8, 8)
        ctx_joint = BatchedGraphContext(adjs)
        joint = layer(Tensor(np.concatenate([x1, x2])), ctx_joint.adj_in, ctx_joint.adj_out).numpy()
        c1 = BatchedGraphContext([adjs[0]])
        c2 = BatchedGraphContext([adjs[1]])
        s1 = layer(Tensor(x1), c1.adj_in, c1.adj_out).numpy()
        s2 = layer(Tensor(x2), c2.adj_in, c2.adj_out).numpy()
        np.testing.assert_allclose(joint, np.concatenate([s1, s2]), rtol=1e-4, atol=1e-5)

    def test_undirected_variant_parameter_count(self):
        directed = GraphSAGELayer(8, 8, directed=True)
        undirected = GraphSAGELayer(8, 8, directed=False)
        assert len(directed.parameters()) > len(undirected.parameters())

    def test_isolated_nodes_keep_self_information(self):
        a = sp.csr_matrix(np.zeros((3, 3), dtype=np.float32))
        ctx = BatchedGraphContext([a])
        layer = GraphSAGELayer(4, 4)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        out = layer(Tensor(x), ctx.adj_in, ctx.adj_out).numpy()
        assert np.isfinite(out).all()


class TestGAT:
    def test_output_shape(self):
        ctx = BatchedGraphContext(random_contexts([5, 4]))
        layer = GATLayer(8, 8, heads=2)
        out = layer(Tensor(rng.normal(size=(9, 8))), ctx.edges, ctx.num_nodes)
        assert out.shape == (9, 8)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            GATLayer(8, 9, heads=2)

    def test_no_edges_fallback(self):
        layer = GATLayer(4, 4, heads=2)
        out = layer(Tensor(rng.normal(size=(3, 4))), np.zeros((0, 2), dtype=np.int64), 3)
        assert out.shape == (3, 4)

    def test_gradients_flow(self):
        ctx = BatchedGraphContext(random_contexts([6]))
        layer = GATLayer(8, 8, heads=2)
        x = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        layer(x, ctx.edges, ctx.num_nodes).sum().backward()
        assert x.grad is not None
