"""Additional dataset-structure tests: record containers and provenance."""
import numpy as np
import pytest

from repro.data import (
    FusionDataset,
    FusionRecord,
    TileRecord,
    TileSizeDataset,
    build_fusion_dataset,
    build_tile_dataset,
    extract_kernel_features,
    tile_features,
)
from repro.compiler import TileConfig, fuse_program
from repro.tpu import TPU_V3, TpuSimulator
from repro.workloads import vision


@pytest.fixture(scope="module")
def kernel():
    p = vision.image_embed(0)
    return fuse_program(p.graph, program_name=p.name)[1]


class TestRecordContainers:
    def test_tile_dataset_aggregates(self, kernel):
        feats = extract_kernel_features(kernel)
        tiles = [TileConfig((2, 2)), TileConfig((4, 4))]
        rec = TileRecord(
            kernel=kernel,
            features=feats,
            tiles=tiles,
            tile_feats=np.stack([tile_features(t) for t in tiles]),
            runtimes=np.array([1e-5, 2e-5]),
            program="p",
            family="f",
        )
        ds = TileSizeDataset(records=[rec, rec])
        assert ds.num_kernels == 2
        assert ds.num_samples == 4
        assert set(ds.by_program()) == {"p"}

    def test_fusion_dataset_aggregates(self, kernel):
        feats = extract_kernel_features(kernel)
        rec = FusionRecord(kernel=kernel, features=feats, runtime=1e-5, program="p", family="f")
        ds = FusionDataset(records=[rec])
        assert ds.num_samples == 1
        assert ds.by_program()["p"] == [rec]


class TestSimulatorTargetPlumbing:
    def test_tile_dataset_respects_simulator_target(self):
        """Datasets built against the v3 simulator have (mostly) faster
        targets than v2 for the same kernels."""
        p = vision.image_embed(0)
        kwargs = dict(max_kernels_per_program=4, max_tiles_per_kernel=4, seed=0,
                      measure_noise=0.0)
        v2 = build_tile_dataset([p], simulator=TpuSimulator(), **kwargs)
        v3 = build_tile_dataset([p], simulator=TpuSimulator(TPU_V3), **kwargs)
        v2_all = np.concatenate([r.runtimes for r in v2.records])
        v3_all = np.concatenate([r.runtimes for r in v3.records])
        assert v3_all.mean() < v2_all.mean()

    def test_zero_noise_matches_simulator_exactly(self):
        p = vision.image_embed(0)
        sim = TpuSimulator()
        ds = build_tile_dataset(
            [p], simulator=sim, max_kernels_per_program=3,
            max_tiles_per_kernel=4, seed=1, measure_noise=0.0,
        )
        for rec in ds.records:
            expected = [sim.run(rec.kernel, t) for t in rec.tiles]
            np.testing.assert_allclose(rec.runtimes, expected, rtol=1e-12)

    def test_fusion_noise_perturbs_measurements_boundedly(self):
        p = vision.image_embed(0)
        clean = build_fusion_dataset([p], configs_per_program=0, seed=1, measure_noise=0.0)
        noisy = build_fusion_dataset([p], configs_per_program=0, seed=1, measure_noise=0.05)
        by_fp = {r.kernel.fingerprint(): r.runtime for r in clean.records}
        pairs = [
            (by_fp[r.kernel.fingerprint()], r.runtime)
            for r in noisy.records
            if r.kernel.fingerprint() in by_fp
        ]
        assert pairs
        clean_vals = np.array([a for a, _ in pairs])
        noisy_vals = np.array([b for _, b in pairs])
        assert not np.allclose(clean_vals, noisy_vals)
        np.testing.assert_allclose(clean_vals, noisy_vals, rtol=0.3)
