"""Tests for feature extraction and scaling."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import Kernel, TileConfig, fuse_program
from repro.data import (
    MAX_DIMS,
    NODE_FEATURE_DIM,
    STATIC_FEATURE_DIM,
    TILE_FEATURE_DIM,
    FeatureScaler,
    encode_varlen,
    extract_kernel_features,
    node_features,
    static_features,
    tile_features,
)
from repro.compiler import analyze
from repro.hlo import GraphBuilder
from repro.workloads import vision


class TestEncodeVarlen:
    def test_pad(self):
        out = encode_varlen((2, 3), length=4)
        assert out == [2.0, 3.0, 0.0, 0.0, 5.0, 6.0]

    def test_truncate_keeps_full_sum_product(self):
        out = encode_varlen((2, 3, 4), length=2)
        assert out[:2] == [2.0, 3.0]
        assert out[2] == 9.0  # sum over ALL values
        assert out[3] == 24.0  # product over ALL values

    def test_empty(self):
        out = encode_varlen((), length=3)
        assert out == [0.0, 0.0, 0.0, 0.0, 0.0]

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=8))
    def test_length_invariant(self, values):
        out = encode_varlen(values, length=MAX_DIMS)
        assert len(out) == MAX_DIMS + 2


class TestNodeFeatures:
    def graph(self):
        b = GraphBuilder("g")
        x = b.parameter((2, 8, 8, 3))
        k = b.constant((3, 3, 3, 8))
        y = b.conv2d(x, k, strides=(2, 2))
        return b.build(), x, y

    def test_dimension_constant(self):
        g, x, y = self.graph()
        for inst in g:
            assert node_features(inst).shape == (NODE_FEATURE_DIM,)

    def test_parameter_flagged(self):
        g, x, y = self.graph()
        fx = node_features(g.get(x))
        fy = node_features(g.get(y))
        # The is_parameter flag differs between parameter and conv nodes.
        assert not np.array_equal(fx, fy)

    def test_root_flag_set(self):
        g, x, y = self.graph()
        f = node_features(g.get(y))
        assert 1.0 in f  # is_root among features

    def test_conv_attrs_encoded(self):
        g, x, y = self.graph()
        f = node_features(g.get(y))
        assert 3.0 in f  # window
        assert 2.0 in f  # stride

    def test_all_finite(self):
        p = vision.resnet_v1(0)
        for inst in p.graph:
            assert np.isfinite(node_features(inst)).all()


class TestTileAndStaticFeatures:
    def test_tile_feature_dim(self):
        assert tile_features(TileConfig((4, 8))).shape == (TILE_FEATURE_DIM,)

    def test_tile_product_encoded_log(self):
        f = tile_features(TileConfig((4, 8)))
        assert f[MAX_DIMS + 1] == pytest.approx(np.log1p(32.0))

    def test_static_features_dim_and_log(self):
        b = GraphBuilder("g")
        x = b.parameter((64, 64))
        b.tanh(x)
        a = analyze(b.build())
        f = static_features(a)
        assert f.shape == (STATIC_FEATURE_DIM,)
        assert np.isfinite(f).all()


class TestExtractKernelFeatures:
    def test_alignment(self):
        p = vision.image_embed(0)
        kernels = fuse_program(p.graph, program_name=p.name)
        k = kernels[0]
        feats = extract_kernel_features(k)
        n = k.num_nodes
        assert feats.opcodes.shape == (n,)
        assert feats.node_feats.shape == (n, NODE_FEATURE_DIM)
        assert feats.adjacency.shape == (n, n)
        assert feats.static_feats.shape == (STATIC_FEATURE_DIM,)
        assert feats.num_nodes == n

    def test_adjacency_matches_topological_order(self):
        p = vision.image_embed(0)
        k = fuse_program(p.graph)[1]
        feats = extract_kernel_features(k)
        assert np.allclose(feats.adjacency, np.triu(feats.adjacency, 1))


class TestFeatureScaler:
    def test_transform_to_unit_range(self):
        rows = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        sc = FeatureScaler().fit(rows)
        out = sc.transform(rows)
        np.testing.assert_allclose(out.min(axis=0), [0.0, 0.0])
        np.testing.assert_allclose(out.max(axis=0), [1.0, 1.0])

    def test_constant_column_maps_to_zero(self):
        rows = np.array([[7.0], [7.0]])
        sc = FeatureScaler().fit(rows)
        np.testing.assert_allclose(sc.transform(rows), [[0.0], [0.0]])

    def test_out_of_range_clipped(self):
        sc = FeatureScaler().fit(np.array([[0.0], [1.0]]))
        assert sc.transform(np.array([[5.0]]))[0, 0] == 1.0
        assert sc.transform(np.array([[-5.0]]))[0, 0] == 0.0

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            FeatureScaler().state()

    def test_state_roundtrip(self):
        rows = np.random.default_rng(0).normal(size=(10, 3)).astype(np.float32)
        sc = FeatureScaler().fit(rows)
        sc2 = FeatureScaler.from_state(sc.state())
        np.testing.assert_allclose(sc.transform(rows), sc2.transform(rows))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            FeatureScaler().fit(np.zeros(3))

    @given(
        st.lists(
            st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=3),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_output_always_in_unit_interval(self, rows):
        arr = np.asarray(rows, dtype=np.float32)
        sc = FeatureScaler().fit(arr)
        out = sc.transform(arr)
        assert (out >= 0.0).all() and (out <= 1.0).all()
