"""Gradient-correctness and semantics tests for the autodiff engine."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad, ones, zeros


def numeric_grad(f, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central finite differences of scalar-valued f with respect to x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        fp = f()
        x[idx] = old - eps
        fm = f()
        x[idx] = old
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_grad(build, x_data, atol=2e-2):
    """Compare autodiff gradient of sum(build(x)) against finite differences."""
    x = Tensor(x_data.copy(), requires_grad=True)
    out = build(x)
    loss = out.sum() if out.size > 1 else out
    loss.backward()

    def f():
        with no_grad():
            o = build(Tensor(x.data))
        return float(o.numpy().sum())

    num = numeric_grad(f, x.data)
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, num, atol=atol, rtol=2e-2)


rng = np.random.default_rng(42)


class TestElementwiseGrads:
    def test_add_mul(self):
        check_grad(lambda x: x * 3.0 + x * x, rng.normal(size=(3, 4)))

    def test_sub_div(self):
        check_grad(lambda x: (x - 1.5) / (x * x + 2.0), rng.normal(size=(4,)))

    def test_exp_log(self):
        check_grad(lambda x: (x.exp() + 1.0).log(), rng.normal(size=(3, 3)))

    def test_tanh_sigmoid(self):
        check_grad(lambda x: x.tanh() * x.sigmoid(), rng.normal(size=(5,)))

    def test_relu(self):
        check_grad(lambda x: x.relu() * 2.0, rng.normal(size=(6,)) + 0.3)

    def test_sqrt_abs(self):
        check_grad(lambda x: (x.abs() + 1.0).sqrt(), rng.normal(size=(4,)))

    def test_pow(self):
        check_grad(lambda x: (x * x + 1.0) ** 1.5, rng.normal(size=(4,)))

    def test_maximum(self):
        y = Tensor(rng.normal(size=(5,)))
        check_grad(lambda x: x.maximum(y), rng.normal(size=(5,)))

    def test_clip(self):
        w = Tensor(rng.normal(size=(8,)))
        check_grad(lambda x: x.clip(-0.5, 0.5) * w, rng.normal(size=(8,)))


class TestMatmulGrads:
    def test_2d(self):
        w = Tensor(rng.normal(size=(4, 3)))
        check_grad(lambda x: x @ w, rng.normal(size=(2, 4)))

    def test_2d_right(self):
        a = Tensor(rng.normal(size=(2, 4)))
        check_grad(lambda x: a @ x, rng.normal(size=(4, 3)))

    def test_batched(self):
        w = Tensor(rng.normal(size=(2, 4, 3)))
        check_grad(lambda x: x @ w, rng.normal(size=(2, 5, 4)))


class TestBroadcastGrads:
    def test_row_vector_broadcast(self):
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))
        loss = (x + b).sum()
        loss.backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0), atol=1e-5)

    def test_scalar_broadcast(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, x.numpy().sum(), rtol=1e-5)

    def test_keepdims_broadcast(self):
        check_grad(lambda x: x - x.mean(axis=1, keepdims=True), rng.normal(size=(3, 5)))


class TestReductionGrads:
    def test_sum_axis(self):
        check_grad(lambda x: x.sum(axis=0) * 2.0, rng.normal(size=(3, 4)))

    def test_mean(self):
        check_grad(lambda x: x.mean(), rng.normal(size=(4, 4)))

    def test_max(self):
        # Use distinct values so the max is differentiable.
        x = np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0
        check_grad(lambda t: t.max(axis=1), x)

    def test_max_keepdims(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4) / 5.0
        check_grad(lambda t: t - t.max(axis=1, keepdims=True), x)


class TestShapeGrads:
    def test_reshape_transpose(self):
        check_grad(lambda x: x.reshape(6, 2).transpose(1, 0), rng.normal(size=(3, 4)))

    def test_getitem(self):
        check_grad(lambda x: x[1:, :2] * 3.0, rng.normal(size=(3, 4)))

    def test_concat(self):
        y = Tensor(rng.normal(size=(2, 3)))
        check_grad(lambda x: Tensor.concat([x, y], axis=0), rng.normal(size=(2, 3)))

    def test_stack(self):
        y = Tensor(rng.normal(size=(3,)))
        check_grad(lambda x: Tensor.stack([x, y], axis=0), rng.normal(size=(3,)))

    def test_take_rows(self):
        idx = np.array([0, 2, 2, 1])
        check_grad(lambda x: x.take_rows(idx), rng.normal(size=(3, 4)))


class TestSoftmaxGrads:
    def test_softmax(self):
        check_grad(lambda x: x.softmax(axis=-1) ** 2.0, rng.normal(size=(3, 5)))

    def test_log_softmax(self):
        check_grad(lambda x: x.log_softmax(axis=-1) * 0.5, rng.normal(size=(2, 6)))

    def test_masked_softmax_zeros_invalid(self):
        mask = np.array([[True, True, False]])
        out = Tensor(rng.normal(size=(1, 3))).softmax(axis=-1, mask=mask)
        assert out.numpy()[0, 2] == 0.0
        assert out.numpy()[0, :2].sum() == pytest.approx(1.0, abs=1e-5)


class TestEngine:
    def test_grad_accumulates_over_paths(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0], rtol=1e-6)

    def test_diamond_graph_single_backward(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        a = x * 2.0
        b = a + a  # two paths through `a`
        b.sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0], rtol=1e-6)

    def test_no_grad_blocks_tape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_is_thread_local(self):
        # A serving thread under no_grad() must not disable the tape for a
        # concurrently training thread (the train-while-serving workflow).
        import threading

        inside = threading.Event()
        release = threading.Event()

        def infer():
            with no_grad():
                inside.set()
                release.wait(timeout=5)

        worker = threading.Thread(target=infer)
        worker.start()
        try:
            assert inside.wait(timeout=5)
            x = Tensor(np.ones(3), requires_grad=True)
            y = x * 2.0  # built while the other thread sits in no_grad()
            assert y.requires_grad
            y.sum().backward()
            np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0], rtol=1e-6)
        finally:
            release.set()
            worker.join()

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach() * 5.0
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_integer_tensors_stay_integer(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.data.dtype, np.integer)

    def test_item_and_helpers(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)
        assert zeros((2, 2)).numpy().sum() == 0.0
        assert ones((2, 2)).numpy().sum() == 4.0

    def test_T_property(self):
        x = Tensor(rng.normal(size=(2, 3)))
        assert x.T.shape == (3, 2)

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
            elements=st.floats(-2, 2, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_grad_is_ones(self, arr):
        x = Tensor(arr, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(x.data), rtol=1e-6)
