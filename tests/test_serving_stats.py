"""Edge-case coverage for :class:`repro.evaluation.ServingStats`.

Three corners a long-lived serving tier actually hits: percentile queries
over empty windows (a metrics scrape right after start), the per-shard
breakdown surviving a worker respawn (the shard id persists, the process
behind it does not), and snapshot consistency under concurrent readers
while writers are hot.
"""
import os
import signal
import threading
import time

import pytest

from repro.compiler import enumerate_tile_sizes
from repro.data import Scalers, build_tile_dataset
from repro.evaluation import ServingStats, latency_percentiles
from repro.models import LearnedPerformanceModel, ModelConfig
from repro.models.trainer import TrainResult
from repro.serving import (
    CostModelService,
    ServiceConfig,
    ServiceEvaluator,
)
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=5, max_tiles_per_kernel=6, seed=0
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


@pytest.fixture(scope="module")
def result_a(corpus):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=0)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


class TestEmptyWindows:
    def test_latency_percentiles_of_nothing(self):
        summary = latency_percentiles([])
        assert summary.count == 0
        assert (summary.mean, summary.p50, summary.p90, summary.p99, summary.max) == (
            0.0, 0.0, 0.0, 0.0, 0.0,
        )

    def test_fresh_stats_snapshot_is_all_zero(self):
        snap = ServingStats().snapshot()
        assert snap["requests"] == 0.0
        assert snap["cache_hit_rate"] == 0.0
        assert snap["batch_occupancy"] == 0.0
        assert snap["requests_per_forward"] == 0.0
        assert snap["shadow_forwards"] == 0.0
        assert snap["latency_p99_s"] == 0.0

    def test_fresh_breakdowns_are_empty(self):
        stats = ServingStats()
        assert stats.shard_snapshot() == {}
        assert stats.version_snapshot() == {}

    def test_single_sample_percentiles_are_that_sample(self):
        stats = ServingStats()
        stats.record_response(0.25, cache_hit=False, shard=0)
        snap = stats.snapshot()
        assert snap["latency_p50_s"] == 0.25
        assert snap["latency_p99_s"] == 0.25
        shard = stats.shard_snapshot()["0"]
        assert shard["latency_p50_s"] == 0.25
        assert shard["latency_max_s"] == 0.25

    def test_shard_with_forwards_but_no_responses(self):
        # A shard whose only activity was a fused ride-along forward must
        # still render a complete, division-safe entry.
        stats = ServingStats()
        stats.record_shard(3, forwards=2)
        entry = stats.shard_snapshot()["3"]
        assert entry["forwards"] == 2.0
        assert entry["requests"] == 0.0
        assert entry["requests_per_forward"] == 0.0
        assert set(ServingStats.empty_shard_entry()) <= set(entry)

    def test_version_entry_shape_matches_empty_template(self):
        stats = ServingStats()
        stats.record_route("v1", canary=True)
        stats.record_route("v1", shadow=True)
        stats.record_route("v1", shadow=True, error=True)
        entry = stats.version_snapshot()["v1"]
        assert set(entry) == set(ServingStats.empty_version_entry())
        assert entry["served"] == 1.0
        assert entry["canary"] == 1.0
        assert entry["shadow"] == 1.0
        assert entry["shadow_errors"] == 1.0
        stats.record_route(None)  # no version resolved: must be a no-op
        assert set(stats.version_snapshot()) == {"v1"}


class TestPercentileProperties:
    """Property-style sweeps over :func:`latency_percentiles`.

    Nearest-rank percentiles promise that every reported tail is a
    latency some request actually paid — these pin that contract at the
    corners where interpolating implementations invent points: single
    samples, all-equal windows, and p99 at small n.
    """

    def test_single_sample_reports_itself_everywhere(self):
        for value in (0.0, 1e-9, 0.25, 3.0):
            summary = latency_percentiles([value])
            assert summary.count == 1
            assert (
                summary.mean, summary.p50, summary.p90, summary.p99, summary.max
            ) == (value, value, value, value, value)

    def test_all_equal_window_collapses_to_that_value(self):
        for n in (2, 3, 7, 100):
            summary = latency_percentiles([0.125] * n)
            assert summary.count == n
            assert (
                summary.mean, summary.p50, summary.p90, summary.p99, summary.max
            ) == (0.125, 0.125, 0.125, 0.125, 0.125)

    def test_p99_at_small_n_is_the_max(self):
        # ceil(0.99 * n) == n for every n < 100: with fewer than 100
        # samples there is no observation strictly inside the top 1%,
        # so nearest-rank p99 must be the maximum, never beyond it.
        rng = __import__("random").Random(7)
        for n in range(1, 100):
            samples = [rng.uniform(0.0, 1.0) for _ in range(n)]
            summary = latency_percentiles(samples)
            assert summary.p99 == summary.max == max(samples)

    def test_percentiles_are_observed_samples_and_ordered(self):
        rng = __import__("random").Random(11)
        for trial in range(50):
            n = rng.randrange(1, 400)
            samples = [rng.expovariate(20.0) for _ in range(n)]
            summary = latency_percentiles(samples)
            observed = set(samples)
            assert {summary.p50, summary.p90, summary.p99, summary.max} <= observed
            assert summary.p50 <= summary.p90 <= summary.p99 <= summary.max
            assert min(samples) <= summary.mean <= summary.max

    def test_order_of_samples_is_irrelevant(self):
        samples = [0.5, 0.1, 0.9, 0.3, 0.7]
        forward = latency_percentiles(samples)
        backward = latency_percentiles(list(reversed(samples)))
        assert forward == backward

    def test_nearest_rank_exact_small_cases(self):
        # n=2: p50 takes rank ceil(0.5*2)=1 -> the smaller sample.
        two = latency_percentiles([0.1, 0.2])
        assert two.p50 == 0.1 and two.p90 == 0.2 and two.p99 == 0.2
        # n=10: p90 takes rank ceil(0.9*10)=9 -> ninth smallest.
        ten = latency_percentiles([x / 10.0 for x in range(1, 11)])
        assert ten.p50 == 0.5 and ten.p90 == 0.9 and ten.p99 == 1.0
        # n=100: rank ceil(0.99*100)=99 -> second largest appears at p99.
        hundred = latency_percentiles([float(x) for x in range(1, 101)])
        assert hundred.p99 == 99.0 and hundred.max == 100.0


class TestSloWindow:
    def test_empty_window_reports_zero_violations(self):
        window = ServingStats().slo_window(0.25)
        assert window["violation_fraction"] == 0.0
        assert window["latency_ewma_s"] == 0.0
        assert window["window"] == 0

    def test_violation_fraction_counts_over_target(self):
        stats = ServingStats()
        for latency in (0.1, 0.1, 0.4, 0.6):
            stats.record_response(latency, cache_hit=False)
        window = stats.slo_window(0.25)
        assert window["window"] == 4
        assert window["violation_fraction"] == pytest.approx(0.5)
        assert 0.0 < window["latency_ewma_s"] < 0.6


class TestRespawnBreakdown:
    def test_per_shard_breakdown_survives_worker_respawn(self, corpus, result_a):
        """SIGKILL a shard worker mid-life: the service's per-shard entry
        keeps its accumulated counters, picks up the executor's restart
        count, and stays complete (every stats key present)."""
        records, _ = corpus
        service = CostModelService(
            result_a,
            ServiceConfig(executor="process", replicas=2, result_cache_entries=0),
        )
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            for record in records:
                client.score_tiles_batched(
                    record.kernel, enumerate_tile_sizes(record.kernel)[:4]
                )
            before = service.metrics()["per_shard"]
            victim = next(
                s for s in service.executor._shards if s.process is not None
            )
            os.kill(victim.process.pid, signal.SIGKILL)
            time.sleep(0.1)
            for record in records:
                client.score_tiles_batched(
                    record.kernel, enumerate_tile_sizes(record.kernel)[:4]
                )
            after = service.metrics()["per_shard"]
            assert set(after) == set(before)
            required = set(ServingStats.empty_shard_entry()) | {
                "restarts", "alive", "placement",
            }
            for entry in after.values():
                assert required <= set(entry)
                if entry["requests"] > 0:  # untouched shards stay unspawned
                    assert entry["alive"]
            victim_entry = after[str(victim.index)]
            assert victim_entry["restarts"] >= 1
            # Counters accumulate across the respawn, never reset.
            assert victim_entry["requests"] >= before[str(victim.index)]["requests"]
        finally:
            service.stop()


class TestRebalanceRelabeling:
    """Per-shard counters across a placement change: retired shards'
    history merges into heirs (relabel), reassigned shards reset, and
    service-lifetime totals behave predictably through both."""

    def _loaded_stats(self):
        stats = ServingStats()
        for shard, n in ((0, 10), (1, 20), (2, 30)):
            for i in range(n):
                stats.record_response(
                    0.001 * (shard + 1), cache_hit=False,
                    error=i == 0, shard=shard,
                )
            stats.record_shard(shard, forwards=n // 2)
        return stats

    def test_relabel_merges_counters_and_latencies(self):
        stats = self._loaded_stats()
        stats.relabel_shards({2: 0})
        snapshot = stats.shard_snapshot()
        assert set(snapshot) == {"0", "1"}
        assert snapshot["0"]["requests"] == 40.0  # 10 own + 30 inherited
        assert snapshot["0"]["errors"] == 2.0
        assert snapshot["0"]["forwards"] == 20.0
        # The heir's latency window includes the retired shard's samples.
        assert snapshot["0"]["latency_max_s"] == pytest.approx(0.003)
        # Service-lifetime totals are conserved.
        assert sum(e["requests"] for e in snapshot.values()) == 60.0

    def test_relabel_into_fresh_shard_creates_it(self):
        stats = self._loaded_stats()
        stats.relabel_shards({1: 5})
        snapshot = stats.shard_snapshot()
        assert snapshot["5"]["requests"] == 20.0
        assert "1" not in snapshot

    def test_relabel_of_unknown_source_is_a_noop(self):
        stats = self._loaded_stats()
        stats.relabel_shards({7: 0})
        assert stats.shard_snapshot()["0"]["requests"] == 10.0

    def test_reset_clears_only_the_listed_shards(self):
        stats = self._loaded_stats()
        stats.reset_shards([0, 2])
        snapshot = stats.shard_snapshot()
        assert set(snapshot) == {"1"}
        assert snapshot["1"]["requests"] == 20.0
        # A reset shard accumulates cleanly from zero afterwards.
        stats.record_response(0.002, cache_hit=False, shard=0)
        assert stats.shard_snapshot()["0"]["requests"] == 1.0

    def test_placement_change_counters(self):
        stats = ServingStats()
        stats.record_placement_change(moves=3)
        stats.record_placement_change(moves=2)
        snap = stats.snapshot()
        assert snap["placement_changes"] == 2.0
        assert snap["placement_moves"] == 5.0

    def test_concurrent_readers_never_see_torn_relabels(self):
        """Relabels move counters between shards while writers append and
        readers snapshot: every snapshot must be internally consistent —
        the running total across shards never decreases (a torn merge
        would lose or double requests) and no reader ever raises."""
        stats = ServingStats()
        writers, per_writer = 4, 400
        stop = threading.Event()
        errors: list[BaseException] = []
        max_total = writers * per_writer

        def read() -> None:
            try:
                last_total = 0.0
                while not stop.is_set():
                    snapshot = stats.shard_snapshot()
                    total = sum(e["requests"] for e in snapshot.values())
                    assert last_total <= total <= max_total, (
                        f"torn snapshot: {last_total} -> {total}"
                    )
                    last_total = total
            except BaseException as exc:
                errors.append(exc)

        def write(worker: int) -> None:
            for i in range(per_writer):
                stats.record_response(0.001, cache_hit=False, shard=worker % 3)

        def relabel() -> None:
            # Churn counters between shard labels; merges conserve
            # totals, so readers must never observe a dip.
            while not stop.is_set():
                stats.relabel_shards({2: 0})
                stats.relabel_shards({1: 2})
                time.sleep(0)

        readers = [threading.Thread(target=read) for _ in range(2)]
        relabeler = threading.Thread(target=relabel)
        writer_threads = [
            threading.Thread(target=write, args=(w,)) for w in range(writers)
        ]
        for t in readers + [relabeler] + writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        stop.set()
        for t in readers + [relabeler]:
            t.join()
        assert not errors
        total = sum(
            e["requests"] for e in stats.shard_snapshot().values()
        )
        assert total == float(max_total)


class TestConcurrentReaders:
    def test_snapshots_stay_consistent_under_writer_load(self):
        """Readers hammer every snapshot surface while writers record;
        nothing may raise, and the final counts must be exact."""
        stats = ServingStats()
        writers, per_writer = 4, 500
        stop_reading = threading.Event()
        reader_errors: list[BaseException] = []

        def read() -> None:
            try:
                while not stop_reading.is_set():
                    snap = stats.snapshot()
                    assert snap["requests"] >= snap["errors"]
                    for entry in stats.shard_snapshot().values():
                        assert entry["requests"] >= 0.0
                    for entry in stats.version_snapshot().values():
                        assert entry["served"] >= entry["canary"]
            except BaseException as exc:  # surfaced after join
                reader_errors.append(exc)

        def write(worker: int) -> None:
            for i in range(per_writer):
                stats.record_response(
                    0.001 * (i % 7), cache_hit=i % 5 == 0, shard=worker % 2
                )
                stats.record_route(f"v{worker % 2}", canary=i % 3 == 0)
                if i % 10 == 0:
                    stats.record_batch(4, forwards=1)
                    stats.record_shard(worker % 2, forwards=1)

        readers = [threading.Thread(target=read) for _ in range(3)]
        for t in readers:
            t.start()
        writer_threads = [
            threading.Thread(target=write, args=(w,)) for w in range(writers)
        ]
        for t in writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        stop_reading.set()
        for t in readers:
            t.join()
        assert not reader_errors
        snap = stats.snapshot()
        assert snap["requests"] == float(writers * per_writer)
        versions = stats.version_snapshot()
        assert sum(v["served"] for v in versions.values()) == writers * per_writer
        shards = stats.shard_snapshot()
        assert sum(s["requests"] for s in shards.values()) == writers * per_writer

    def test_metrics_under_concurrent_readers_on_live_service(
        self, corpus, result_a
    ):
        """service.metrics() — the merged view — is safe to scrape while
        traffic flows."""
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=0)
        ).start()
        errors: list[BaseException] = []
        stop = threading.Event()

        def scrape() -> None:
            try:
                while not stop.is_set():
                    metrics = service.metrics()
                    assert "per_shard" in metrics and "per_version" in metrics
            except BaseException as exc:
                errors.append(exc)

        try:
            scraper = threading.Thread(target=scrape)
            scraper.start()
            client = ServiceEvaluator(service)
            for _ in range(3):
                for record in records:
                    client.score_tiles_batched(
                        record.kernel, enumerate_tile_sizes(record.kernel)[:4]
                    )
            stop.set()
            scraper.join()
            assert not errors
            assert service.metrics()["requests"] >= 3 * len(records)
        finally:
            stop.set()
            service.stop()
