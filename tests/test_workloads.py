"""Tests for the workload corpus and splits."""
import pytest

from repro.hlo import Opcode
from repro.workloads import (
    FAMILY_SPEC,
    MANUAL_HELDOUT_FAMILIES,
    MANUAL_TEST_PROGRAMS,
    RANDOM_TEST_PROGRAMS,
    build_corpus,
    manual_split,
    random_split,
    sequence,
    tabular,
    vision,
)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


class TestCorpus:
    def test_exactly_104_programs(self, corpus):
        assert len(corpus) == 104

    def test_unique_names(self, corpus):
        names = [p.name for p in corpus]
        assert len(names) == len(set(names))

    def test_family_imbalance_preserved(self, corpus):
        """Many ResNet/Inception variants, single AlexNet and DLRM."""
        counts = {}
        for p in corpus:
            counts[p.family] = counts.get(p.family, 0) + 1
        assert counts["alexnet"] == 1
        assert counts["dlrm"] == 1
        assert counts["resnet_v1"] >= 10
        assert counts["inception"] >= 10
        assert counts["inception"] > counts["autocompletion"]

    def test_all_graphs_validate(self, corpus):
        for p in corpus:
            p.graph.validate()

    def test_graphs_have_parameters_and_roots(self, corpus):
        for p in corpus:
            assert p.graph.parameters(), p.name
            assert any(i.is_root for i in p.graph), p.name

    def test_deterministic_rebuild(self):
        a = build_corpus()
        b = build_corpus()
        assert [p.name for p in a] == [p.name for p in b]
        assert all(len(x.graph) == len(y.graph) for x, y in zip(a, b))

    def test_variants_differ_within_family(self):
        a, b = vision.resnet_v1(0), vision.resnet_v1(1)
        assert len(a.graph) != len(b.graph) or a.name != b.name

    def test_family_spec_counts_total(self):
        assert sum(c for _, c in FAMILY_SPEC) == 104


class TestGenerators:
    @pytest.mark.parametrize(
        "gen",
        [
            vision.resnet_v1, vision.resnet_v2, vision.inception, vision.alexnet,
            vision.ssd, vision.convdraw, vision.image_embed, vision.resnet_parallel,
            sequence.rnn, sequence.wavernn, sequence.nmt, sequence.translate,
            sequence.transformer, sequence.smartcompose, sequence.autocompletion,
            sequence.char2feats, sequence.feats2wave, tabular.dlrm, tabular.ranking,
        ],
    )
    def test_every_generator_builds_valid_program(self, gen):
        p = gen(0)
        p.graph.validate()
        assert len(p.graph) > 5
        ops = {i.opcode for i in p.graph}
        assert Opcode.PARAMETER in ops


class TestSplits:
    def test_random_split_partitions(self, corpus):
        s = random_split(corpus)
        names = [p.name for p in s.train + s.validation + s.test]
        assert len(names) == len(set(names)) == 104
        assert len(s.test) == 8
        assert len(s.validation) == 8
        assert len(s.train) == 88

    def test_random_split_test_rows_match_table2(self, corpus):
        s = random_split(corpus)
        assert set(s.test_names) == set(RANDOM_TEST_PROGRAMS)
        for display, prog in s.test_names.items():
            assert prog.family == RANDOM_TEST_PROGRAMS[display][0]

    def test_manual_split_holds_out_families(self, corpus):
        s = manual_split(corpus)
        train_families = {p.family for p in s.train}
        for fam in MANUAL_HELDOUT_FAMILIES:
            assert fam not in train_families
        assert "wavernn" not in train_families

    def test_manual_split_test_rows_match_table8(self, corpus):
        s = manual_split(corpus)
        assert set(s.test_names) == set(MANUAL_TEST_PROGRAMS)
        assert len(s.test) == 6

    def test_manual_split_no_overlap(self, corpus):
        s = manual_split(corpus)
        names = [p.name for p in s.train + s.validation + s.test]
        assert len(names) == len(set(names))

    def test_wavernn_variants_distinct_in_manual_test(self, corpus):
        s = manual_split(corpus)
        assert s.test_names["WaveRNN 1"].name != s.test_names["WaveRNN 2"].name
