"""Unit and property tests for shapes, layouts and dtypes."""
import pytest
from hypothesis import given, strategies as st

from repro.hlo import DType, Layout, Shape, scalar


class TestDType:
    def test_byte_sizes(self):
        assert DType.F32.byte_size == 4
        assert DType.BF16.byte_size == 2
        assert DType.S32.byte_size == 4
        assert DType.PRED.byte_size == 1


class TestLayout:
    def test_default_is_row_major(self):
        assert Layout.default(3).minor_to_major == (2, 1, 0)
        assert Layout.default(0).minor_to_major == ()

    def test_default_is_default(self):
        for rank in range(5):
            assert Layout.default(rank).is_default()

    def test_non_default_detected(self):
        assert not Layout((0, 1)).is_default()

    def test_validate_rejects_bad_permutation(self):
        with pytest.raises(ValueError):
            Layout((0, 0)).validate(2)
        with pytest.raises(ValueError):
            Layout((1, 2)).validate(2)

    @given(st.permutations(range(4)))
    def test_any_permutation_valid(self, perm):
        Layout(tuple(perm)).validate(4)


class TestShape:
    def test_scalar(self):
        s = scalar()
        assert s.rank == 0
        assert s.num_elements == 1
        assert s.byte_size == 4

    def test_num_elements_and_bytes(self):
        s = Shape((2, 3, 4))
        assert s.num_elements == 24
        assert s.byte_size == 96
        assert Shape((2, 3, 4), DType.BF16).byte_size == 48

    def test_zero_dim_allowed(self):
        assert Shape((0, 5)).num_elements == 0

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            Shape((-1, 2))

    def test_default_layout_assigned(self):
        assert Shape((4, 5)).layout == Layout((1, 0))

    def test_layout_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Shape((4, 5), layout=Layout((2, 1, 0)))

    def test_minor_dim_follows_layout(self):
        s = Shape((4, 5))
        assert s.minor_dim() == 5  # row-major: last dim is minor
        t = s.with_layout(Layout((0, 1)))
        assert t.minor_dim() == 4
        assert scalar().minor_dim() is None

    def test_with_dtype_preserves_dims(self):
        s = Shape((4, 5)).with_dtype(DType.S32)
        assert s.dims == (4, 5)
        assert s.dtype is DType.S32

    def test_shapes_hashable_and_equal(self):
        assert Shape((2, 2)) == Shape((2, 2))
        assert hash(Shape((2, 2))) == hash(Shape((2, 2)))
        assert Shape((2, 2)) != Shape((2, 2), DType.BF16)

    @given(st.lists(st.integers(min_value=0, max_value=64), max_size=5))
    def test_num_elements_is_product(self, dims):
        s = Shape(tuple(dims))
        expected = 1
        for d in dims:
            expected *= d
        assert s.num_elements == expected
        assert s.byte_size == expected * 4
