"""Tests for modules, layers, optimizers and losses."""
import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Dense,
    Dropout,
    Embedding,
    LayerNorm,
    Module,
    SGD,
    Tensor,
    clip_global_norm,
    l2_normalize,
    log_mse_loss,
    pairwise_rank_loss,
)

rng = np.random.default_rng(11)


class TestModule:
    def test_parameters_collected_recursively(self):
        m = MLP([4, 8, 2])
        assert len(m.parameters()) == 2  # two weight matrices, no biases
        assert m.num_parameters() == 4 * 8 + 8 * 2

    def test_named_parameters_unique(self):
        m = MLP([4, 8, 8, 2])
        names = [n for n, _ in m.named_parameters()]
        assert len(names) == len(set(names))

    def test_state_dict_roundtrip(self):
        m1 = MLP([4, 8, 2], rng=np.random.default_rng(1))
        m2 = MLP([4, 8, 2], rng=np.random.default_rng(2))
        x = Tensor(rng.normal(size=(3, 4)))
        assert not np.allclose(m1(x).numpy(), m2(x).numpy())
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1(x).numpy(), m2(x).numpy(), rtol=1e-6)

    def test_load_state_dict_missing_key(self):
        m = MLP([4, 2])
        with pytest.raises(KeyError):
            m.load_state_dict({})

    def test_load_state_dict_shape_mismatch(self):
        m = MLP([4, 2])
        state = m.state_dict()
        name = next(iter(state))
        state[name] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_train_eval_recursive(self):
        m = MLP([4, 4, 2])
        m.eval()
        assert not m.training
        assert all(not layer.training for layer in m.layers)
        m.train()
        assert m.training


class TestDense:
    def test_shapes(self):
        d = Dense(4, 7)
        assert d(Tensor(rng.normal(size=(3, 4)))).shape == (3, 7)

    def test_activations(self):
        x = Tensor(rng.normal(size=(5, 4)))
        assert (Dense(4, 3, activation="relu")(x).numpy() >= 0).all()
        assert (np.abs(Dense(4, 3, activation="tanh")(x).numpy()) <= 1).all()
        out = Dense(4, 3, activation="sigmoid")(x).numpy()
        assert ((out >= 0) & (out <= 1)).all()

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Dense(4, 3, activation="gelu")

    def test_bias_optional(self):
        assert len(Dense(4, 3, bias=True).parameters()) == 2
        assert len(Dense(4, 3, bias=False).parameters()) == 1


class TestEmbedding:
    def test_lookup_shape(self):
        e = Embedding(10, 6)
        out = e(np.array([1, 3, 3]))
        assert out.shape == (3, 6)

    def test_gradient_flows_to_rows(self):
        e = Embedding(10, 4)
        out = e(np.array([2, 2, 5]))
        out.sum().backward()
        g = e.table.grad
        np.testing.assert_allclose(g[2], 2.0 * np.ones(4), rtol=1e-5)
        np.testing.assert_allclose(g[5], np.ones(4), rtol=1e-5)
        np.testing.assert_allclose(g[0], np.zeros(4))


class TestLayerNormAndDropout:
    def test_layer_norm_standardizes(self):
        ln = LayerNorm(16)
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 16)))
        y = ln(x).numpy()
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_eval_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        np.testing.assert_array_equal(d(x).numpy(), x.numpy())

    def test_dropout_training_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1000,)))
        y = d(x).numpy()
        assert set(np.round(np.unique(y), 5)) <= {0.0, 2.0}
        assert y.mean() == pytest.approx(1.0, abs=0.1)

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_l2_normalize(self):
        x = Tensor(rng.normal(size=(5, 8)))
        y = l2_normalize(x).numpy()
        np.testing.assert_allclose(np.linalg.norm(y, axis=-1), 1.0, rtol=1e-4)


class TestOptimizers:
    def quadratic(self, opt_cls, **kw):
        x = Tensor(np.array([5.0, -3.0]), requires_grad=True)
        opt = opt_cls([x], **kw)
        for _ in range(200):
            loss = (x * x).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return np.abs(x.data).max()

    def test_sgd_converges(self):
        assert self.quadratic(SGD, lr=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self.quadratic(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert self.quadratic(Adam, lr=0.3) < 1e-2

    def test_lr_decay_schedule(self):
        x = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([x], lr=1.0, decay=0.5, decay_every=10)
        assert opt.lr == 1.0
        opt.step_count = 10
        assert opt.lr == 0.5
        opt.step_count = 25
        assert opt.lr == 0.25

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Tensor(np.zeros(1), requires_grad=True)], lr=0.0)

    def test_clip_global_norm(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        a.grad = np.array([3.0, 0.0, 4.0], dtype=np.float32)  # norm 5
        norm = clip_global_norm([a], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(a.grad) == pytest.approx(1.0, rel=1e-5)

    def test_clip_noop_below_threshold(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        a.grad = np.array([0.3, 0.4], dtype=np.float32)
        clip_global_norm([a], max_norm=10.0)
        np.testing.assert_allclose(a.grad, [0.3, 0.4], rtol=1e-6)


class TestLosses:
    def test_log_mse_zero_for_exact(self):
        target = np.array([1e-6, 1e-3, 0.5])
        pred = Tensor(np.log(target))
        assert log_mse_loss(pred, target).item() == pytest.approx(0.0, abs=1e-6)

    def test_log_mse_positive_otherwise(self):
        target = np.array([1e-6, 1e-3])
        pred = Tensor(np.array([0.0, 0.0]))
        assert log_mse_loss(pred, target).item() > 0

    def test_rank_loss_zero_for_separated_scores(self):
        # Correct order with margin > 1 -> hinge loss 0.
        target = np.array([1.0, 2.0, 3.0])
        pred = Tensor(np.array([0.0, 5.0, 10.0]))
        groups = np.zeros(3, dtype=int)
        loss = pairwise_rank_loss(pred, target, groups, phi="hinge")
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_rank_loss_penalizes_inversions(self):
        target = np.array([1.0, 2.0])
        good = pairwise_rank_loss(Tensor(np.array([0.0, 5.0])), target, np.zeros(2, int))
        bad = pairwise_rank_loss(Tensor(np.array([5.0, 0.0])), target, np.zeros(2, int))
        assert bad.item() > good.item()

    def test_rank_loss_ignores_cross_group_pairs(self):
        target = np.array([1.0, 2.0])
        pred = Tensor(np.array([5.0, 0.0]))  # inverted
        loss = pairwise_rank_loss(pred, target, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-7)

    def test_rank_loss_logistic_positive_everywhere(self):
        target = np.array([1.0, 2.0, 3.0])
        pred = Tensor(np.array([0.0, 5.0, 10.0]))
        loss = pairwise_rank_loss(pred, target, np.zeros(3, int), phi="logistic")
        assert loss.item() > 0  # log(1+e^-z) > 0 for finite z

    def test_rank_loss_unknown_phi(self):
        with pytest.raises(ValueError):
            pairwise_rank_loss(
                Tensor(np.zeros(2)), np.array([1.0, 2.0]), np.zeros(2, int), phi="huber"
            )
