"""End-to-end integration tests: corpus -> datasets -> training -> evaluation
-> autotuning, exercising the same paths as the benchmark harness (smaller)."""
import numpy as np
import pytest

from repro.autotuner import (
    AnalyticalEvaluator,
    HardwareEvaluator,
    LearnedEvaluator,
    model_fusion_autotune,
    model_tile_autotune,
)
from repro.data import build_fusion_dataset, build_tile_dataset
from repro.evaluation import evaluate_fusion_task, evaluate_tile_task
from repro.models import (
    LearnedPerformanceModel,
    ModelConfig,
    TrainConfig,
    predict_fusion_runtimes,
    predict_tile_scores,
    train_fusion_model,
    train_tile_model,
)
from repro.tpu import AnalyticalModel, TpuSimulator
from repro.workloads import sequence, vision

SMALL = dict(hidden_dim=24, opcode_embedding_dim=12, gnn_layers=2, lstm_hidden=24)


@pytest.fixture(scope="module")
def tile_setup():
    train_progs = [vision.image_embed(0), vision.image_embed(1), vision.ssd(1), sequence.feats2wave(1)]
    test_progs = [vision.ssd(0)]
    train_ds = build_tile_dataset(train_progs, max_kernels_per_program=8, max_tiles_per_kernel=10, seed=0)
    test_ds = build_tile_dataset(test_progs, max_kernels_per_program=6, max_tiles_per_kernel=10, seed=1)
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    res = train_tile_model(
        train_ds.records, cfg,
        TrainConfig(steps=400, kernels_per_batch=6, tiles_per_kernel=5, log_every=100),
    )
    return train_ds, test_ds, res


class TestTileEndToEnd:
    def test_learned_model_learns_to_rank(self, tile_setup):
        train_ds, test_ds, res = tile_setup
        recs = train_ds.records[:8]
        truths = [r.runtimes for r in recs]
        scores = [predict_tile_scores(res.model, res.scalers, r) for r in recs]
        result = evaluate_tile_task(truths, scores)
        assert result.kendall > 0.5  # clearly better than random on train data

    def test_generalizes_to_unseen_program(self, tile_setup):
        _, test_ds, res = tile_setup
        recs = test_ds.records
        truths = [r.runtimes for r in recs]
        scores = [predict_tile_scores(res.model, res.scalers, r) for r in recs]
        result = evaluate_tile_task(truths, scores)
        assert result.kendall > 0.3
        assert result.ape < 60.0

    def test_learned_autotuner_top_k(self, tile_setup):
        _, test_ds, res = tile_setup
        kernels = [r.kernel for r in test_ds.records][:4]
        ev = LearnedEvaluator(res.model, res.scalers)
        hw = HardwareEvaluator(TpuSimulator())
        out = model_tile_autotune(kernels, ev, hw, top_k=5)
        assert out.program_runtime > 0
        assert out.hardware_evaluations == 4 * 5


@pytest.fixture(scope="module")
def fusion_setup():
    train_progs = [sequence.char2feats(0), sequence.char2feats(1), vision.image_embed(1), sequence.feats2wave(0)]
    test_prog = sequence.char2feats(2)
    train_ds = build_fusion_dataset(train_progs, configs_per_program=4, seed=0)
    test_ds = build_fusion_dataset([test_prog], configs_per_program=4, seed=1)
    cfg = ModelConfig(task="fusion", reduction="column-wise", loss="mse", **SMALL)
    res = train_fusion_model(
        train_ds.records, cfg, TrainConfig(steps=500, batch_size=16, log_every=100)
    )
    return train_ds, test_ds, res, test_prog


class TestFusionEndToEnd:
    def test_absolute_predictions_in_right_ballpark(self, fusion_setup):
        _, test_ds, res, _ = fusion_setup
        truths = np.array([r.runtime for r in test_ds.records])
        preds = predict_fusion_runtimes(res.model, res.scalers, test_ds.records)
        result = evaluate_fusion_task(truths, preds, min_runtime=0.0)
        assert result.mape < 80.0
        assert result.kendall > 0.3

    def test_fusion_autotuner_with_learned_model(self, fusion_setup):
        _, _, res, test_prog = fusion_setup
        ev = LearnedEvaluator(res.model, res.scalers)
        hw = HardwareEvaluator(TpuSimulator())
        out = model_fusion_autotune(
            test_prog, ev, hw, model_budget=40, hardware_budget=3, seed=0
        )
        # With verification on hardware, result should not be much worse
        # than the default configuration.
        assert out.runtime <= out.default_runtime * 1.10


class TestModelPersistence:
    def test_trained_model_roundtrip(self, tile_setup):
        train_ds, _, res = tile_setup
        clone = LearnedPerformanceModel(res.model.config, seed=123)
        clone.load_state_dict(res.model.state_dict())
        clone.eval()
        r = train_ds.records[0]
        a = predict_tile_scores(res.model, res.scalers, r)
        b = predict_tile_scores(clone, res.scalers, r)
        np.testing.assert_allclose(a, b, rtol=1e-5)
