"""Tests for the kernel precompute cache, batched scoring, and batched search.

The contract under test is *exact* equivalence: the cached/composed fast
paths must be bitwise-identical to the cold reference paths — features,
adjacency operators (via ``.toarray()``), pad views, and model scores.
"""
import numpy as np
import pytest

from repro.autotuner import (
    LearnedEvaluator,
    genetic_search,
    parallel_annealing,
    random_search,
)
from repro.compiler import enumerate_tile_sizes
from repro.data import (
    KernelCache,
    Scalers,
    TileBatchSampler,
    assemble_batch,
    build_fusion_dataset,
    build_tile_dataset,
)
from repro.models import LearnedPerformanceModel, ModelConfig
from repro.workloads import vision


@pytest.fixture(scope="module")
def tile_records():
    programs = [vision.resnet_v1(0), vision.alexnet(0)]
    return build_tile_dataset(programs, max_tiles_per_kernel=4, seed=0).records


@pytest.fixture(scope="module")
def fusion_records():
    return build_fusion_dataset([vision.alexnet(0)], seed=0).records


@pytest.fixture(scope="module")
def scalers(tile_records):
    return Scalers.fit_tile(tile_records)


def assert_batches_identical(ref, got):
    for name in (
        "node_feats",
        "opcodes",
        "tile_feats",
        "static_feats",
        "targets",
        "group_ids",
        "pad_index",
        "pad_mask",
    ):
        np.testing.assert_array_equal(
            getattr(ref, name), getattr(got, name), err_msg=name
        )
    np.testing.assert_array_equal(ref.context.edges, got.context.edges)
    np.testing.assert_array_equal(ref.context.graph_ids, got.context.graph_ids)
    assert ref.context.sizes == got.context.sizes
    assert ref.context.num_nodes == got.context.num_nodes
    for name in ("adj_in", "adj_out", "adj_sym"):
        np.testing.assert_array_equal(
            getattr(ref.context, name).toarray(),
            getattr(got.context, name).toarray(),
            err_msg=name,
        )


class TestKernelCacheEquivalence:
    def test_bitwise_identical_to_assemble_batch(self, tile_records, scalers):
        sampler = TileBatchSampler(tile_records, kernels_per_batch=4, tiles_per_kernel=3, seed=7)
        cache = KernelCache(scalers, neighbor_cap=20)
        for _ in range(4):
            items = sampler.draw_items()
            assert_batches_identical(
                assemble_batch(items, scalers), cache.assemble(items)
            )

    def test_neighbor_cap_truncation_path(self, tile_records, scalers):
        sampler = TileBatchSampler(tile_records, kernels_per_batch=3, tiles_per_kernel=2, seed=3)
        cache = KernelCache(scalers, neighbor_cap=2)
        items = sampler.draw_items()
        assert_batches_identical(
            assemble_batch(items, scalers, neighbor_cap=2), cache.assemble(items)
        )

    def test_identity_scalers(self, tile_records):
        sampler = TileBatchSampler(tile_records, kernels_per_batch=3, tiles_per_kernel=2, seed=5)
        cache = KernelCache(scalers=None, neighbor_cap=20)
        items = sampler.draw_items()
        assert_batches_identical(assemble_batch(items), cache.assemble(items))

    def test_fusion_items_without_tiles(self, fusion_records):
        scalers = Scalers.fit_fusion(fusion_records)
        items = [(r.features, None, r.runtime, i) for i, r in enumerate(fusion_records[:6])]
        cache = KernelCache(scalers, neighbor_cap=20)
        assert_batches_identical(
            assemble_batch(items, scalers), cache.assemble(items)
        )

    def test_single_item_batch(self, tile_records, scalers):
        r = tile_records[0]
        items = [(r.features, r.tile_feats[0], float(r.runtimes[0]), 0)]
        cache = KernelCache(scalers, neighbor_cap=20)
        assert_batches_identical(
            assemble_batch(items, scalers), cache.assemble(items)
        )

    def test_empty_batch_rejected(self, scalers):
        with pytest.raises(ValueError):
            KernelCache(scalers).assemble([])


class TestKernelCacheMetering:
    def test_entry_hits_and_misses(self, tile_records, scalers):
        cache = KernelCache(scalers)
        r = tile_records[0]
        items = [(r.features, r.tile_feats[t], 0.0, 0) for t in range(2)]
        cache.assemble(items)
        assert cache.misses == 1  # one unique kernel
        assert cache.hits == 1  # second item reused the entry
        cache.assemble(items)
        assert cache.misses == 1
        assert cache.hits == 3

    def test_context_memo_hits_on_repeat_composition(self, tile_records, scalers):
        cache = KernelCache(scalers)
        r = tile_records[0]
        items = [(r.features, r.tile_feats[t % 2], 0.0, 0) for t in range(3)]
        b1 = cache.assemble(items)
        b2 = cache.assemble(items)
        assert cache.context_misses == 1
        assert cache.context_hits == 1
        assert b1.context is b2.context  # shared, not rebuilt

    def test_context_memo_bounded(self, tile_records, scalers):
        cache = KernelCache(scalers, max_contexts=2)
        for r in tile_records[:5]:
            cache.assemble([(r.features, r.tile_feats[0], 0.0, 0)])
        assert len(cache._contexts) <= 2

    def test_entry_store_bounded_with_lru_eviction(self, tile_records, scalers):
        cache = KernelCache(scalers, max_entries=3)
        for r in tile_records[:5]:
            cache.assemble([(r.features, r.tile_feats[0], 0.0, 0)])
        assert len(cache) <= 3
        # Evicted kernels are recomputed (a miss), and still correct.
        r0 = tile_records[0]
        items = [(r0.features, r0.tile_feats[0], 0.0, 0)]
        before = cache.misses
        assert_batches_identical(assemble_batch(items, scalers), cache.assemble(items))
        assert cache.misses == before + 1

    def test_clear_drops_entries(self, tile_records, scalers):
        cache = KernelCache(scalers)
        r = tile_records[0]
        cache.assemble([(r.features, r.tile_feats[0], 0.0, 0)])
        cache.clear()
        assert len(cache) == 0


class TestBatchedTileScoring:
    @pytest.fixture(scope="class")
    def evaluator(self, tile_records, scalers):
        model = LearnedPerformanceModel(ModelConfig.paper_best_tile(), seed=0)
        model.eval()
        return LearnedEvaluator(model, scalers)

    def test_matches_cold_path_bitwise(self, tile_records, scalers, evaluator):
        """Cached composition changes nothing: same batch, same bits."""
        record = max(tile_records, key=lambda r: len(enumerate_tile_sizes(r.kernel)))
        tiles = enumerate_tile_sizes(record.kernel)[:12]
        cold = LearnedEvaluator(evaluator.model, scalers, cache=False)
        np.testing.assert_array_equal(
            cold.tile_scores(record.kernel, tiles),
            evaluator.score_tiles_batched(record.kernel, tiles),
        )

    def test_matches_per_tile_scoring(self, tile_records, scalers, evaluator):
        """One batched forward == N single-tile forwards (up to BLAS
        shape-dependent rounding, which differs across batch sizes)."""
        record = max(tile_records, key=lambda r: len(enumerate_tile_sizes(r.kernel)))
        tiles = enumerate_tile_sizes(record.kernel)[:12]
        cold = LearnedEvaluator(evaluator.model, scalers, cache=False)
        per_tile = np.concatenate(
            [cold.tile_scores(record.kernel, [t]) for t in tiles]
        )
        batched = evaluator.score_tiles_batched(record.kernel, tiles)
        np.testing.assert_allclose(per_tile, batched, rtol=1e-4, atol=1e-7)

    def test_empty_tiles(self, tile_records, evaluator):
        out = evaluator.score_tiles_batched(tile_records[0].kernel, [])
        assert out.shape == (0,)

    def test_feature_memo_metering(self, tile_records, scalers, evaluator):
        kernel = tile_records[1].kernel
        tiles = enumerate_tile_sizes(kernel)[:4]
        before = evaluator.feature_cache_misses
        evaluator.score_tiles_batched(kernel, tiles)
        evaluator.score_tiles_batched(kernel, tiles)
        assert evaluator.feature_cache_misses == before + 1
        assert evaluator.feature_cache_hits >= 1

    def test_predict_preserves_eval_mode(self, tile_records, scalers, evaluator):
        assert not evaluator.model.training
        evaluator.score_tiles_batched(
            tile_records[0].kernel, enumerate_tile_sizes(tile_records[0].kernel)[:2]
        )
        assert not evaluator.model.training  # predict restored eval mode


class TestBatchedProgramScoring:
    def test_matches_sequential_program_runtime(self, fusion_records):
        scalers = Scalers.fit_fusion(fusion_records)
        model = LearnedPerformanceModel(ModelConfig.paper_best_fusion(), seed=0)
        model.eval()
        kernels = [r.kernel for r in fusion_records[:4]]
        programs = [kernels[:2], kernels[2:], kernels]
        sequential = LearnedEvaluator(model, scalers)
        expected = np.asarray([sequential.program_runtime(p) for p in programs])
        batched = LearnedEvaluator(model, scalers)
        got = batched.program_runtimes_batched(programs)
        # Kernels are priced in different batch shapes (float32 BLAS
        # rounding differs across shapes), so exact equality is not
        # expected — agreement to ~1e-5 relative is.
        np.testing.assert_allclose(got, expected, rtol=1e-5)


class TestBatchedSearch:
    @staticmethod
    def _cost(state):
        return float((state - 3.7) ** 2)

    def test_random_search_batched_identical(self):
        sample = lambda rng: float(rng.normal())
        seq = random_search(sample, self._cost, 40, np.random.default_rng(0))
        bat = random_search(
            sample,
            self._cost,
            40,
            np.random.default_rng(0),
            batch_cost_fn=lambda states: [self._cost(s) for s in states],
        )
        assert seq.best_state == bat.best_state
        assert seq.best_cost == bat.best_cost
        assert seq.visited == bat.visited
        assert seq.history == bat.history

    def test_genetic_search_batched_identical(self):
        sample = lambda rng: float(rng.normal())
        crossover = lambda a, b, rng: (a + b) / 2
        mutate = lambda s, rng: s + float(rng.normal()) * 0.1
        seq = genetic_search(
            sample, self._cost, crossover, mutate, np.random.default_rng(1),
            population=8, generations=4, elite=2,
        )
        bat = genetic_search(
            sample, self._cost, crossover, mutate, np.random.default_rng(1),
            population=8, generations=4, elite=2,
            batch_cost_fn=lambda states: [self._cost(s) for s in states],
        )
        assert seq.best_state == bat.best_state
        assert seq.best_cost == bat.best_cost
        assert seq.visited == bat.visited

    def test_parallel_annealing_improves_and_batches(self):
        calls = []

        def batch_cost(states):
            calls.append(len(states))
            return [self._cost(s) for s in states]

        neighbor = lambda s, rng: s + float(rng.normal()) * 0.5
        result = parallel_annealing(
            [0.0, 10.0, -5.0], batch_cost, neighbor, steps=50,
            rng=np.random.default_rng(2),
        )
        assert result.best_cost <= self._cost(0.0)
        assert len(result.visited) == 3 * 51
        assert all(n == 3 for n in calls)  # one batched call per step

    def test_parallel_annealing_rejects_empty(self):
        with pytest.raises(ValueError):
            parallel_annealing(
                [], lambda s: [], lambda s, r: s, steps=1,
                rng=np.random.default_rng(0),
            )
