"""Tests for sparse GNN support: spmm, segment ops, adjacency normalization."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    Tensor,
    normalized_adjacency,
    segment_softmax,
    segment_sum,
    spmm,
)

rng = np.random.default_rng(7)


class TestSpmm:
    def test_matches_dense(self):
        a = sp.random(6, 5, density=0.5, random_state=0, format="csr")
        x = Tensor(rng.normal(size=(5, 3)))
        out = spmm(a, x)
        np.testing.assert_allclose(out.numpy(), a.toarray() @ x.numpy(), rtol=1e-5)

    def test_gradient_is_transpose(self):
        a = sp.random(4, 4, density=0.6, random_state=1, format="csr")
        x = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        spmm(a, x).sum().backward()
        expected = a.T.toarray() @ np.ones((4, 2))
        np.testing.assert_allclose(x.grad, expected, rtol=1e-5)


class TestSegmentSum:
    def test_forward(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0], [4.0]]))
        out = segment_sum(x, np.array([0, 0, 1, 1]), 2)
        np.testing.assert_allclose(out.numpy(), [[3.0], [7.0]])

    def test_empty_segment_is_zero(self):
        x = Tensor(np.array([[1.0]]))
        out = segment_sum(x, np.array([2]), 3)
        np.testing.assert_allclose(out.numpy(), [[0.0], [0.0], [1.0]])

    def test_gradient_gathers(self):
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        ids = np.array([0, 1, 0, 2, 1])
        (segment_sum(x, ids, 3) * Tensor(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))).sum().backward()
        expected = np.array([[1, 2], [3, 4], [1, 2], [5, 6], [3, 4]], dtype=np.float64)
        np.testing.assert_allclose(x.grad, expected, rtol=1e-5)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        scores = Tensor(rng.normal(size=(6,)))
        ids = np.array([0, 0, 0, 1, 1, 2])
        out = segment_softmax(scores, ids, 3).numpy()
        assert out[:3].sum() == pytest.approx(1.0, abs=1e-5)
        assert out[3:5].sum() == pytest.approx(1.0, abs=1e-5)
        assert out[5] == pytest.approx(1.0, abs=1e-5)

    def test_matches_plain_softmax_single_segment(self):
        scores = rng.normal(size=(5,))
        out = segment_softmax(Tensor(scores), np.zeros(5, dtype=int), 1).numpy()
        ref = np.exp(scores - scores.max())
        ref /= ref.sum()
        np.testing.assert_allclose(out, ref, rtol=1e-5)

    def test_gradient_against_finite_differences(self):
        ids = np.array([0, 0, 1, 1, 1])
        base = rng.normal(size=(5,))
        w = rng.normal(size=(5,))

        def f(arr):
            return float((segment_softmax(Tensor(arr), ids, 2).numpy() * w).sum())

        x = Tensor(base.copy(), requires_grad=True)
        (segment_softmax(x, ids, 2) * Tensor(w)).sum().backward()
        eps = 1e-3
        num = np.zeros(5)
        for i in range(5):
            up, dn = base.copy(), base.copy()
            up[i] += eps
            dn[i] -= eps
            num[i] = (f(up) - f(dn)) / (2 * eps)
        np.testing.assert_allclose(x.grad, num, atol=2e-2)

    def test_multihead_scores(self):
        scores = Tensor(rng.normal(size=(4, 2)))
        ids = np.array([0, 0, 1, 1])
        out = segment_softmax(scores, ids, 2).numpy()
        np.testing.assert_allclose(out[:2].sum(axis=0), [1.0, 1.0], rtol=1e-5)


class TestNormalizedAdjacency:
    def chain(self):
        a = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=np.float32))
        return a

    def test_in_direction_averages_operands(self):
        m = normalized_adjacency(self.chain(), "in")
        h = np.array([[1.0], [2.0], [3.0]])
        out = m @ h
        # Node 1's operand is node 0; node 2's operand is node 1.
        np.testing.assert_allclose(out, [[0.0], [1.0], [2.0]])

    def test_out_direction_averages_users(self):
        m = normalized_adjacency(self.chain(), "out")
        h = np.array([[1.0], [2.0], [3.0]])
        np.testing.assert_allclose(m @ h, [[2.0], [3.0], [0.0]])

    def test_both_symmetrizes(self):
        m = normalized_adjacency(self.chain(), "both")
        h = np.array([[1.0], [2.0], [3.0]])
        np.testing.assert_allclose(m @ h, [[2.0], [2.0], [2.0]])

    def test_rows_sum_to_one_or_zero(self):
        a = sp.random(10, 10, density=0.3, random_state=3, format="csr")
        a.data[:] = 1.0
        m = normalized_adjacency(a, "in")
        sums = np.asarray(m.sum(axis=1)).reshape(-1)
        assert np.all((np.abs(sums - 1.0) < 1e-5) | (np.abs(sums) < 1e-8))

    def test_neighbor_cap(self):
        # Node 0 feeds everyone: in-aggregation rows capped at 2 neighbors.
        n = 8
        a = np.zeros((n, n), dtype=np.float32)
        a[0, 1:] = 1.0
        m = normalized_adjacency(sp.csr_matrix(a), "out", cap=2)
        assert m[0].nnz <= 2

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            normalized_adjacency(self.chain(), "sideways")
