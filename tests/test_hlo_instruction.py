"""Tests for the Instruction dataclass."""
import pytest

from repro.hlo import Instruction, Opcode, Shape


class TestInstruction:
    def test_default_name(self):
        i = Instruction(3, Opcode.PARAMETER, Shape((4,)))
        assert i.name == "parameter.3"

    def test_explicit_name_kept(self):
        i = Instruction(3, Opcode.PARAMETER, Shape((4,)), name="images")
        assert i.name == "images"

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Instruction(0, Opcode.TANH, Shape((4,)), operands=())
        with pytest.raises(ValueError):
            Instruction(0, Opcode.ADD, Shape((4,)), operands=(1,))

    def test_variadic_arity_allowed(self):
        Instruction(5, Opcode.CONCATENATE, Shape((4,)), operands=(1, 2, 3))
        Instruction(5, Opcode.CONCATENATE, Shape((4,)), operands=(1,))

    def test_operands_normalized_to_ints(self):
        import numpy as np

        i = Instruction(0, Opcode.ADD, Shape((4,)), operands=(np.int64(1), 2))
        assert i.operands == (1, 2)
        assert all(type(o) is int for o in i.operands)

    def test_attr_helper(self):
        i = Instruction(0, Opcode.PARAMETER, Shape((4,)), attrs={"k": 7})
        assert i.attr("k") == 7
        assert i.attr("missing") is None
        assert i.attr("missing", 3) == 3

    def test_arity_property(self):
        i = Instruction(0, Opcode.SELECT, Shape((4,)), operands=(1, 2, 3))
        assert i.arity == 3

    def test_str_contains_opcode_and_ids(self):
        i = Instruction(7, Opcode.ADD, Shape((4,)), operands=(1, 2))
        s = str(i)
        assert "%7" in s and "add" in s and "%1" in s
