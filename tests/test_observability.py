"""Continuous profiler + alert engine + durable ops journal.

The active-observability layer's contracts, each pinned where it can
actually break: the journal must survive torn writes and preserve event
order across rotation, the alert state machine must hold its pending and
resolve windows exactly (deterministic under an injected clock), the
profiler must attribute wall-time per stage with exemplar links and a
bounded interval ring, and the whole stack must journal a service's real
lifecycle events end to end.
"""
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.compiler import enumerate_tile_sizes
from repro.data import Scalers, build_tile_dataset
from repro.models import LearnedPerformanceModel, ModelConfig
from repro.models.trainer import TrainResult
from repro.serving import (
    AlertEngine,
    AnomalyRule,
    BurnRateRule,
    ContinuousProfiler,
    CostModelService,
    GoldenProbe,
    IncidentReporter,
    MetricsGateway,
    OpsJournal,
    Response,
    ServiceConfig,
    ServiceEvaluator,
    SyntheticProber,
    TelemetryRegistry,
    ThresholdRule,
    TileScoresRequest,
    Tracer,
    decode_request,
)
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=4, max_tiles_per_kernel=6, seed=0
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


@pytest.fixture(scope="module")
def result_a(corpus):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=0)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


class FakeClock:
    """Injectable wall clock: the whole alert/journal machinery is
    deterministic under it."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------- #
# ops journal: crash safety + rotation
# ---------------------------------------------------------------------- #


class TestJournalCrashSafety:
    def test_events_are_jsonl_with_monotone_seq_and_injected_ts(self, tmp_path):
        clock = FakeClock(500.0)
        with OpsJournal(tmp_path / "ops.jsonl", clock=clock) as journal:
            journal.record("rollout.transition", state="canary")
            clock.advance(1.0)
            journal.record("rollout.transition", state="promoted", trace_id="t-1")
            events = list(journal.replay())
        assert [e["seq"] for e in events] == [1, 2]
        assert [e["ts"] for e in events] == [500.0, 501.0]
        assert events[1]["trace_id"] == "t-1"
        # One JSON object per line on disk, newline-terminated.
        raw = (tmp_path / "ops.jsonl").read_bytes()
        assert raw.endswith(b"\n") and len(raw.splitlines()) == 2

    def test_torn_final_line_is_truncated_and_counted_on_reopen(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        with OpsJournal(path) as journal:
            journal.record("registry.activate", version="v1")
            journal.record("registry.activate", version="v2")
        # A crash mid-append leaves a partial line with no newline.
        with open(path, "ab") as f:
            f.write(b'{"seq": 3, "kind": "registry.acti')
        journal = OpsJournal(path)
        try:
            assert journal.torn_lines_skipped == 1
            journal.record("registry.activate", version="v3")
            events = list(journal.replay())
            # The torn record is gone; seq resumes after the last valid one.
            assert [e["seq"] for e in events] == [1, 2, 3]
            assert [e["version"] for e in events] == ["v1", "v2", "v3"]
            assert journal.snapshot()["journal_torn_lines_skipped"] == 1.0
        finally:
            journal.close()

    def test_seq_resumes_across_clean_reopen(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        with OpsJournal(path) as journal:
            for i in range(3):
                journal.record("breaker.transition", shard=i)
        with OpsJournal(path) as journal:
            entry = journal.record("breaker.transition", shard=3)
        assert entry["seq"] == 4

    def test_rotation_preserves_event_order(self, tmp_path):
        journal = OpsJournal(tmp_path / "ops.jsonl", max_bytes=256, max_files=8)
        try:
            for i in range(40):
                journal.record("worker.respawn", shard=i % 4, restarts=i)
            assert journal.rotations > 0
            assert len(journal.generations()) > 1
            seqs = [e["seq"] for e in journal.replay()]
            # Oldest-first across every generation, no gaps, no repeats.
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
            assert seqs[-1] == 40
        finally:
            journal.close()

    def test_rotation_drops_oldest_generation_past_max_files(self, tmp_path):
        journal = OpsJournal(tmp_path / "ops.jsonl", max_bytes=128, max_files=2)
        try:
            for i in range(60):
                journal.record("service.degraded", shard=i)
            assert len(journal.generations()) <= 3  # 2 rotated + live
            seqs = [e["seq"] for e in journal.replay()]
            assert seqs[0] > 1  # the oldest events were aged out
            assert seqs == list(range(seqs[0], 61))
        finally:
            journal.close()

    def test_replay_skips_corrupt_mid_file_lines(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        with OpsJournal(path) as journal:
            journal.record("placement.rebalance", moves=2)
        with open(path, "ab") as f:
            f.write(b"not json at all\n")
            f.write(b'{"no_kind_key": true}\n')
        with OpsJournal(path) as journal:
            journal.record("placement.rebalance", moves=3)
            kinds = [e["kind"] for e in journal.replay()]
            assert kinds == ["placement.rebalance", "placement.rebalance"]
            assert journal.invalid_lines_skipped == 2

    def test_recent_serves_newest_first_without_disk(self, tmp_path):
        with OpsJournal(tmp_path / "ops.jsonl", recent_events=4) as journal:
            for i in range(10):
                journal.record("alert.transition", n=i)
            tail = journal.recent(3)
        assert [e["n"] for e in tail] == [9, 8, 7]

    def test_timeline_filters_by_kind_prefix(self, tmp_path):
        with OpsJournal(tmp_path / "ops.jsonl") as journal:
            journal.record("rollout.transition", state="canary")
            journal.record("registry.activate", version="v2")
            journal.record("rollout.transition", state="promoted")
            journal.record("placement.rebalance", moves=1)
            timeline = journal.timeline(("rollout.", "placement."))
        assert [e["kind"] for e in timeline] == [
            "rollout.transition",
            "rollout.transition",
            "placement.rebalance",
        ]
        assert [e.get("state") for e in timeline[:2]] == ["canary", "promoted"]

    def test_record_after_close_is_dropped_not_raised(self, tmp_path):
        journal = OpsJournal(tmp_path / "ops.jsonl")
        journal.record("registry.spill", versions=1)
        journal.close()
        journal.record("registry.spill", versions=2)  # must not raise
        journal.close()  # idempotent
        assert len(list(journal.replay())) == 1

    def test_registers_counters_into_a_registry(self, tmp_path):
        with OpsJournal(tmp_path / "ops.jsonl") as journal:
            journal.record("registry.publish", version="v1")
            registry = TelemetryRegistry()
            journal.register_into(registry)
            text = registry.prometheus()
        assert "repro_journal_events_total 1" in text
        assert "repro_journal_rotations_total 0" in text


# ---------------------------------------------------------------------- #
# alert engine: state machine under an injected clock
# ---------------------------------------------------------------------- #


class TestAlertStateMachine:
    def _engine(self, rule, clock):
        return AlertEngine(rules=[rule], clock=clock)

    def test_zero_hold_rule_fires_and_resolves_immediately(self):
        clock = FakeClock()
        engine = self._engine(
            ThresholdRule(name="depth", metric="queue_depth", threshold=10.0), clock
        )
        moves = engine.evaluate({"queue_depth": 50.0})
        assert [(m["from"], m["to"]) for m in moves] == [("inactive", "firing")]
        assert engine.state("depth") == "firing"
        moves = engine.evaluate({"queue_depth": 2.0})
        assert [(m["from"], m["to"]) for m in moves] == [("firing", "resolved")]

    def test_pending_hold_requires_breach_sustained_for_s(self):
        clock = FakeClock()
        engine = self._engine(
            ThresholdRule(
                name="depth", metric="queue_depth", threshold=10.0, for_s=5.0
            ),
            clock,
        )
        engine.evaluate({"queue_depth": 50.0})
        assert engine.state("depth") == "pending"
        clock.advance(4.0)
        engine.evaluate({"queue_depth": 50.0})
        assert engine.state("depth") == "pending"  # 4s < for_s
        clock.advance(1.0)
        moves = engine.evaluate({"queue_depth": 50.0})
        assert engine.state("depth") == "firing"
        assert moves[0]["severity"] == "warning"

    def test_pending_cancels_back_to_inactive_on_clear(self):
        clock = FakeClock()
        engine = self._engine(
            ThresholdRule(
                name="depth", metric="queue_depth", threshold=10.0, for_s=5.0
            ),
            clock,
        )
        engine.evaluate({"queue_depth": 50.0})
        clock.advance(1.0)
        moves = engine.evaluate({"queue_depth": 0.0})
        assert [(m["from"], m["to"]) for m in moves] == [("pending", "inactive")]

    def test_keep_s_hysteresis_delays_resolve_and_resets_on_rebreach(self):
        clock = FakeClock()
        engine = self._engine(
            ThresholdRule(
                name="depth", metric="queue_depth", threshold=10.0, keep_s=10.0
            ),
            clock,
        )
        engine.evaluate({"queue_depth": 50.0})
        assert engine.state("depth") == "firing"
        # Clear — but not held long enough.
        engine.evaluate({"queue_depth": 0.0})
        clock.advance(6.0)
        engine.evaluate({"queue_depth": 0.0})
        assert engine.state("depth") == "firing"
        # A re-breach resets the clear window (flap suppression).
        engine.evaluate({"queue_depth": 50.0})
        clock.advance(6.0)
        engine.evaluate({"queue_depth": 0.0})
        clock.advance(6.0)
        engine.evaluate({"queue_depth": 0.0})
        assert engine.state("depth") == "firing"  # only 6s since re-clear...
        clock.advance(5.0)
        engine.evaluate({"queue_depth": 0.0})
        assert engine.state("depth") == "resolved"

    def test_resolved_rebreach_restarts_the_cycle(self):
        clock = FakeClock()
        engine = self._engine(
            ThresholdRule(
                name="depth", metric="queue_depth", threshold=10.0, for_s=1.0
            ),
            clock,
        )
        engine.evaluate({"queue_depth": 50.0})
        clock.advance(1.0)
        engine.evaluate({"queue_depth": 50.0})
        engine.evaluate({"queue_depth": 0.0})
        assert engine.state("depth") == "resolved"
        engine.evaluate({"queue_depth": 50.0})
        assert engine.state("depth") == "pending"
        alert = engine.alerts()["alerts"][0]
        assert alert["fired_count"] == 1 and alert["transitions"] == 4

    def test_burn_rate_rule_gates_on_window_population(self):
        clock = FakeClock()
        engine = self._engine(BurnRateRule(name="slo", min_samples=32), clock)
        # Huge burn rate over a tiny window: no verdict, no page.
        engine.evaluate({"slo_burn_rate": 40.0, "slo_window_samples": 3.0})
        assert engine.state("slo") == "inactive"
        engine.evaluate({"slo_burn_rate": 40.0, "slo_window_samples": 64.0})
        assert engine.state("slo") == "firing"

    def test_missing_metric_is_no_verdict_not_a_crash(self):
        clock = FakeClock()
        engine = self._engine(
            ThresholdRule(name="gone", metric="no.such.path", threshold=1.0), clock
        )
        assert engine.evaluate({"other": 1.0}) == []
        assert engine.state("gone") == "inactive"

    def test_anomaly_rule_fires_on_spike_after_warmup(self):
        clock = FakeClock()
        engine = self._engine(
            AnomalyRule(
                name="latency",
                metric="latency_ewma",
                z_threshold=3.0,
                warmup=5,
                min_std=1e-3,
            ),
            clock,
        )
        # A noisy-but-stationary baseline never breaches.
        for i in range(20):
            engine.evaluate({"latency_ewma": 0.010 + (i % 2) * 0.001})
        assert engine.state("latency") == "inactive"
        engine.evaluate({"latency_ewma": 0.500})  # 50x spike
        assert engine.state("latency") == "firing"

    def test_anomaly_rule_warmup_suppresses_early_verdicts(self):
        clock = FakeClock()
        engine = self._engine(
            AnomalyRule(
                name="latency", metric="latency_ewma", warmup=10, min_std=1e-3
            ),
            clock,
        )
        engine.evaluate({"latency_ewma": 0.010})
        engine.evaluate({"latency_ewma": 9.0})  # huge, but still warming up
        assert engine.state("latency") == "inactive"

    def test_transitions_are_journaled_with_exemplar_trace(self, tmp_path):
        clock = FakeClock()
        with OpsJournal(tmp_path / "ops.jsonl", clock=clock) as journal:
            engine = AlertEngine(
                rules=[
                    ThresholdRule(name="depth", metric="queue_depth", threshold=10.0)
                ],
                clock=clock,
                journal=journal,
                exemplar=lambda: "t-exemplar-1",
            )
            engine.evaluate({"queue_depth": 50.0})
            engine.evaluate({"queue_depth": 0.0})
            events = journal.timeline(("alert.",))
        assert [(e["from"], e["to"]) for e in events] == [
            ("inactive", "firing"),
            ("firing", "resolved"),
        ]
        assert events[0]["trace_id"] == "t-exemplar-1"
        assert events[0]["name"] == "depth"

    def test_duplicate_rule_name_rejected(self):
        engine = AlertEngine(
            rules=[ThresholdRule(name="x", metric="m", threshold=1.0)]
        )
        with pytest.raises(ValueError):
            engine.add_rule(ThresholdRule(name="x", metric="m2", threshold=2.0))

    def test_evaluate_without_source_or_snapshot_raises(self):
        with pytest.raises(ValueError):
            AlertEngine().evaluate()

    def test_board_sorts_firing_first_and_registers_counters(self):
        clock = FakeClock()
        engine = AlertEngine(
            rules=[
                ThresholdRule(name="quiet", metric="a", threshold=10.0),
                ThresholdRule(name="loud", metric="b", threshold=10.0),
            ],
            clock=clock,
        )
        engine.evaluate({"a": 0.0, "b": 50.0})
        board = engine.alerts()
        assert board["firing"] == 1
        assert board["alerts"][0]["name"] == "loud"
        registry = TelemetryRegistry()
        engine.register_into(registry)
        snap = registry.collect()
        assert snap["alerts_firing"] == 1.0
        assert snap["alert_evaluations"] == 1.0


# ---------------------------------------------------------------------- #
# continuous profiler
# ---------------------------------------------------------------------- #


class TestContinuousProfiler:
    def test_stage_aggregation_and_fractions(self):
        profiler = ContinuousProfiler()
        profiler.record_stage("forward", 0.030)
        profiler.record_stage("forward", 0.010)
        profiler.record_stage("serialize", 0.010)
        report = profiler.profile()
        forward = report["stages"]["forward"]
        assert forward["count"] == 2.0
        assert forward["sum"] == pytest.approx(0.040)
        assert forward["max_s"] == pytest.approx(0.030)
        assert forward["mean_s"] == pytest.approx(0.020)
        assert forward["fraction"] == pytest.approx(0.8)
        fractions = [s["fraction"] for s in report["stages"].values()]
        assert sum(fractions) == pytest.approx(1.0)

    def test_exemplars_link_last_and_worst_samples(self):
        profiler = ContinuousProfiler()
        profiler.record_stage("forward", 0.010, trace_id="t-1")
        profiler.record_stage("forward", 0.500, trace_id="t-slow")
        profiler.record_stage("forward", 0.010, trace_id="t-3")
        stats = profiler.profile()["stages"]["forward"]
        assert stats["exemplar"] == "t-3"
        assert stats["worst_exemplar"] == "t-slow"

    def test_histogram_buckets_are_cumulative(self):
        profiler = ContinuousProfiler()
        profiler.record_stage("compose", 0.0005)
        profiler.record_stage("compose", 0.050)
        buckets = profiler.profile()["stages"]["compose"]["buckets"]
        assert buckets["0.001"] == 1.0
        assert buckets["0.1"] == 2.0  # cumulative: includes the fast one
        assert buckets["5.0"] == 2.0

    def test_sampling_stride_records_every_nth(self):
        profiler = ContinuousProfiler(sample_every=3)
        for _ in range(9):
            profiler.record_stage("forward", 0.001)
        assert profiler.samples_recorded == 3
        assert profiler.samples_skipped == 6

    def test_flame_paths_fold_into_flamegraph_lines(self):
        profiler = ContinuousProfiler()
        profiler.record_stage("forward", 0.020, path="request;forward;executor")
        profiler.record_stage("queue.wait", 0.001)
        folded = profiler.flame_folded()
        lines = dict(
            (line.rsplit(" ", 2)[0], line) for line in folded.splitlines()
        )
        assert "request;forward;executor" in lines
        assert "request;queue.wait" in lines
        # Sorted by total seconds, descending.
        assert folded.splitlines()[0].startswith("request;forward;executor")

    def test_interval_snapshots_roll_on_the_record_path(self):
        clock = FakeClock()
        profiler = ContinuousProfiler(
            snapshot_interval_s=10.0, max_snapshots=3, clock=clock
        )
        for round_n in range(5):
            profiler.record_stage("forward", 0.010)
            clock.advance(10.0)
            profiler.record_stage("serialize", 0.001)  # triggers the roll
        intervals = profiler.profile()["intervals"]
        assert len(intervals) == 3  # ring-bounded
        assert all(i["end"] - i["start"] >= 10.0 for i in intervals)
        assert intervals[-1]["stages"]["forward"]["count"] == 1.0
        # Cumulative stats are unaffected by interval rolls.
        assert profiler.profile()["stages"]["forward"]["count"] == 5.0

    def test_render_and_registry_contribution(self):
        profiler = ContinuousProfiler()
        profiler.record_stage("forward", 0.020, trace_id="t-1")
        text = profiler.render()
        assert "forward" in text and "t-1" in text
        registry = TelemetryRegistry()
        profiler.register_into(registry)
        exposition = registry.prometheus()
        assert 'repro_profiler_stage_count{stage="forward"}' in exposition
        assert "repro_profiler_samples_total 1" in exposition

    def test_negative_durations_clamp_to_zero(self):
        profiler = ContinuousProfiler()
        profiler.record_stage("forward", -0.5)
        assert profiler.profile()["stages"]["forward"]["sum"] == 0.0


# ---------------------------------------------------------------------- #
# end to end: a real service journals its lifecycle and profiles itself
# ---------------------------------------------------------------------- #


class TestServiceIntegration:
    def test_lifecycle_events_and_stage_profile_end_to_end(
        self, corpus, result_a, tmp_path
    ):
        records, _ = corpus
        journal = OpsJournal(tmp_path / "ops.jsonl")
        profiler = ContinuousProfiler()
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=0),
            tracer=Tracer(sample_rate=1.0),
            profiler=profiler,
            journal=journal,
        ).start()
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            record = records[0]
            tiles = enumerate_tile_sizes(record.kernel)[:4]
            client.score_tiles_batched(record.kernel, tiles)

            # Every pipeline stage got wall-time attributed, and the
            # exemplar links into the tracer's retained ring.
            stages = profiler.profile()["stages"]
            for stage in ("queue.wait", "batch.cut", "compose", "forward", "serialize"):
                assert stages[stage]["count"] >= 1.0, stage
            exemplar = stages["forward"]["exemplar"]
            assert exemplar is not None
            assert service.tracer.trace(exemplar) is not None

            # A hot swap lands in the journal: publish (inline-activated)
            # then an explicit activate back to the original version.
            v1 = service.registry.active_version
            v2 = service.registry.publish(result_a, version="v2")
            service.registry.activate(v1)
            publish = next(
                e for e in journal.replay() if e["kind"] == "registry.publish"
            )
            assert publish["version"] == v2 and publish["activated"] is True
            activate = next(
                e for e in journal.replay() if e["kind"] == "registry.activate"
            )
            assert activate["version"] == v1 and activate["previous"] == v2

            # A spill is journaled too, and the journal snapshot rides
            # the service registry.
            service.registry.spill(tmp_path / "spill")
            assert journal.timeline(("registry.spill",))
            assert service.telemetry.collect()["journal_events"] >= 3.0
        finally:
            service.stop()
            journal.close()

    def test_degradation_and_alerts_share_the_journal(
        self, corpus, result_a, tmp_path
    ):
        """The wiring contract: ``attach_alerts`` points the engine at
        the service's registry snapshot and its journal, so alert
        transitions and service lifecycle events interleave in one
        durable timeline."""
        journal = OpsJournal(tmp_path / "ops.jsonl")
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=0),
            journal=journal,
        ).start()
        try:
            engine = AlertEngine(
                rules=[
                    ThresholdRule(
                        name="service_up", metric="requests", threshold=-1.0, op=">"
                    )
                ]
            )
            service.attach_alerts(engine)
            assert service.alerts is engine
            engine.evaluate()  # pulls the service snapshot via the source
            assert engine.state("service_up") == "firing"
            events = journal.timeline(("alert.",))
            assert events and events[0]["name"] == "service_up"
            # The engine's accounting landed in the service registry.
            assert service.telemetry.collect()["alerts_firing"] == 1.0
        finally:
            service.stop()
            journal.close()


# ---------------------------------------------------------------------- #
# synthetic prober: known-answer verification over live routes
# ---------------------------------------------------------------------- #


def _golden_probes(records, count=3, tiles=3):
    return [
        GoldenProbe(r.kernel, tuple(enumerate_tile_sizes(r.kernel)[:tiles]))
        for r in records[:count]
    ]


def _corrupt_live_model(service):
    """Silently perturb the *serving side*'s in-memory weights — the
    registry blob (the prober's reference source) stays pristine, so a
    probe's known answer diverges from what the route now serves."""
    version = service.registry.active_version
    model = service.registry.get(version).model
    param = model.parameters()[0].data
    original = param.flat[0]
    param.flat[0] = original + 100.0
    return version, param, original


class TestSyntheticProber:
    def test_known_answers_pass_bitwise_and_probes_stay_out_of_business_stats(
        self, corpus, result_a
    ):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=64)
        ).start()
        try:
            prober = SyntheticProber(_golden_probes(records))
            service.attach_prober(prober)
            summary = prober.sweep()
            assert summary["failures"] == 0
            assert summary["probes"] == 3
            # Equal batch shape => bitwise-identical to the direct
            # evaluator over the version's own sealed blob.
            assert all(v["exact"] is True for v in prober.recent(10))
            # Probes never leak into business accounting: QPS, the
            # result cache, and the SLO latency window all stay empty.
            assert service.stats.requests == 0
            assert service.stats.cache_hits == 0
            assert service.stats.slo_window(0.1)["window"] == 0.0
            # ... but they live in their own telemetry family.
            snap = service.telemetry.collect()
            assert snap["prober_probes"] == 3.0
            assert snap["prober_failures"] == 0.0
            assert snap["prober_routes_failing"] == 0.0
            # A business request afterwards is counted normally and is
            # not tagged synthetic.
            client = ServiceEvaluator(service, timeout_s=120.0)
            record = records[0]
            client.score_tiles_batched(
                record.kernel, enumerate_tile_sizes(record.kernel)[:3]
            )
            assert service.stats.requests == 1
        finally:
            service.stop()

    def test_probe_responses_are_tagged_synthetic(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=64)
        ).start()
        try:
            record = records[0]
            tiles = tuple(enumerate_tile_sizes(record.kernel)[:3])
            future = service.submit(
                TileScoresRequest(kernel=record.kernel, tiles=tiles, synthetic=True)
            )
            response = future.result(timeout=120.0)
            assert response.synthetic is True
            future = service.submit(
                TileScoresRequest(kernel=record.kernel, tiles=tiles)
            )
            response = future.result(timeout=120.0)
            assert response.synthetic is False
        finally:
            service.stop()

    def test_wire_tag_is_optional_and_backwards_compatible(self, corpus):
        records, _ = corpus
        record = records[0]
        tiles = tuple(enumerate_tile_sizes(record.kernel)[:2])
        plain = TileScoresRequest(kernel=record.kernel, tiles=tiles)
        tagged = TileScoresRequest(kernel=record.kernel, tiles=tiles, synthetic=True)
        # Business traffic adds zero bytes for the new field.
        assert b"synthetic" not in plain.to_bytes()
        assert b"synthetic" in tagged.to_bytes()
        assert decode_request(tagged.to_bytes()).synthetic is True
        assert decode_request(plain.to_bytes()).synthetic is False
        # Same contract on the response side.
        ok = Response(value=np.array([1.0, 2.0]), model_version="v1")
        assert b"synthetic" not in ok.to_bytes()
        probe = Response(
            value=np.array([1.0, 2.0]), model_version="v1", synthetic=True
        )
        assert Response.from_bytes(probe.to_bytes()).synthetic is True

    def test_schedule_is_deterministic_under_injected_clock(self, corpus, result_a):
        records, _ = corpus
        clock = FakeClock(100.0)
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=0)
        ).start()
        try:
            prober = SyntheticProber(
                _golden_probes(records, count=1), interval_s=10.0, clock=clock
            )
            service.attach_prober(prober)
            assert prober.due()
            assert prober.maybe_sweep() is not None
            assert prober.maybe_sweep() is None  # not due again yet
            clock.advance(9.9)
            assert not prober.due()
            clock.advance(0.2)
            assert prober.maybe_sweep() is not None
        finally:
            service.stop()

    def test_silent_corruption_is_caught_journaled_and_clears_on_recovery(
        self, corpus, result_a, tmp_path
    ):
        records, _ = corpus
        journal = OpsJournal(tmp_path / "ops.jsonl")
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=2, result_cache_entries=0),
            journal=journal,
        ).start()
        try:
            prober = SyntheticProber(_golden_probes(records))
            service.attach_prober(prober)
            assert prober.sweep()["failures"] == 0

            _, param, original = _corrupt_live_model(service)
            summary = prober.sweep()
            assert summary["failures"] > 0
            failing = prober.failing_routes()
            assert failing
            for route, stats in failing.items():
                assert stats["first_failure_seq"] is not None
            # Every failure landed in the journal with the verdict.
            events = journal.timeline(("probe.failure",))
            assert events
            assert all(e["reason"] == "known_answer_mismatch" for e in events)
            seqs = {e["seq"] for e in events}
            assert {
                s["first_failure_seq"] for s in failing.values()
            } <= seqs
            assert service.telemetry.collect()["prober_routes_failing"] > 0.0

            # Recovery: a healthy probe clears the route's breach marker.
            param.flat[0] = original
            assert prober.sweep()["failures"] == 0
            assert prober.failing_routes() == {}
        finally:
            service.stop()
            journal.close()

    def test_transport_failure_is_a_route_failure(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=0)
        ).start()
        try:
            prober = SyntheticProber(_golden_probes(records, count=1))
            service.attach_prober(prober)

            def broken(request):
                raise ConnectionResetError("frontend down")

            prober._frontends["socket"] = broken
            summary = prober.sweep()
            assert summary["failures"] == 1  # inprocess passed, socket failed
            (route, stats), = prober.failing_routes().items()
            assert route.startswith("socket:")
            verdict = next(
                v for v in prober.recent(10) if v["frontend"] == "socket"
            )
            assert verdict["reason"] == "transport:ConnectionResetError"

            # Recovery: a no-answer failure has no served version, so it
            # lands on the cell's "?" route — a later healthy answer from
            # the same (frontend, shard) cell must supersede it, or the
            # route would read as failing forever.
            prober._frontends["socket"] = prober._frontends["inprocess"]
            assert prober.sweep()["failures"] == 0
            assert prober.failing_routes() == {}
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# incident reporter: alert firing -> ranked root-cause report
# ---------------------------------------------------------------------- #


class TestIncidentReporter:
    def test_firing_alert_opens_report_naming_shard_and_journal_seq(
        self, corpus, result_a, tmp_path
    ):
        records, _ = corpus
        journal = OpsJournal(tmp_path / "ops.jsonl")
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=2, result_cache_entries=0),
            journal=journal,
        ).start()
        try:
            prober = SyntheticProber(_golden_probes(records))
            service.attach_prober(prober)
            reporter = IncidentReporter()
            service.attach_incidents(reporter)
            engine = AlertEngine(
                rules=[
                    ThresholdRule(
                        name="probe_routes_failing",
                        metric="prober_routes_failing",
                        threshold=0.0,
                        op=">",
                        severity="critical",
                    )
                ]
            )
            service.attach_alerts(engine)

            assert prober.sweep()["failures"] == 0
            assert engine.evaluate() == []  # healthy: no transition
            assert reporter.reports() == []

            _corrupt_live_model(service)
            prober.sweep()
            moves = engine.evaluate()
            assert [(m["name"], m["to"]) for m in moves] == [
                ("probe_routes_failing", "firing")
            ]

            reports = reporter.reports()
            assert len(reports) == 1
            summary = reports[0]
            assert summary["rule"] == "probe_routes_failing"
            assert summary["severity"] == "critical"
            full = reporter.report(summary["id"])
            top = full["causes"][0]
            # The top-ranked cause is the verified probe failure, naming
            # the route's shard and the journal seq of the first breach.
            assert top["kind"] == "probe_failure"
            assert "began at journal seq" in top["cause"]
            failing = prober.failing_routes()
            assert top["evidence"]["route"] in failing
            assert (
                top["evidence"]["first_failure_seq"]
                == failing[top["evidence"]["route"]]["first_failure_seq"]
            )
            # The report carries the breached rule's recent series and
            # the journal window around the breach.
            assert full["series"], "rule series missing"
            kinds = {e["kind"] for e in full["journal_window"]}
            assert "probe.failure" in kinds
            # Journaled under the new event kinds, summary + full payload.
            assert journal.timeline(("incident.open",))
            assert journal.timeline(("incident.report",))
            assert service.telemetry.collect()["incidents_opened"] == 1.0
        finally:
            service.stop()
            journal.close()

    def test_only_firing_transitions_open_reports(self):
        clock = FakeClock(0.0)
        reporter = IncidentReporter(clock=clock)
        engine = AlertEngine(
            rules=[
                ThresholdRule(
                    name="slow", metric="x", threshold=0.0, op=">", for_s=10.0
                )
            ],
            clock=clock,
        )
        reporter.observe(engine)
        assert engine.evaluate({"x": 1.0}) != []  # inactive -> pending
        assert reporter.reports() == []
        clock.advance(11.0)
        assert engine.evaluate({"x": 1.0}) != []  # pending -> firing
        assert len(reporter.reports()) == 1

    def test_report_ring_is_bounded(self):
        reporter = IncidentReporter(max_reports=2)
        for i in range(3):
            reporter.open_incident(
                {"name": f"r{i}", "to": "firing", "severity": "warning"}
            )
        reports = reporter.reports()
        assert len(reports) == 2
        assert [r["rule"] for r in reports] == ["r2", "r1"]
        assert reporter.report("inc-1") is None  # evicted
        assert reporter.report("inc-3") is not None


# ---------------------------------------------------------------------- #
# ops journal under concurrent writers
# ---------------------------------------------------------------------- #


class TestJournalConcurrentWriters:
    def test_interleaved_append_rotate_replay(self, tmp_path):
        """Four writers race appends across rotations while a reader
        replays mid-stream; afterwards the journal must hold every event
        exactly once, in strictly monotone seq order, with no torn
        interleavings on disk."""
        writers, per_writer = 4, 50
        journal = OpsJournal(
            tmp_path / "ops.jsonl", max_bytes=1024, max_files=60
        )
        try:
            start = threading.Barrier(writers + 1)
            stop_reading = threading.Event()

            def write(idx: int) -> None:
                start.wait()
                for n in range(per_writer):
                    journal.record("stress.write", writer=idx, n=n)

            def read() -> None:
                start.wait()
                while not stop_reading.is_set():
                    journal.recent(10)
                    for _ in journal.replay():
                        pass

            threads = [
                threading.Thread(target=write, args=(i,)) for i in range(writers)
            ]
            reader = threading.Thread(target=read)
            for t in threads:
                t.start()
            reader.start()
            for t in threads:
                t.join()
            stop_reading.set()
            reader.join()

            events = list(journal.replay())
            assert len(events) == writers * per_writer
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)  # strictly monotone, no dupes
            pairs = {(e["writer"], e["n"]) for e in events}
            assert pairs == {
                (w, n) for w in range(writers) for n in range(per_writer)
            }
            # Replay crossed at least one rotation boundary.
            assert journal.snapshot()["journal_rotations"] >= 1.0
        finally:
            journal.close()


# ---------------------------------------------------------------------- #
# gateway error paths + health verdict
# ---------------------------------------------------------------------- #


def _get_json(address, path):
    host, port = address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=10
        ) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestGatewayErrorPathsAndHealth:
    def test_bounds_checked_n_and_component_absent_paths(
        self, corpus, result_a, tmp_path
    ):
        journal = OpsJournal(tmp_path / "ops.jsonl")
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=0),
            tracer=Tracer(sample_rate=1.0),
            journal=journal,
        ).start()
        try:
            with MetricsGateway(service) as gateway:
                address = gateway.address
                # Malformed and out-of-range ?n= answer typed 400s.
                for path in (
                    "/traces/recent?n=abc",
                    "/traces/recent?n=0",
                    "/traces/recent?n=2000",
                    "/events/recent?n=-3",
                    "/events/recent?n=1.5",
                ):
                    status, payload = _get_json(address, path)
                    assert status == 400, path
                    assert "n must be" in payload["error"], path
                status, payload = _get_json(address, "/traces/recent?n=5")
                assert status == 200
                status, payload = _get_json(address, "/events/recent?n=1000")
                assert status == 200
                # Detached components answer 503, unknown ids 404.
                status, payload = _get_json(address, "/probes")
                assert status == 503 and "not enabled" in payload["error"]
                status, payload = _get_json(address, "/incidents")
                assert status == 503
                service.attach_incidents(IncidentReporter())
                status, payload = _get_json(address, "/incidents")
                assert status == 200 and payload["incidents"] == []
                status, payload = _get_json(address, "/incidents/inc-404")
                assert status == 404
                status, payload = _get_json(address, "/nope")
                assert status == 404
        finally:
            service.stop()
            journal.close()

    def test_healthz_verdict_ok_degraded_failing(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=0)
        ).start()
        try:
            with MetricsGateway(service) as gateway:
                address = gateway.address
                status, health = _get_json(address, "/healthz")
                assert status == 200 and health["status"] == "ok"
                # Back-compat: the shallow fields are still there.
                assert health["running"] is True
                assert health["active_version"] == "v1"

                # A firing alert degrades (200, load balancer keeps it).
                engine = AlertEngine(
                    rules=[
                        ThresholdRule(
                            name="always", metric="requests", threshold=-1.0
                        )
                    ]
                )
                service.attach_alerts(engine)
                engine.evaluate()
                status, health = _get_json(address, "/healthz")
                assert status == 200 and health["status"] == "degraded"
                assert health["alerts_firing"] == 1

                # A failing probe route is verified breakage: 503.
                prober = SyntheticProber(_golden_probes(records))
                service.attach_prober(prober)
                prober.sweep()
                status, health = _get_json(address, "/healthz")
                assert health["probe_failing_routes"] == []
                _corrupt_live_model(service)
                prober.sweep()
                status, health = _get_json(address, "/healthz")
                assert status == 503 and health["status"] == "failing"
                assert health["probe_failing_routes"]
                # /probes now serves the board with the failing routes.
                status, board = _get_json(address, "/probes")
                assert status == 200
                assert board["failing_routes"] == health["probe_failing_routes"]
        finally:
            service.stop()
