"""Tests for search strategies, evaluators, and the tile/fusion autotuners."""
import numpy as np
import pytest

from repro.autotuner import (
    AnalyticalEvaluator,
    HardwareEvaluator,
    LearnedEvaluator,
    exhaustive_tile_autotune,
    genetic_search,
    hardware_fusion_autotune,
    model_fusion_autotune,
    model_tile_autotune,
    random_search,
    simulated_annealing,
)
from repro.compiler import default_tile, enumerate_tile_sizes, fuse_program
from repro.data import build_fusion_dataset
from repro.models import ModelConfig, TrainConfig, train_fusion_model
from repro.tpu import TpuSimulator
from repro.workloads import sequence, vision


@pytest.fixture(scope="module")
def kernels():
    p = vision.image_embed(0)
    ks = [k for k in fuse_program(p.graph, program_name=p.name) if k.has_tile_options()]
    return ks[:6]


@pytest.fixture(scope="module")
def trained_fusion():
    ds = build_fusion_dataset([sequence.char2feats(0), sequence.char2feats(1)], configs_per_program=3, seed=0)
    cfg = ModelConfig(
        task="fusion", reduction="column-wise", loss="mse",
        hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2,
    )
    return train_fusion_model(ds.records, cfg, TrainConfig(steps=60, batch_size=8, log_every=30))


class TestSearchStrategies:
    def cost(self, x):
        return (x - 3.0) ** 2

    def test_random_search_finds_low_cost(self):
        rng = np.random.default_rng(0)
        res = random_search(lambda r: float(r.uniform(-10, 10)), self.cost, 200, rng)
        assert res.best_cost < 0.5
        assert len(res.visited) == 200

    def test_simulated_annealing_improves(self):
        rng = np.random.default_rng(0)
        res = simulated_annealing(
            10.0, self.cost, lambda x, r: x + float(r.normal(0, 0.5)), 300, rng
        )
        assert res.best_cost < self.cost(10.0)
        assert res.best_cost <= min(c for _, c in res.visited) + 1e-12

    def test_simulated_annealing_zero_steps(self):
        rng = np.random.default_rng(0)
        res = simulated_annealing(5.0, self.cost, lambda x, r: x, 0, rng)
        assert res.best_state == 5.0

    def test_genetic_search(self):
        rng = np.random.default_rng(0)
        res = genetic_search(
            sample=lambda r: float(r.uniform(-10, 10)),
            cost_fn=self.cost,
            crossover=lambda a, b, r: (a + b) / 2,
            mutate=lambda x, r: x + float(r.normal(0, 0.2)),
            rng=rng,
            population=12,
            generations=8,
        )
        assert res.best_cost < 1.0


class TestEvaluators:
    def test_hardware_metering(self, kernels):
        hw = HardwareEvaluator(TpuSimulator())
        hw.kernel_runtime(kernels[0])
        hw.kernel_runtime(kernels[1])
        assert hw.evaluations == 2
        hw.program_runtime(kernels[:3])
        assert hw.evaluations == 5

    def test_hardware_matches_simulator(self, kernels):
        sim = TpuSimulator()
        hw = HardwareEvaluator(sim)
        k = kernels[0]
        t = default_tile(k)
        assert hw.kernel_runtime(k, t) == sim.run(k, t)

    def test_analytical_scores_align_with_estimates(self, kernels):
        ev = AnalyticalEvaluator()
        k = kernels[0]
        tiles = enumerate_tile_sizes(k)[:5]
        scores = ev.tile_scores(k, tiles)
        assert scores.shape == (len(tiles),)
        assert (scores > 0).all()

    def test_learned_evaluator_cache(self, trained_fusion, kernels):
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        v1 = ev.kernel_runtime(kernels[0])
        v2 = ev.kernel_runtime(kernels[0])
        assert v1 == v2
        assert kernels[0].fingerprint() in ev._memo

    def test_learned_program_runtime_sums_kernels(self, trained_fusion, kernels):
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        total = ev.program_runtime(kernels[:3])
        parts = sum(ev.kernel_runtime(k) for k in kernels[:3])
        assert total == pytest.approx(parts, rel=1e-5)


class TestTileAutotuner:
    def test_exhaustive_at_least_as_good_as_topk(self, kernels):
        ex = exhaustive_tile_autotune(kernels, HardwareEvaluator(TpuSimulator()))
        top = model_tile_autotune(
            kernels, AnalyticalEvaluator(), HardwareEvaluator(TpuSimulator()), top_k=5
        )
        assert ex.program_runtime <= top.program_runtime + 1e-12

    def test_topk_at_least_as_good_as_top1(self, kernels):
        top10 = model_tile_autotune(
            kernels, AnalyticalEvaluator(), HardwareEvaluator(TpuSimulator()), top_k=10
        )
        top1 = model_tile_autotune(
            kernels, AnalyticalEvaluator(), HardwareEvaluator(TpuSimulator()), top_k=1
        )
        assert top10.program_runtime <= top1.program_runtime + 1e-12

    def test_top1_spends_no_hardware(self, kernels):
        res = model_tile_autotune(
            kernels, AnalyticalEvaluator(), HardwareEvaluator(TpuSimulator()), top_k=1
        )
        assert res.hardware_evaluations == 0

    def test_exhaustive_budget_equals_candidate_count(self, kernels):
        hw = HardwareEvaluator(TpuSimulator())
        res = exhaustive_tile_autotune(kernels, hw)
        expected = sum(len(enumerate_tile_sizes(k)) for k in kernels)
        assert res.hardware_evaluations == expected

    def test_speedup_definition(self, kernels):
        res = exhaustive_tile_autotune(kernels, HardwareEvaluator(TpuSimulator()))
        assert res.speedup == pytest.approx(res.default_runtime / res.program_runtime)
        assert res.speedup >= 1.0  # exhaustive includes the default tile


class TestFusionAutotuner:
    def test_hardware_autotuner_improves_or_matches_default(self):
        p = sequence.char2feats(0)
        res = hardware_fusion_autotune(p, HardwareEvaluator(TpuSimulator()), budget=20, seed=0)
        # SA starts at the default config, so the result can't be worse.
        assert res.runtime <= res.default_runtime * 1.001
        assert res.hardware_program_evaluations == 20

    def test_model_autotuner_budget_accounting(self, trained_fusion):
        p = sequence.char2feats(0)
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        res = model_fusion_autotune(
            p, ev, HardwareEvaluator(TpuSimulator()),
            model_budget=30, hardware_budget=3, seed=0,
        )
        assert res.model_evaluations == 30
        assert res.hardware_program_evaluations <= 3
        assert res.runtime > 0

    def test_speedup_property(self):
        p = sequence.char2feats(1)
        res = hardware_fusion_autotune(p, HardwareEvaluator(TpuSimulator()), budget=10, seed=1)
        assert res.speedup == pytest.approx(res.default_runtime / res.runtime)

    def test_model_autotuner_parallel_chains(self, trained_fusion):
        p = sequence.char2feats(0)
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        res = model_fusion_autotune(
            p, ev, HardwareEvaluator(TpuSimulator()),
            model_budget=32, hardware_budget=3, seed=0, chains=4,
        )
        # 4 chains x (32//4 - 1) steps + 4 initial scores = 32 model evals.
        assert res.model_evaluations == 32
        assert res.hardware_program_evaluations <= 3
        assert res.runtime > 0

    def test_parallel_chains_never_overspend_budget(self, trained_fusion):
        p = sequence.char2feats(0)
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        res = model_fusion_autotune(
            p, ev, HardwareEvaluator(TpuSimulator()),
            model_budget=3, hardware_budget=2, seed=0, chains=8,
        )
        # chains are clamped to the budget: exactly 3 evals, not 8.
        assert res.model_evaluations == 3

    def test_model_autotuner_alternate_strategies(self, trained_fusion):
        p = sequence.char2feats(0)
        hw = HardwareEvaluator(TpuSimulator())
        for strategy in ("random", "genetic"):
            ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
            res = model_fusion_autotune(
                p, ev, hw, model_budget=20, hardware_budget=2, seed=0,
                strategy=strategy,
            )
            assert res.model_evaluations <= 20, strategy
            assert res.runtime > 0
            # Strategies seeded away from the default fall back to it
            # rather than returning a verified regression.
            assert res.runtime <= res.default_runtime * 1.001, strategy

    def test_genetic_tiny_budget_never_overspends(self, trained_fusion):
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        res = model_fusion_autotune(
            sequence.char2feats(0), ev, HardwareEvaluator(TpuSimulator()),
            model_budget=1, hardware_budget=1, seed=0, strategy="genetic",
        )
        assert res.model_evaluations == 1  # degrades to random sampling

    def test_model_autotuner_rejects_unknown_strategy(self, trained_fusion):
        ev = LearnedEvaluator(trained_fusion.model, trained_fusion.scalers)
        with pytest.raises(ValueError):
            model_fusion_autotune(
                sequence.char2feats(0), ev, HardwareEvaluator(TpuSimulator()),
                model_budget=5, strategy="hillclimb",
            )
