"""Tests for the adaptive placement subsystem.

The load-bearing invariants:

* the uniform :class:`ShardMap` routes identically to the legacy static
  ``fingerprint % n`` function (adopting the table is a pure refactor);
* the :class:`PlacementController` only migrates on *sustained* skew
  (hysteresis), respects the rebalance cooldown, and its greedy plans
  actually reduce the imbalance they were triggered by;
* a live migration on the process executor drops no response, never
  mixes versions inside a batch, and leaves responses bitwise-identical
  to an unmigrated service at equal batch shape;
* the in-thread executor's replica autoscaling resizes every live pool
  without changing numerics;
* per-shard stats are relabelled/reset coherently across a migration.
"""
import threading

import numpy as np
import pytest

from repro.compiler import enumerate_tile_sizes
from repro.data import Scalers, build_tile_dataset
from repro.evaluation import ServingStats
from repro.models import LearnedPerformanceModel, ModelConfig, save_model_bytes
from repro.models.trainer import TrainResult
from repro.serving import (
    BucketMove,
    CanaryFraction,
    CostModelService,
    ModelRegistry,
    PlacementConfig,
    PlacementController,
    RebalancePlan,
    ServiceConfig,
    ServiceEvaluator,
    ShardMap,
    TileScoresRequest,
    shard_of,
)
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=6,
        max_tiles_per_kernel=6, seed=0,
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


def _result(corpus, seed=0):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=seed)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


@pytest.fixture(scope="module")
def result_a(corpus):
    return _result(corpus, seed=0)


@pytest.fixture(scope="module")
def result_b(corpus):
    return _result(corpus, seed=1)


def _request_stream(records, n, tiles_per_request=4):
    pool = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= tiles_per_request:
            pool.append((record.kernel, tiles))
    stream = []
    for i in range(n):
        kernel, tiles = pool[i % len(pool)]
        start = (i * tiles_per_request) % (len(tiles) - tiles_per_request + 1)
        stream.append(
            TileScoresRequest(
                kernel=kernel, tiles=tuple(tiles[start:start + tiles_per_request])
            )
        )
    return stream


def _grow_plan(shard_map: ShardMap, num_shards: int) -> RebalancePlan:
    """Spread buckets round-robin over a larger shard count."""
    table = list(shard_map.table)
    moves = []
    for bucket in range(len(table)):
        dest = bucket % num_shards
        if dest != table[bucket]:
            moves.append(
                BucketMove(bucket=bucket, source=table[bucket], dest=dest)
            )
            table[bucket] = dest
    return RebalancePlan(
        new_map=shard_map.successor(table, num_shards=num_shards),
        moves=tuple(moves),
        reason="test grow",
    )


def _shrink_plan(shard_map: ShardMap, num_shards: int) -> RebalancePlan:
    """Fold retired shards' buckets onto survivors; relabel onto heirs."""
    table = list(shard_map.table)
    moves = []
    relabel = {}
    for bucket, shard in enumerate(table):
        if shard >= num_shards:
            dest = bucket % num_shards
            moves.append(BucketMove(bucket=bucket, source=shard, dest=dest))
            relabel.setdefault(shard, dest)
            table[bucket] = dest
    return RebalancePlan(
        new_map=shard_map.successor(table, num_shards=num_shards),
        moves=tuple(moves),
        reason="test shrink",
        relabel=relabel,
    )


# ---------------------------------------------------------------------- #
# ShardMap
# ---------------------------------------------------------------------- #


class TestShardMap:
    def test_uniform_routes_like_legacy_static_function(self):
        keys = [f"{(i * 2654435761) % 2**32:08x}" for i in range(500)]
        for shards in (1, 2, 4, 8):
            shard_map = ShardMap.uniform(shards, 64)
            for key in keys:
                assert shard_map.shard_for(key) == shard_of(key, shards)

    def test_empty_key_routes_to_shard_zero(self):
        assert ShardMap.uniform(4).shard_for("") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(())
        with pytest.raises(ValueError):
            ShardMap((0, -1))
        with pytest.raises(ValueError):
            ShardMap((0, 3), num_shards=2)  # table references shard 3
        with pytest.raises(ValueError):
            ShardMap.uniform(0)
        with pytest.raises(ValueError):
            ShardMap.uniform(8, buckets=4)

    def test_num_shards_may_exceed_referenced(self):
        shard_map = ShardMap((0, 0, 1, 1), num_shards=3)
        assert shard_map.num_shards == 3
        assert shard_map.buckets_of_shard(2) == ()

    def test_successor_bumps_version_and_keeps_buckets(self):
        shard_map = ShardMap.uniform(2, 16)
        new = shard_map.successor([0] * 16)
        assert new.version == shard_map.version + 1
        assert new.num_buckets == 16
        with pytest.raises(ValueError):
            shard_map.successor([0] * 8)

    def test_load_counters_attribute_to_buckets(self):
        shard_map = ShardMap.uniform(2, 8)
        for _ in range(5):
            shard_map.shard_for(f"{3:08x}")  # bucket 3
        loads = shard_map.snapshot_loads(reset=True)
        assert loads[3] == 5 and sum(loads) == 5
        assert sum(shard_map.snapshot_loads()) == 0

    def test_describe_is_json_friendly(self):
        description = ShardMap.uniform(3, 12).describe()
        assert description["num_shards"] == 3.0
        assert description["buckets_per_shard"] == {"0": 4.0, "1": 4.0, "2": 4.0}


# ---------------------------------------------------------------------- #
# PlacementController decision logic (fake service)
# ---------------------------------------------------------------------- #


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _FakeService:
    """Just enough service surface for the controller: stats, map,
    scheduler pressure, and a rebalance() that records plans."""

    def __init__(self, num_shards=4, buckets=16):
        self.shard_map = ShardMap.uniform(num_shards, buckets)
        self.stats = ServingStats()
        self.pressure = 0.0
        self.applied = []
        outer = self

        class _Scheduler:
            def queue_pressure(self):
                return outer.pressure

        self.scheduler = _Scheduler()

    def rebalance(self, plan):
        self.applied.append(plan)
        self.shard_map = plan.new_map
        if plan.relabel:
            self.stats.relabel_shards(plan.relabel)
        self.stats.reset_shards(plan.affected_shards)
        self.stats.record_placement_change(len(plan.moves))
        return plan.describe()

    def drive(self, shard_requests: dict):
        """One stats interval: ``n`` requests per shard, spread over the
        shard's buckets (both the stats counters and the map's bucket
        loads see them, like real routed traffic)."""
        for shard, n in shard_requests.items():
            buckets = self.shard_map.buckets_of_shard(shard) or (0,)
            for i in range(n):
                self.stats.record_response(0.001, cache_hit=False, shard=shard)
                self.shard_map.shard_for(f"{buckets[i % len(buckets)]:08x}")


def _controller(service, clock=None, **overrides):
    defaults = dict(
        skew_threshold=1.5,
        hysteresis=2,
        cooldown_s=0.0,
        ewma_alpha=1.0,
        min_interval_requests=4,
    )
    defaults.update(overrides)
    return PlacementController(
        service,
        PlacementConfig(**defaults),
        clock=clock or _FakeClock(),
    )


class TestPlacementController:
    def test_hysteresis_requires_sustained_skew(self):
        service = _FakeService()
        controller = _controller(service, hysteresis=3)
        for i in range(2):
            service.drive({0: 40, 1: 2, 2: 2, 3: 2})
            assert controller.observe() is None, f"interval {i} planned early"
        service.drive({0: 40, 1: 2, 2: 2, 3: 2})
        plan = controller.observe()
        assert plan is not None
        assert all(move.source == 0 for move in plan.moves)

    def test_balanced_load_never_plans(self):
        service = _FakeService()
        controller = _controller(service)
        for _ in range(6):
            service.drive({0: 10, 1: 10, 2: 10, 3: 11})
            assert controller.observe() is None

    def test_quiet_intervals_are_no_evidence(self):
        service = _FakeService()
        controller = _controller(service, min_interval_requests=16)
        for _ in range(5):
            service.drive({0: 3})  # skewed but below the evidence floor
            assert controller.observe() is None

    def test_plan_reduces_imbalance_and_step_applies_it(self):
        service = _FakeService()
        controller = _controller(service)
        summary = None
        for _ in range(2):
            service.drive({0: 48, 1: 4, 2: 4, 3: 4})
            summary = controller.step() or summary
        assert summary is not None and service.applied
        plan = service.applied[0]
        assert plan.new_map.version == 2
        assert service.shard_map is plan.new_map
        # Shard 0 gave buckets away; per the interval's per-bucket loads
        # the new assignment is strictly better balanced.
        buckets_kept = plan.new_map.buckets_of_shard(0)
        assert len(buckets_kept) < 4  # uniform 16/4 = 4 before
        assert controller.rebalances == 1
        assert service.stats.snapshot()["placement_changes"] == 1.0

    def test_cooldown_blocks_back_to_back_rebalances(self):
        clock = _FakeClock()
        service = _FakeService()
        controller = _controller(service, clock=clock, cooldown_s=10.0)
        applied = None
        for _ in range(2):
            service.drive({0: 48, 1: 4, 2: 4, 3: 4})
            applied = controller.step() or applied
        assert applied is not None
        # Skew "persists" (fresh traffic still skewed onto shard 1 now):
        for _ in range(3):
            service.drive({1: 48, 0: 4, 2: 4, 3: 4})
            assert controller.observe() is None  # cooling down
        clock.now += 11.0
        service.drive({1: 48, 0: 4, 2: 4, 3: 4})
        assert controller.observe() is not None

    def test_autoscale_up_on_queue_pressure(self):
        service = _FakeService(num_shards=2)
        controller = _controller(
            service, autoscale=True, max_shards=4, scale_up_pressure=0.75
        )
        service.pressure = 1.5
        service.drive({0: 4, 1: 4})
        summary = controller.step()
        assert summary is not None
        assert service.shard_map.num_shards == 3
        assert service.shard_map.buckets_of_shard(2)  # new shard got buckets

    def test_autoscale_down_relabels_retired_shard(self):
        service = _FakeService(num_shards=3)
        controller = _controller(
            service, autoscale=True, min_shards=2, scale_down_pressure=0.05
        )
        service.pressure = 0.0
        service.drive({0: 8, 1: 8, 2: 8})
        summary = controller.step()
        assert summary is not None
        plan = service.applied[0]
        assert plan.new_map.num_shards == 2
        assert set(plan.relabel) == {2}
        assert plan.relabel[2] in (0, 1)
        assert all(shard < 2 for shard in plan.new_map.table)

    def test_autoscale_respects_bounds(self):
        service = _FakeService(num_shards=2)
        controller = _controller(
            service, autoscale=True, min_shards=2, max_shards=2
        )
        service.pressure = 5.0
        service.drive({0: 4, 1: 4})
        assert controller.observe() is None
        service.pressure = 0.0
        service.drive({0: 4, 1: 4})
        assert controller.observe() is None

    def test_describe_exposes_ewmas(self):
        service = _FakeService()
        controller = _controller(service)
        service.drive({0: 10, 1: 2, 2: 2, 3: 2})
        controller.observe()
        description = controller.describe()
        assert description["rebalances"] == 0.0
        assert description["shard_load_ewma"]["0"] == 10.0


# ---------------------------------------------------------------------- #
# live placement changes on real services
# ---------------------------------------------------------------------- #


def _score_stream(service, stream):
    """One request per batch (flush-pumped): equal batch shape across
    services whatever their placement."""
    client = ServiceEvaluator(service)
    return [
        np.asarray(client.score_tiles_batched(req.kernel, list(req.tiles)))
        for req in stream
    ]


class TestInThreadAutoscaling:
    def test_grow_and_shrink_keep_responses_bitwise(self, corpus, result_a):
        records, _ = corpus
        stream = _request_stream(records, 12)
        reference_service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=0)
        )
        reference = _score_stream(reference_service, stream)
        reference_service.stop()

        service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=0)
        )
        try:
            before = _score_stream(service, stream)
            grown = service.rebalance(_grow_plan(service.shard_map, 4))
            assert grown["num_shards"] == 4
            assert service.executor.num_shards == 4
            after_grow = _score_stream(service, stream)
            shrunk = service.rebalance(_shrink_plan(service.shard_map, 2))
            assert shrunk["num_shards"] == 2
            after_shrink = _score_stream(service, stream)
        finally:
            service.stop()
        for got in (before, after_grow, after_shrink):
            for expected, actual in zip(reference, got):
                assert np.array_equal(expected, actual)
                assert expected.dtype == actual.dtype

    def test_stale_plan_rejected(self, result_a):
        service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=0)
        )
        try:
            plan = _grow_plan(service.shard_map, 3)
            service.rebalance(plan)
            with pytest.raises(ValueError, match="stale"):
                service.rebalance(plan)
        finally:
            service.stop()

    def test_metrics_expose_placement(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=2, result_cache_entries=0)
        )
        try:
            _score_stream(service, _request_stream(records, 4))
            service.rebalance(_grow_plan(service.shard_map, 3))
            metrics = service.metrics()
            assert metrics["placement"]["version"] == 2.0
            assert metrics["placement"]["num_shards"] == 3.0
            assert metrics["placement_changes"] == 1.0
            assert metrics["placement_moves"] >= 1.0
            assert "queue_pressure" in metrics
        finally:
            service.stop()

    def test_shrink_relabels_stats_onto_heirs(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=3, result_cache_entries=0)
        )
        try:
            _score_stream(service, _request_stream(records, 18))
            before = service.stats.shard_snapshot()
            total_before = sum(e["requests"] for e in before.values())
            plan = _shrink_plan(service.shard_map, 2)
            service.rebalance(plan)
            after = service.stats.shard_snapshot()
            assert all(int(shard) < 2 for shard in after)
            # Relabelled history is conserved: the heir absorbed the
            # retired shard's counters, only reassigned survivors reset.
            heir = plan.relabel.get(2)
            if heir is not None and str(heir) in after:
                assert after[str(heir)]["requests"] >= before.get(
                    str(2), {"requests": 0.0}
                )["requests"]
            assert total_before > 0
        finally:
            service.stop()


class TestProcessMigration:
    def test_migration_under_traffic_drops_nothing(self, corpus, result_a):
        """Grow 2 -> 3 workers while 4 client threads stream requests:
        every future resolves, zero errors, every response version-pure
        on the active version."""
        records, _ = corpus
        registry = ModelRegistry()
        registry.publish(result_a, version="active")
        service = CostModelService(
            registry,
            ServiceConfig(
                executor="process", replicas=2, result_cache_entries=0,
                max_batch_size=8,
            ),
        ).start()
        try:
            streams = [_request_stream(records, 10) for _ in range(4)]
            futures: list = []
            futures_lock = threading.Lock()
            barrier = threading.Barrier(5)

            def client(index):
                barrier.wait()
                for request in streams[index]:
                    future = service.submit(request)
                    with futures_lock:
                        futures.append(future)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            barrier.wait()
            plan = _grow_plan(service.shard_map, 3)
            summary = service.rebalance(plan)
            for t in threads:
                t.join()
            responses = [f.result(timeout=120) for f in futures]
            assert len(responses) == 40
            assert all(r.error is None for r in responses)
            assert all(r.model_version == "active" for r in responses)
            assert summary["workers_spawned"] == 1
            assert summary["blobs_synced"] >= 1
            assert service.executor.num_shards == 3
            per_shard = service.metrics()["per_shard"]
            assert set(per_shard) <= {"0", "1", "2"}
        finally:
            service.stop()

    def test_migrated_service_bitwise_identical_to_unmigrated(
        self, corpus, result_a
    ):
        records, _ = corpus
        stream = _request_stream(records, 8)
        reference_service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=2, result_cache_entries=0
            ),
        )
        try:
            reference = _score_stream(reference_service, stream)
        finally:
            reference_service.stop()

        service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=2, result_cache_entries=0
            ),
        )
        try:
            _score_stream(service, stream[:2])  # warm the old placement
            service.rebalance(_grow_plan(service.shard_map, 3))
            migrated = _score_stream(service, stream)
        finally:
            service.stop()
        for expected, actual in zip(reference, migrated):
            assert np.array_equal(expected, actual)
            assert expected.dtype == actual.dtype

    def test_new_worker_synced_to_active_and_staged(self, corpus, result_a, result_b):
        """A migration mid-rollout ships *both* live versions to the new
        worker, so a canary batch lands on warm state — and never errors."""
        records, _ = corpus
        registry = ModelRegistry()
        registry.publish(result_a, version="active")
        registry.stage(save_model_bytes(result_b), version="staged")
        service = CostModelService(
            registry,
            ServiceConfig(
                executor="process", replicas=1, result_cache_entries=0
            ),
        )
        try:
            stream = _request_stream(records, 6)
            _score_stream(service, stream[:2])  # boot the old worker
            summary = service.rebalance(_grow_plan(service.shard_map, 2))
            assert summary["blobs_synced"] == 2  # active + staged
            detail = service.executor.shard_stats()[1]
            assert detail["alive"] and detail["version"] == "active"
            assert detail["live_versions"] == 2
            # Canary everything to staged: the new worker must serve it
            # from its warmed evaluator without a cold load failure.
            service.set_rollout(CanaryFraction("staged", 1.0))
            client = ServiceEvaluator(service)
            for request in stream:
                client.score_tiles_batched(request.kernel, list(request.tiles))
                assert client.model_version == "staged"
                assert client.served_by_canary
        finally:
            service.stop()

    def test_shrink_drains_retired_worker(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=2, result_cache_entries=0
            ),
        )
        try:
            _score_stream(service, _request_stream(records, 6))
            processes = [
                shard.process
                for shard in service.executor._shards
                if shard.process is not None
            ]
            summary = service.rebalance(_shrink_plan(service.shard_map, 1))
            assert summary["workers_retired"] == 1
            assert service.executor.num_shards == 1
            # Retired workers actually exited (drained, not leaked).
            for process in processes[1:]:
                process.join(timeout=10)
                assert not process.is_alive()
            # And the survivor still serves.
            scores = _score_stream(service, _request_stream(records, 4))
            assert all(np.isfinite(s).all() for s in scores)
        finally:
            service.stop()


class TestEndToEndControllerOnService:
    def test_controller_rebalances_skewed_live_traffic(self):
        """Skewed real traffic through a real service: the controller
        detects it and applies a plan that moves buckets off the hot
        shard, while responses keep flowing error-free.

        Needs a kernel pool whose hot set spans several *buckets* (a
        single hot bucket is correctly unsplittable), so this test
        builds its own two-program corpus.
        """
        ds = build_tile_dataset(
            [vision.image_embed(0), vision.alexnet(0)],
            max_kernels_per_program=6, max_tiles_per_kernel=6, seed=0,
        )
        records = ds.records
        scalers = Scalers.fit_tile(records)
        cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
        model = LearnedPerformanceModel(cfg, seed=0)
        model.eval()
        result = TrainResult(model=model, scalers=scalers, loss_history=[])
        service = CostModelService(
            result, ServiceConfig(replicas=4, result_cache_entries=0)
        )
        controller = PlacementController(
            service,
            PlacementConfig(
                skew_threshold=1.3,
                hysteresis=2,
                cooldown_s=0.0,
                ewma_alpha=1.0,
                min_interval_requests=4,
            ),
        )
        try:
            # Keep only requests that land on shard 0 under the uniform
            # map — a maximally skewed workload.
            stream = [
                req
                for req in _request_stream(records, 60)
                if service.shard_map.table[
                    service.shard_map.bucket_of(req.shard_key())
                ] == 0
            ]
            hot_bucket_count = len(
                {service.shard_map.bucket_of(req.shard_key()) for req in stream}
            )
            assert len(stream) >= 8 and hot_bucket_count >= 2, (
                "corpus yielded too few shard-0 kernels/buckets"
            )
            client = ServiceEvaluator(service)
            applied = None
            for round_index in range(4):
                for request in stream:
                    client.score_tiles_batched(
                        request.kernel, list(request.tiles)
                    )
                applied = controller.step() or applied
                if applied:
                    break
            assert applied is not None, "controller never rebalanced"
            assert service.shard_map.version >= 2
            moved = service.shard_map.describe()["buckets_per_shard"]
            # The hot shard no longer owns every hot bucket.
            hot_buckets = {
                service.shard_map.bucket_of(req.shard_key()) for req in stream
            }
            owners = {service.shard_map.table[b] for b in hot_buckets}
            assert len(owners) > 1, f"hot buckets still on one shard: {moved}"
            # Service still correct after the move.
            scores = _score_stream(service, stream[:4])
            assert all(np.isfinite(s).all() for s in scores)
        finally:
            service.stop()
