"""Round-trip tests for graph/program serialization."""
from repro.hlo import (
    GraphBuilder,
    Program,
    graph_from_dict,
    graph_to_dict,
    program_from_json,
    program_to_json,
)
from repro.workloads import vision


def sample_graph():
    b = GraphBuilder("sample")
    x = b.parameter((2, 8, 8, 3), name="img")
    k = b.constant((3, 3, 3, 8))
    y = b.conv2d(x, k, strides=(2, 2), padding="same")
    y = b.scale_shift(y)
    z = b.reduce(y, [1, 2], kind="mean")
    return b.build([z])


class TestGraphRoundTrip:
    def test_roundtrip_preserves_structure(self):
        g = sample_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        assert len(g2) == len(g)
        assert g2.name == g.name
        for a, c in zip(g.topological_order(), g2.topological_order()):
            assert a.id == c.id
            assert a.opcode == c.opcode
            assert a.shape == c.shape
            assert a.operands == c.operands
            assert a.is_root == c.is_root

    def test_roundtrip_preserves_attrs_as_tuples(self):
        g = sample_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        conv = next(i for i in g2 if i.attr("window") is not None)
        assert conv.attr("window") == (3, 3)
        assert conv.attr("strides") == (2, 2)
        assert isinstance(conv.attr("window"), tuple)

    def test_roundtrip_is_stable(self):
        g = sample_graph()
        d1 = graph_to_dict(g)
        d2 = graph_to_dict(graph_from_dict(d1))
        assert d1 == d2


class TestProgramRoundTrip:
    def test_program_json(self):
        p = Program("net1", sample_graph(), family="nets")
        p2 = program_from_json(program_to_json(p))
        assert p2.name == "net1"
        assert p2.family == "nets"
        assert len(p2.graph) == len(p.graph)

    def test_real_workload_roundtrip(self):
        p = vision.resnet_v1(0)
        p2 = program_from_json(program_to_json(p))
        assert len(p2.graph) == len(p.graph)
        a1 = p.graph.adjacency_matrix()
        a2 = p2.graph.adjacency_matrix()
        assert (a1 == a2).all()
