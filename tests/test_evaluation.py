"""Tests for evaluation metrics and table rendering."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    evaluate_fusion_task,
    evaluate_tile_task,
    format_comparison,
    format_table,
    geometric_mean,
    kendall_tau,
    mape,
    summarize,
    tile_size_ape,
)


class TestKendall:
    def test_perfect_correlation(self):
        assert kendall_tau(np.array([1, 2, 3, 4]), np.array([10, 20, 30, 40])) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert kendall_tau(np.array([1, 2, 3]), np.array([3, 2, 1])) == pytest.approx(-1.0)

    def test_degenerate_inputs(self):
        assert kendall_tau(np.array([1.0]), np.array([2.0])) == 0.0
        assert kendall_tau(np.array([1.0, 1.0]), np.array([1.0, 2.0])) == 0.0

    @given(st.lists(st.floats(0.1, 100, allow_nan=False), min_size=3, max_size=20, unique=True))
    @settings(max_examples=30)
    def test_bounded(self, values):
        arr = np.array(values)
        tau = kendall_tau(arr, arr**2)  # monotone transform
        assert tau == pytest.approx(1.0)


class TestMape:
    def test_exact_is_zero(self):
        t = np.array([1.0, 2.0])
        assert mape(t, t) == 0.0

    def test_simple_case(self):
        assert mape(np.array([100.0]), np.array([150.0])) == pytest.approx(50.0)

    def test_empty(self):
        assert mape(np.array([]), np.array([])) == 0.0


class TestTileSizeApe:
    def test_perfect_choice_is_zero(self):
        runtimes = [np.array([3.0, 1.0, 2.0])]
        assert tile_size_ape(runtimes, [1]) == 0.0

    def test_eq2_hand_computed(self):
        # Kernel A: best 1.0, chosen 1.5; kernel B: best 2.0, chosen 2.0.
        runtimes = [np.array([1.5, 1.0]), np.array([2.0, 4.0])]
        ape = tile_size_ape(runtimes, [0, 0])
        assert ape == pytest.approx(100.0 * 0.5 / 3.0)

    def test_evaluate_tile_task_uses_argmin_scores(self):
        truths = [np.array([1.0, 5.0]), np.array([10.0, 2.0])]
        scores = [np.array([0.1, 0.9]), np.array([0.9, 0.1])]  # both correct
        res = evaluate_tile_task(truths, scores)
        assert res.ape == 0.0
        assert res.kendall == pytest.approx(1.0)
        assert res.num_kernels == 2

    @given(
        st.lists(
            st.lists(st.floats(0.1, 10, allow_nan=False), min_size=2, max_size=6),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30)
    def test_ape_nonnegative(self, runtime_lists):
        runtimes = [np.array(r) for r in runtime_lists]
        chosen = [0 for _ in runtimes]
        assert tile_size_ape(runtimes, chosen) >= 0.0


class TestFusionTask:
    def test_threshold_filters_small_kernels(self):
        truth = np.array([1e-6, 1e-3])
        pred = np.array([1e-2, 1e-3])  # first is wildly wrong but filtered
        res = evaluate_fusion_task(truth, pred, min_runtime=5e-6)
        assert res.num_kernels == 1
        assert res.mape == pytest.approx(0.0)

    def test_zero_threshold_keeps_all(self):
        truth = np.array([1e-6, 1e-3])
        res = evaluate_fusion_task(truth, truth, min_runtime=0.0)
        assert res.num_kernels == 2


class TestSummaries:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 9.0])
        assert s["median"] == 2.0
        assert s["mean"] == pytest.approx(4.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([0.0, 4.0]) > 0  # clamped


class TestFormatting:
    def test_format_table_contains_cells(self):
        out = format_table(["name", "x"], [["a", 1.234], ["bb", 5.0]], title="T")
        assert "T" in out and "name" in out
        assert "1.23" in out and "bb" in out

    def test_column_alignment(self):
        out = format_table(["h1", "h2"], [["long-cell", 1.0]])
        lines = out.splitlines()
        assert len(lines[0]) >= len("h1  h2")

    def test_format_comparison(self):
        s = format_comparison("metric", 3.7, 4.21, unit="%")
        assert "paper=3.7%" in s and "4.21%" in s
