"""Tests for the deployment control plane (rollout + feedback).

The load-bearing canary invariants:

* a :class:`CanaryFraction` policy routes the configured fraction
  (±2% over 10k requests) **deterministically** by request hash;
* no executed micro-batch ever mixes versions — canary batches are
  version-pure partitions of the cut batch;
* an injected regressed checkpoint is auto-rolled-back before reaching
  full activation, while the active version's responses stay
  bitwise-identical to a no-rollout service;
* all three policies work on both executors.
"""
import threading

import numpy as np
import pytest

from repro.autotuner import LearnedEvaluator
from repro.compiler import enumerate_tile_sizes
from repro.compiler.tiling import TileConfig
from repro.data import Scalers, build_tile_dataset
from repro.models import (
    LearnedPerformanceModel,
    ModelConfig,
    feedback_to_tile_records,
    fine_tune_on_feedback,
    load_model_bytes,
    save_model_bytes,
)
from repro.models.trainer import TrainResult
from repro.serving import (
    CANARY,
    IDLE,
    PROMOTED,
    ROLLED_BACK,
    SHADOW,
    CanaryFraction,
    CostModelService,
    FeedbackCollector,
    FullActivation,
    InThreadExecutor,
    ModelRegistry,
    Response,
    RolloutConfig,
    RolloutController,
    ServiceConfig,
    ServiceEvaluator,
    ShadowScore,
    TileScoresRequest,
    prediction_error,
    regressed_checkpoint,
    request_key,
    request_unit_hash,
    tile_measurement,
)
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=6, max_tiles_per_kernel=6, seed=0
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


def _result(corpus, seed=0):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=seed)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


@pytest.fixture(scope="module")
def result_a(corpus):
    return _result(corpus, seed=0)


@pytest.fixture(scope="module")
def result_bad(result_a):
    """The active checkpoint with its ranking exactly reversed — the
    worst regression a rollout can face."""
    return regressed_checkpoint(result_a)


def _request_stream(records, n, tiles_per_request=4):
    """n distinct tile-score requests walking the kernel pool."""
    pool = []
    for record in records:
        tiles = enumerate_tile_sizes(record.kernel)
        if len(tiles) >= tiles_per_request:
            pool.append((record.kernel, tiles))
    stream = []
    for i in range(n):
        kernel, tiles = pool[i % len(pool)]
        start = (i * tiles_per_request) % (len(tiles) - tiles_per_request + 1)
        stream.append(
            TileScoresRequest(
                kernel=kernel, tiles=tuple(tiles[start:start + tiles_per_request])
            )
        )
    return stream


# ---------------------------------------------------------------------- #
# routing hash + policies
# ---------------------------------------------------------------------- #


class TestRequestHash:
    def test_deterministic_across_instances(self, corpus):
        records, _ = corpus
        request = TileScoresRequest(
            kernel=records[0].kernel,
            tiles=tuple(enumerate_tile_sizes(records[0].kernel)[:4]),
        )
        assert request_unit_hash(request) == request_unit_hash(request)
        clone = TileScoresRequest(kernel=request.kernel, tiles=request.tiles)
        assert request_unit_hash(request) == request_unit_hash(clone)
        assert request_unit_hash(request, salt="a") != request_unit_hash(
            request, salt="b"
        )

    def test_canary_fraction_within_2_percent_over_10k(self, corpus):
        records, _ = corpus
        kernel = records[0].kernel
        fraction = 0.2
        policy = CanaryFraction("staged", fraction)
        requests = [
            TileScoresRequest(
                kernel=kernel,
                tiles=(TileConfig(dims=(i % 64 + 1, i // 64 + 1, 1)),),
            )
            for i in range(10_000)
        ]
        routed = sum(
            1 for r in requests if policy.route(r, "active") == "staged"
        )
        assert abs(routed / 10_000 - fraction) <= 0.02
        # Deterministic: a second policy instance routes identically.
        again = CanaryFraction("staged", fraction)
        assert all(
            policy.route(r, "active") == again.route(r, "active")
            for r in requests[:200]
        )

    def test_fraction_extremes(self, corpus):
        records, _ = corpus
        request = TileScoresRequest(
            kernel=records[0].kernel,
            tiles=tuple(enumerate_tile_sizes(records[0].kernel)[:2]),
        )
        assert CanaryFraction("s", 0.0).route(request, "a") == "a"
        assert CanaryFraction("s", 1.0).route(request, "a") == "s"
        assert FullActivation().route(request, "a") == "a"
        assert FullActivation().shadow(request, "a") is None
        shadow = ShadowScore("s", 1.0)
        assert shadow.route(request, "a") == "a"
        assert shadow.shadow(request, "a") == "s"
        assert ShadowScore("s", 0.0).shadow(request, "a") is None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            CanaryFraction("s", 1.5)
        with pytest.raises(ValueError):
            ShadowScore("s", -0.1)
        with pytest.raises(ValueError):
            RolloutConfig(min_samples=0)
        with pytest.raises(ValueError):
            RolloutConfig(promote_margin=0.5, abort_margin=0.1)
        with pytest.raises(ValueError):
            RolloutConfig(start_phase="nope")


# ---------------------------------------------------------------------- #
# feedback
# ---------------------------------------------------------------------- #


class TestPredictionError:
    def test_perfect_ranking_scores_zero(self):
        assert prediction_error([1.0, 2.0, 3.0], [0.1, 0.2, 0.3]) == 0.0

    def test_reversed_ranking_scores_one(self):
        assert prediction_error([3.0, 2.0, 1.0], [0.1, 0.2, 0.3]) == 1.0

    def test_scalar_relative_error_capped(self):
        assert prediction_error(1.0, 1.0) == 0.0
        assert prediction_error(1.5, 1.0) == pytest.approx(0.5)
        assert prediction_error(100.0, 1.0) == 1.0

    def test_degenerate_inputs(self):
        assert prediction_error([], []) == 0.0
        assert prediction_error([1.0, 2.0], [5.0, 5.0]) == 0.0  # nothing comparable
        assert prediction_error([1.0, 2.0], [1.0]) == 1.0  # size mismatch


class TestFeedbackCollector:
    def test_join_fills_version_window(self):
        collector = FeedbackCollector(window=8)
        collector.record_prediction("v1", ("k",), [1.0, 2.0])
        collector.record_prediction("v2", ("k",), [2.0, 1.0], shadow=True)
        joined = collector.record_measurement(("k",), [0.1, 0.2])
        assert joined == 2
        assert collector.error_window("v1").mean_error == 0.0
        assert collector.error_window("v2").mean_error == 1.0
        assert collector.error_window("v2").count == 1
        samples = collector.samples()
        assert {s.version for s in samples} == {"v1", "v2"}
        assert any(s.shadow for s in samples)

    def test_unmatched_measurement_counted(self):
        collector = FeedbackCollector()
        assert collector.record_measurement(("missing",), 1.0) == 0
        assert collector.snapshot()["unmatched_measurements"] == 1.0

    def test_pending_is_bounded(self):
        collector = FeedbackCollector(max_pending=4)
        for i in range(10):
            collector.record_prediction("v1", ("k", i), 1.0)
        snap = collector.snapshot()
        assert snap["pending"] == 4.0
        assert snap["dropped_pending"] == 6.0

    def test_window_is_bounded_and_resettable(self):
        collector = FeedbackCollector(window=4)
        for i in range(10):
            collector.record_prediction("v1", ("k", i), 1.0)
            collector.record_measurement(("k", i), 1.0)
        assert collector.error_window("v1").count == 4
        collector.reset_version("v1")
        assert collector.error_window("v1").count == 0
        assert collector.error_window(None).count == 0

    def test_drain_samples_empties_buffer(self):
        collector = FeedbackCollector()
        collector.record_prediction("v1", ("k",), 1.0)
        collector.record_measurement(("k",), 1.0)
        assert len(collector.drain_samples()) == 1
        assert collector.samples() == []

    def test_prediction_after_measurement_still_joins(self):
        """Shadow scores land after response futures resolve, so a
        promptly-reported measurement must still join them: the join is
        symmetric in arrival order."""
        collector = FeedbackCollector()
        collector.record_measurement(("k",), [0.1, 0.2])
        collector.record_prediction("staged", ("k",), [1.0, 2.0], shadow=True)
        window = collector.error_window("staged")
        assert window.count == 1
        assert window.mean_error == 0.0

    def test_total_outlives_the_bounded_window(self):
        """`total` is monotone — the rollout controller's budget clock
        must keep ticking after the ring buffer saturates."""
        collector = FeedbackCollector(window=4)
        for i in range(10):
            collector.record_prediction("v1", ("k", i), 1.0)
            collector.record_measurement(("k", i), 1.0)
        window = collector.error_window("v1")
        assert window.count == 4
        assert window.total == 10
        collector.reset_version("v1")
        assert collector.error_window("v1").total == 0

    def test_per_key_pending_is_bounded(self):
        """Endless predictions for one never-measured key must not grow
        memory — the per-key entry list is capped."""
        collector = FeedbackCollector()
        for _ in range(100):
            collector.record_prediction("v1", ("k",), 1.0)
        cap = FeedbackCollector._MAX_ENTRIES_PER_KEY
        assert len(collector._pending[("k",)]) == cap
        assert collector.snapshot()["dropped_pending"] == float(100 - cap)


# ---------------------------------------------------------------------- #
# registry staged lifecycle + retention
# ---------------------------------------------------------------------- #


class TestRegistryStagedLifecycle:
    def test_stage_publishes_without_serving(self, result_a):
        registry = ModelRegistry()
        v1 = registry.publish(result_a)
        staged = registry.stage(result_a)
        assert registry.staged_version == staged
        assert registry.active_version == v1
        assert staged in registry

    def test_activate_consumes_staged_marker(self, result_a):
        registry = ModelRegistry()
        registry.publish(result_a)
        staged = registry.stage(result_a)
        registry.activate(staged)
        assert registry.active_version == staged
        assert registry.staged_version is None

    def test_clear_staged_is_rollback(self, result_a):
        registry = ModelRegistry()
        v1 = registry.publish(result_a)
        registry.stage(result_a)
        registry.clear_staged()
        assert registry.staged_version is None
        assert registry.active_version == v1

    def test_stage_existing_version_by_name(self, result_a):
        registry = ModelRegistry()
        registry.publish(result_a)
        v2 = registry.publish(result_a, activate=False)
        assert registry.stage(v2) == v2
        assert registry.staged_version == v2
        with pytest.raises(KeyError):
            registry.stage("v99")

    def test_stage_rejects_the_active_version(self, result_a):
        """A version cannot be both active and staged — a controller
        comparing a version's window against itself would trivially
        'promote' it."""
        registry = ModelRegistry()
        v1 = registry.publish(result_a)
        with pytest.raises(ValueError):
            registry.stage(v1)
        assert registry.staged_version is None

    def test_retention_never_drops_active_or_staged(self, result_a):
        registry = ModelRegistry(retain=2)
        v1 = registry.publish(result_a)
        staged = registry.stage(result_a)
        for _ in range(3):
            registry.publish(result_a, activate=False)
        versions = registry.versions
        assert len(versions) == 2
        assert v1 in versions and staged in versions

    def test_staging_at_the_retention_bound_keeps_the_new_stage(self, result_a):
        """Re-staging over a full registry must evict the *old* staged
        version, never the version being staged (the staged marker is
        set inside the same locked section as pruning)."""
        registry = ModelRegistry(retain=2)
        v1 = registry.publish(result_a)
        old_staged = registry.stage(result_a)
        new_staged = registry.stage(result_a)
        assert registry.staged_version == new_staged
        assert new_staged in registry  # blob survived its own staging
        registry.blob(new_staged)
        assert old_staged not in registry
        assert registry.versions == [v1, new_staged]
        with pytest.raises(ValueError):
            registry.publish(result_a, activate=True, stage=True)

    def test_retention_prunes_oldest_inactive(self, result_a):
        registry = ModelRegistry(retain=2)
        v1 = registry.publish(result_a)
        v2 = registry.publish(result_a)  # activates v2
        v3 = registry.publish(result_a)  # activates v3; v1 must go
        assert v1 not in registry
        assert registry.versions == [v2, v3]
        with pytest.raises(ValueError):
            ModelRegistry(retain=1)

    def test_spill_load_preserves_staged_marker(self, result_a, tmp_path):
        registry = ModelRegistry()
        registry.publish(result_a)
        staged = registry.stage(result_a)
        registry.spill(tmp_path / "reg")
        restored = ModelRegistry.load(tmp_path / "reg")
        assert restored.staged_version == staged
        assert restored.active_version == registry.active_version

    def test_load_with_retention_keeps_active(self, result_a, tmp_path):
        registry = ModelRegistry()
        for _ in range(4):
            registry.publish(result_a)
        registry.spill(tmp_path / "reg")
        restored = ModelRegistry.load(tmp_path / "reg", retain=2)
        assert restored.active_version == registry.active_version
        assert len(restored.versions) == 2
        assert restored.active_version in restored.versions


# ---------------------------------------------------------------------- #
# wire form of the rollout tags
# ---------------------------------------------------------------------- #


class TestResponseRolloutTags:
    def test_canary_and_shadow_tags_roundtrip(self):
        response = Response(
            value=np.arange(3, dtype=np.float32),
            model_version="v2",
            canary=True,
            shadowed_by="v3",
        )
        decoded = Response.from_bytes(response.to_bytes())
        assert decoded.canary is True
        assert decoded.shadowed_by == "v3"

    def test_pre_rollout_frames_still_decode(self):
        # A peer that predates the control plane omits the tag keys.
        import json
        import struct

        header = json.dumps(
            {
                "kind": "scalar",
                "dtype": "<f8",
                "shape": None,
                "model_version": "v1",
                "batch_size": 1,
                "cache_hit": False,
                "latency_s": 0.0,
                "error": None,
            }
        ).encode()
        data = struct.pack(">I", len(header)) + header + struct.pack("<d", 1.5)
        decoded = Response.from_bytes(data)
        assert decoded.canary is False
        assert decoded.shadowed_by is None
        assert decoded.value == 1.5


# ---------------------------------------------------------------------- #
# canary serving invariants (thread executor)
# ---------------------------------------------------------------------- #


class _RecordingExecutor(InThreadExecutor):
    """Spy: records every (version, commands) execution."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def run(self, version, commands):
        self.calls.append((version, list(commands)))
        return super().run(version, commands)


def _canary_registry(result_a, result_bad):
    registry = ModelRegistry()
    registry.publish(result_a, version="good")
    registry.stage(result_bad, version="bad")
    return registry


class TestCanaryServing:
    def test_responses_follow_deterministic_routes(self, corpus, result_a, result_bad):
        records, _ = corpus
        registry = _canary_registry(result_a, result_bad)
        policy = CanaryFraction("bad", 0.5)
        service = CostModelService(
            registry,
            ServiceConfig(result_cache_entries=0),
            rollout=policy,
        )
        try:
            client = ServiceEvaluator(service)
            for request in _request_stream(records, 40):
                client.tile_scores(request.kernel, list(request.tiles))
                expected = policy.route(request, "good")
                assert client.model_version == expected
                assert client.served_by_canary == (expected == "bad")
            assert set(client.version_counts) == {"good", "bad"}
        finally:
            service.stop()

    def test_no_micro_batch_mixes_versions(self, corpus, result_a, result_bad):
        """One cut batch under a canary policy executes as version-pure
        partitions: every command in one executor call belongs to a
        request that routes to exactly that call's version."""
        records, _ = corpus
        registry = _canary_registry(result_a, result_bad)
        policy = CanaryFraction("bad", 0.5)
        spy = _RecordingExecutor(registry, replicas=1)
        service = CostModelService(
            registry,
            ServiceConfig(max_batch_size=64, result_cache_entries=0),
            executor=spy,
            rollout=policy,
        )
        try:
            # Distinct kernels so commands map 1:1 back to requests.
            requests = [
                TileScoresRequest(
                    kernel=r.kernel,
                    tiles=tuple(enumerate_tile_sizes(r.kernel)[:4]),
                )
                for r in records
            ]
            route_of = {
                r.kernel.fingerprint(): policy.route(r, "good") for r in requests
            }
            assert set(route_of.values()) == {"good", "bad"}  # both sides hit
            futures = [service.submit(r) for r in requests]
            service.flush()  # one micro-batch, partitioned by version
            for future in futures:
                assert future.result(timeout=30).error is None
            assert len(spy.calls) == 2  # one version-pure batch per side
            for version, commands in spy.calls:
                for command in commands:
                    assert route_of[command.kernel.fingerprint()] == version
        finally:
            service.stop()

    def test_regressed_canary_rolls_back_with_bitwise_active_responses(
        self, corpus, result_a, result_bad
    ):
        """The acceptance scenario: an injected regressed checkpoint is
        rolled back before full activation, and every active-served
        response is bitwise-identical to a service with no rollout."""
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)

        plain = CostModelService(result_a, ServiceConfig(result_cache_entries=0))
        registry = _canary_registry(result_a, result_bad)
        feedback = FeedbackCollector()
        service = CostModelService(
            registry, ServiceConfig(result_cache_entries=0), feedback=feedback
        )
        controller = RolloutController(
            service,
            feedback,
            RolloutConfig(
                canary_fraction=0.5,
                min_samples=8,
                max_samples_per_phase=64,
                promote_margin=0.02,
                abort_margin=0.2,
                start_phase=CANARY,
            ),
        )
        try:
            controller.stage("bad")
            assert controller.state == CANARY
            plain_client = ServiceEvaluator(plain)
            client = ServiceEvaluator(service)
            budget = 200
            requests_used = None
            for i, request in enumerate(_request_stream(records, budget)):
                scores = client.tile_scores(request.kernel, list(request.tiles))
                reference = plain_client.tile_scores(
                    request.kernel, list(request.tiles)
                )
                if client.model_version == "good":
                    # Active responses must not even wiggle at float level.
                    assert scores.tobytes() == reference.tobytes()
                # "Hardware" ground truth agrees with the active model's
                # ranking, so the negated canary is maximally regressed.
                feedback.record_measurement(
                    request_key(request), direct.score_tiles_batched(
                        request.kernel, list(request.tiles)
                    )
                )
                if controller.step() == ROLLED_BACK:
                    requests_used = i + 1
                    break
            assert controller.state == ROLLED_BACK
            assert requests_used is not None and requests_used <= budget
            # Never promoted, never served after rollback, active untouched.
            assert all(t.state != PROMOTED for t in controller.transitions)
            assert registry.active_version == "good"
            assert registry.staged_version is None
            assert isinstance(service.get_rollout(), FullActivation)
            post = ServiceEvaluator(service)
            for request in _request_stream(records, 8):
                post.tile_scores(request.kernel, list(request.tiles))
                assert post.model_version == "good"
            per_version = service.metrics()["per_version"]
            assert per_version["bad"]["canary"] > 0
        finally:
            plain.stop()
            service.stop()

    def test_healthy_rollout_promotes_through_shadow_and_canary(
        self, corpus, result_a
    ):
        """A staged checkpoint as good as the active one walks the whole
        state machine: staged -> shadow -> canary -> promoted."""
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(
            registry, ServiceConfig(result_cache_entries=0), feedback=feedback
        )
        controller = RolloutController(
            service,
            feedback,
            RolloutConfig(
                canary_fraction=0.5,
                min_samples=6,
                max_samples_per_phase=64,
                promote_margin=0.02,
                abort_margin=0.2,
            ),
        )
        try:
            # Same weights, new version: accuracy provably equal.
            staged = controller.stage(result_a, version="good-retrained")
            assert controller.state == SHADOW
            client = ServiceEvaluator(service)
            states = {SHADOW}
            for request in _request_stream(records, 120):
                client.tile_scores(request.kernel, list(request.tiles))
                if controller.state == SHADOW:
                    assert client.model_version == "good"  # shadow never serves
                feedback.record_measurement(
                    request_key(request),
                    direct.score_tiles_batched(request.kernel, list(request.tiles)),
                )
                states.add(controller.step())
                if controller.state == PROMOTED:
                    break
            assert states >= {SHADOW, CANARY, PROMOTED}
            assert registry.active_version == staged
            assert registry.staged_version is None
            after = ServiceEvaluator(service)
            after.tile_scores(records[0].kernel, enumerate_tile_sizes(records[0].kernel)[:4])
            assert after.model_version == staged
        finally:
            service.stop()

    def test_stage_over_live_rollout_raises(self, corpus, result_a):
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(registry, ServiceConfig(), feedback=feedback)
        controller = RolloutController(service, feedback)
        try:
            controller.stage(result_a)
            with pytest.raises(RuntimeError):
                controller.stage(result_a)
            assert controller.abort() == ROLLED_BACK
            assert controller.step() == ROLLED_BACK  # idempotent once settled
        finally:
            service.stop()

    def test_undecided_rollout_rolls_back_after_budget(self, corpus, result_a):
        """A staged version stuck between the margins must not limp
        forever: the per-phase sample budget forces a rollback."""
        records, _ = corpus
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        # Window smaller than the phase budget: the budget clock must run
        # on the monotone join total, not the saturating window count.
        feedback = FeedbackCollector(window=4)
        service = CostModelService(
            registry, ServiceConfig(result_cache_entries=0), feedback=feedback
        )
        controller = RolloutController(
            service,
            feedback,
            RolloutConfig(
                min_samples=4,
                max_samples_per_phase=8,
                promote_margin=0.0,
                abort_margin=1.0,  # unreachable: nothing aborts early
                start_phase=CANARY,
                canary_fraction=1.0,
            ),
        )
        try:
            controller.stage(result_a, version="undecided")
            # Feed errors in the dead zone between the margins.
            for i in range(12):
                feedback.record_prediction("undecided", ("k", i), [1.0, 2.0, 3.0])
                feedback.record_prediction("good", ("g", i), [1.0, 2.0, 3.0])
                feedback.record_measurement(("k", i), [0.3, 0.1, 0.2])
                feedback.record_measurement(("g", i), [0.1, 0.2, 0.3])
                controller.step()
            assert controller.state == ROLLED_BACK
            assert "undecided" not in (registry.staged_version,)
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# wall-clock phase budgets
# ---------------------------------------------------------------------- #


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _timed_controller(service, feedback, clock, **overrides):
    defaults = dict(
        min_samples=4,
        max_samples_per_phase=100,
        promote_margin=0.05,
        abort_margin=1.0,
        start_phase=CANARY,
        canary_fraction=1.0,
        max_seconds_per_phase=30.0,
    )
    defaults.update(overrides)
    return RolloutController(
        service, feedback, RolloutConfig(**defaults), clock=clock
    )


class TestTimeBudgets:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RolloutConfig(max_seconds_per_phase=0.0)
        with pytest.raises(ValueError):
            RolloutConfig(max_seconds_per_phase=-1.0)
        assert RolloutConfig(max_seconds_per_phase=None).max_seconds_per_phase is None

    def test_timeout_without_evidence_rolls_back(self, result_a):
        """A bursty/low-traffic deployment that never reaches min_samples
        must still conclude: the wall-clock ceiling rolls it back."""
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(registry, ServiceConfig(), feedback=feedback)
        clock = _FakeClock()
        controller = _timed_controller(service, feedback, clock)
        try:
            controller.stage(result_a, version="slow")
            assert controller.step() == CANARY  # within budget, no verdict
            clock.now = 29.9
            assert controller.step() == CANARY
            clock.now = 30.0
            assert controller.step() == ROLLED_BACK
            assert registry.staged_version is None
            assert registry.active_version == "good"
            assert "wall-clock" in controller.transitions[-1].reason
        finally:
            service.stop()

    def test_timeout_in_dead_zone_rolls_back(self, result_a):
        """Evidence stuck between the margins at the ceiling concludes
        too — the sample budget alone would have waited forever."""
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(registry, ServiceConfig(), feedback=feedback)
        clock = _FakeClock()
        controller = _timed_controller(
            service, feedback, clock, promote_margin=0.0, abort_margin=1.0
        )
        try:
            controller.stage(result_a, version="meh")
            for i in range(6):  # dead zone: staged worse, but under abort
                feedback.record_prediction("meh", ("k", i), [1.0, 2.0, 3.0])
                feedback.record_prediction("good", ("g", i), [1.0, 2.0, 3.0])
                feedback.record_measurement(("k", i), [2.0, 1.0, 3.0])
                feedback.record_measurement(("g", i), [1.0, 2.0, 3.0])
            assert controller.step() == CANARY  # undecided, budget left
            clock.now = 31.0
            assert controller.step() == ROLLED_BACK
            assert "undecided" in controller.transitions[-1].reason
        finally:
            service.stop()

    def test_good_evidence_still_promotes_at_the_ceiling(self, result_a):
        """The ceiling forces a *decision*, not a rollback: a window
        within the promote margin advances even when time ran out."""
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(registry, ServiceConfig(), feedback=feedback)
        clock = _FakeClock()
        controller = _timed_controller(service, feedback, clock)
        try:
            controller.stage(result_a, version="fine")
            for i in range(4):
                feedback.record_prediction("fine", ("k", i), [1.0, 2.0, 3.0])
                feedback.record_prediction("good", ("g", i), [1.0, 2.0, 3.0])
                feedback.record_measurement(("k", i), [1.0, 2.0, 3.0])
                feedback.record_measurement(("g", i), [1.0, 2.0, 3.0])
            clock.now = 1000.0
            assert controller.step() == PROMOTED
            assert registry.active_version == "fine"
        finally:
            service.stop()

    def test_phase_clock_resets_on_shadow_to_canary(self, result_a):
        """Each phase gets its own wall-clock budget: time spent in
        shadow does not count against the canary phase."""
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(registry, ServiceConfig(), feedback=feedback)
        clock = _FakeClock()
        controller = _timed_controller(
            service, feedback, clock, start_phase=SHADOW, max_seconds_per_phase=10.0
        )
        try:
            controller.stage(result_a, version="twophase")
            for i in range(4):
                feedback.record_prediction("twophase", ("k", i), [1.0, 2.0, 3.0])
                feedback.record_prediction("good", ("g", i), [1.0, 2.0, 3.0])
                feedback.record_measurement(("k", i), [1.0, 2.0, 3.0])
                feedback.record_measurement(("g", i), [1.0, 2.0, 3.0])
            clock.now = 8.0
            assert controller.step() == CANARY  # advanced at t=8
            clock.now = 16.0  # 16s total, but only 8s into the canary
            assert controller.step() == CANARY
            clock.now = 18.1  # 10.1s into the canary, no fresh samples
            assert controller.step() == ROLLED_BACK
        finally:
            service.stop()

    def test_no_ceiling_means_sample_budget_only(self, result_a):
        registry = ModelRegistry()
        registry.publish(result_a, version="good")
        feedback = FeedbackCollector()
        service = CostModelService(registry, ServiceConfig(), feedback=feedback)
        clock = _FakeClock()
        controller = _timed_controller(
            service, feedback, clock, max_seconds_per_phase=None
        )
        try:
            controller.stage(result_a, version="patient")
            clock.now = 1e9
            assert controller.step() == CANARY  # waits for samples forever
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# rollout-aware result cache
# ---------------------------------------------------------------------- #


class TestRolloutAwareResultCache:
    def _service(self, result_a, result_bad, fraction):
        registry = ModelRegistry()
        registry.publish(result_a, version="active")
        registry.stage(save_model_bytes(result_bad), version="staged")
        feedback = FeedbackCollector()
        service = CostModelService(
            registry,
            ServiceConfig(
                result_cache_entries=64, shadow_cache_hit_fraction=fraction
            ),
            feedback=feedback,
        )
        return service, feedback

    def test_cache_hits_feed_staged_shadow_evidence(self, corpus, result_a, result_bad):
        """With shadow sampling off the execution path entirely
        (sample_fraction=0), staged evidence can *only* come from the
        sampled cache hits — the high-hit-rate deployment scenario."""
        records, _ = corpus
        service, feedback = self._service(result_a, result_bad, fraction=1.0)
        try:
            service.set_rollout(ShadowScore("staged", sample_fraction=0.0))
            request = _request_stream(records, 1)[0]
            future = service.submit(request)
            service.flush()
            executed = future.result(timeout=30)
            assert not executed.cache_hit
            assert service.metrics()["per_version"].get("staged", {}).get(
                "shadow", 0.0
            ) == 0.0
            hit_future = service.submit(request)
            hit = hit_future.result(timeout=30)
            assert hit.cache_hit and hit.model_version == "active"
            service.flush()  # drains the shadow backlog
            metrics = service.metrics()
            assert metrics["cache_hit_shadows"] == 1.0
            assert metrics["per_version"]["staged"]["shadow"] == 1.0
            assert metrics["shadow_forwards"] >= 1.0
            # The staged prediction is pending a measurement join.
            feedback.record_measurement(
                request_key(request), [0.1, 0.2, 0.3, 0.4][: len(request.tiles)]
            )
            assert feedback.error_window("staged").count >= 1
        finally:
            service.stop()

    def test_canary_cache_hits_also_sampled(self, corpus, result_a, result_bad):
        """A canary policy has no shadow rule of its own; sampled cache
        hits still target its staged version."""
        records, _ = corpus
        service, _ = self._service(result_a, result_bad, fraction=1.0)
        try:
            service.set_rollout(CanaryFraction("staged", fraction=0.0))
            request = _request_stream(records, 1)[0]
            service.submit(request)
            service.flush()
            service.submit(request)  # cache hit
            service.flush()
            metrics = service.metrics()
            assert metrics["cache_hit_shadows"] == 1.0
            assert metrics["per_version"]["staged"]["shadow"] == 1.0
        finally:
            service.stop()

    def test_sampling_disabled_by_default(self, corpus, result_a, result_bad):
        records, _ = corpus
        service, _ = self._service(result_a, result_bad, fraction=0.0)
        try:
            service.set_rollout(ShadowScore("staged", sample_fraction=0.0))
            request = _request_stream(records, 1)[0]
            service.submit(request)
            service.flush()
            service.submit(request)
            service.flush()
            metrics = service.metrics()
            assert metrics["cache_hit_shadows"] == 0.0
            assert metrics["per_version"].get("staged", {}).get("shadow", 0.0) == 0.0
        finally:
            service.stop()

    def test_no_rollout_means_no_sampling(self, corpus, result_a):
        """Without a staged target the knob is inert — cache hits stay
        free."""
        records, _ = corpus
        registry = ModelRegistry()
        registry.publish(result_a, version="only")
        service = CostModelService(
            registry,
            ServiceConfig(result_cache_entries=64, shadow_cache_hit_fraction=1.0),
        )
        try:
            request = _request_stream(records, 1)[0]
            service.submit(request)
            service.flush()
            hit = service.submit(request).result(timeout=30)
            assert hit.cache_hit
            service.flush()
            assert service.metrics()["cache_hit_shadows"] == 0.0
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# all three policies x both executors
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def rollout_process_service(corpus, result_a, result_bad):
    registry = ModelRegistry()
    registry.publish(result_a, version="good")
    registry.stage(result_bad, version="bad")
    feedback = FeedbackCollector()
    service = CostModelService(
        registry,
        ServiceConfig(executor="process", replicas=2, result_cache_entries=0),
        feedback=feedback,
    )
    yield service
    service.stop()


@pytest.fixture(scope="module")
def rollout_thread_service(corpus, result_a, result_bad):
    registry = ModelRegistry()
    registry.publish(result_a, version="good")
    registry.stage(result_bad, version="bad")
    feedback = FeedbackCollector()
    service = CostModelService(
        registry,
        ServiceConfig(executor="thread", replicas=2, result_cache_entries=0),
        feedback=feedback,
    )
    yield service
    service.stop()


class TestPoliciesOnBothExecutors:
    @pytest.fixture(params=["thread", "process"])
    def rollout_service(
        self, request, rollout_thread_service, rollout_process_service
    ):
        service = (
            rollout_thread_service
            if request.param == "thread"
            else rollout_process_service
        )
        yield service
        service.set_rollout(FullActivation())

    def test_full_activation_serves_active_only(self, corpus, rollout_service):
        records, _ = corpus
        rollout_service.set_rollout(FullActivation())
        client = ServiceEvaluator(rollout_service, timeout_s=120.0)
        for request in _request_stream(records, 8):
            client.tile_scores(request.kernel, list(request.tiles))
            assert client.model_version == "good"
            assert not client.served_by_canary

    def test_canary_routes_both_versions(self, corpus, rollout_service):
        records, _ = corpus
        policy = CanaryFraction("bad", 0.5)
        rollout_service.set_rollout(policy)
        client = ServiceEvaluator(rollout_service, timeout_s=120.0)
        for request in _request_stream(records, 24):
            client.tile_scores(request.kernel, list(request.tiles))
            assert client.model_version == policy.route(request, "good")
        assert set(client.version_counts) == {"good", "bad"}

    def test_shadow_scores_off_the_response_path(self, corpus, rollout_service):
        records, scalers = corpus
        feedback = rollout_service.feedback
        before = feedback.error_window("bad").count
        rollout_service.set_rollout(ShadowScore("bad", 1.0))
        client = ServiceEvaluator(rollout_service, timeout_s=120.0)
        for request in _request_stream(records, 10):
            scores = client.tile_scores(request.kernel, list(request.tiles))
            assert client.model_version == "good"  # responses: active only
            assert client.last_response.shadowed_by == "bad"
            # Ground truth = the active model's own ranking: the negated
            # shadow must look maximally wrong, the active model perfect.
            feedback.record_measurement(request_key(request), scores)
        assert feedback.error_window("bad").count >= before + 10
        assert feedback.error_window("bad").mean_error > 0.9
        assert feedback.error_window("good").mean_error == 0.0

    def test_canary_responses_match_staged_model_exactly(
        self, corpus, result_bad, rollout_service
    ):
        """A canary-served response is the staged checkpoint's own score,
        bitwise, at equal batch shape."""
        records, scalers = corpus
        staged_direct = LearnedEvaluator(result_bad.model, scalers)
        rollout_service.set_rollout(CanaryFraction("bad", 1.0))
        client = ServiceEvaluator(rollout_service, timeout_s=120.0)
        for request in _request_stream(records, 6):
            scores = client.tile_scores(request.kernel, list(request.tiles))
            assert client.model_version == "bad"
            assert client.served_by_canary
            reference = staged_direct.score_tiles_batched(
                request.kernel, list(request.tiles)
            )
            np.testing.assert_array_equal(scores, reference)


class TestTwoLiveVersions:
    def test_thread_executor_keeps_both_pools_warm(self, corpus, result_a, result_bad):
        records, _ = corpus
        registry = _canary_registry(result_a, result_bad)
        service = CostModelService(
            registry,
            ServiceConfig(result_cache_entries=0),
            rollout=CanaryFraction("bad", 0.5),
        )
        try:
            client = ServiceEvaluator(service)
            for request in _request_stream(records, 24):
                client.tile_scores(request.kernel, list(request.tiles))
            assert service.metrics()["evaluator_live_versions"] == 2
        finally:
            service.stop()

    def test_process_workers_switch_versions_without_respawn(
        self, corpus, rollout_process_service
    ):
        """Alternating active/staged batches must ride the warm per-version
        evaluators (a `use` message), never a worker restart."""
        records, _ = corpus
        service = rollout_process_service
        service.set_rollout(CanaryFraction("bad", 0.5))
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            for request in _request_stream(records, 32):
                client.tile_scores(request.kernel, list(request.tiles))
            details = service.executor.shard_stats()
            assert all(d["restarts"] == 0 for d in details)
            assert any(d["live_versions"] == 2 for d in details)
            assert set(client.version_counts) == {"good", "bad"}
        finally:
            service.set_rollout(FullActivation())


# ---------------------------------------------------------------------- #
# in-thread cross-kernel fused forwards (opt-in)
# ---------------------------------------------------------------------- #


class TestInThreadFusedForwards:
    def test_single_command_batch_is_bitwise(self, corpus, result_a):
        """At equal batch shape (one tile command in the batch) the fused
        path is bitwise-identical to the unfused default."""
        records, _ = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:6]
        fused = CostModelService(
            result_a,
            ServiceConfig(fuse_tile_commands=True, result_cache_entries=0),
        )
        plain = CostModelService(result_a, ServiceConfig(result_cache_entries=0))
        try:
            a = ServiceEvaluator(fused).score_tiles_batched(kernel, tiles)
            b = ServiceEvaluator(plain).score_tiles_batched(kernel, tiles)
            assert a.tobytes() == b.tobytes()
        finally:
            fused.stop()
            plain.stop()

    def test_multi_kernel_batch_costs_one_forward(self, corpus, result_a):
        records, scalers = corpus
        service = CostModelService(
            result_a,
            ServiceConfig(
                fuse_tile_commands=True, max_batch_size=16, result_cache_entries=0
            ),
        )
        try:
            futures = [
                service.submit(
                    TileScoresRequest(
                        kernel=r.kernel,
                        tiles=tuple(enumerate_tile_sizes(r.kernel)[:4]),
                    )
                )
                for r in records[:3]
            ]
            service.flush()
            responses = [f.result(timeout=30) for f in futures]
            assert all(r.error is None for r in responses)
            assert service.stats.snapshot()["model_forwards"] == 1.0
            # Fusion moves scores only at float32 BLAS rounding level.
            for record, response in zip(records[:3], responses):
                reference = LearnedEvaluator(
                    result_a.model, scalers
                ).score_tiles_batched(
                    record.kernel, enumerate_tile_sizes(record.kernel)[:4]
                )
                np.testing.assert_allclose(
                    response.value, reference, rtol=1e-4, atol=1e-7
                )
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# continuous learning: feedback -> records -> fine-tune
# ---------------------------------------------------------------------- #


class TestContinuousLearningHook:
    def _collected_feedback(self, corpus, result_a, n=24):
        records, _ = corpus
        from repro.tpu import TpuSimulator

        simulator = TpuSimulator()
        feedback = FeedbackCollector()
        service = CostModelService(
            result_a, ServiceConfig(result_cache_entries=0), feedback=feedback
        )
        try:
            client = ServiceEvaluator(service)
            for request in _request_stream(records, n):
                client.tile_scores(request.kernel, list(request.tiles))
                feedback.record_measurement(
                    request_key(request),
                    tile_measurement(simulator, request.kernel, request.tiles),
                )
        finally:
            service.stop()
        return feedback

    def test_feedback_converts_to_tile_records(self, corpus, result_a):
        feedback = self._collected_feedback(corpus, result_a)
        records = feedback_to_tile_records(feedback.samples())
        assert records
        for record in records:
            assert record.num_samples == len(record.tiles)
            assert record.program == "feedback"
            assert np.all(record.runtimes > 0)
        # Same kernel queried repeatedly merges into one record.
        fingerprints = [r.kernel.fingerprint() for r in records]
        assert len(fingerprints) == len(set(fingerprints))

    def test_fine_tune_on_feedback_returns_trainable_checkpoint(
        self, corpus, result_a
    ):
        from repro.models import TrainConfig

        feedback = self._collected_feedback(corpus, result_a)
        # fine_tune trains the model object in place: work on a copy so
        # the module-scoped fixture stays pristine.
        copy = load_model_bytes(save_model_bytes(result_a))
        tuned = fine_tune_on_feedback(
            copy, feedback.drain_samples(), TrainConfig(steps=3)
        )
        assert tuned is not None
        assert save_model_bytes(tuned)  # stageable through the registry
        assert fine_tune_on_feedback(result_a, [], None) is None
