"""Tests for the TPU targets, analytical model and simulator."""
import numpy as np
import pytest

from repro.compiler import Kernel, TileConfig, default_tile, enumerate_tile_sizes
from repro.hlo import GraphBuilder
from repro.tpu import (
    TARGETS,
    TPU_V2,
    TPU_V3,
    AnalyticalModel,
    CalibratedAnalyticalModel,
    TpuSimulator,
    calibrate_kind_scales,
    get_target,
)


def dense_kernel(m=256, k=128, n=512):
    b = GraphBuilder("dense")
    x = b.parameter((m, k))
    w = b.constant((k, n))
    y = b.dot(x, w)
    b.tanh(y)
    return Kernel(graph=b.build(), kind="fusion")


def formatting_kernel():
    b = GraphBuilder("fmt")
    x = b.parameter((32, 16))
    b.transpose(x, (1, 0))
    return Kernel(graph=b.build(), kind="data_formatting")


class TestSpecs:
    def test_targets_registered(self):
        assert set(TARGETS) == {"tpu_v2", "tpu_v3"}
        assert get_target("tpu_v2") is TPU_V2
        with pytest.raises(KeyError):
            get_target("tpu_v9")

    def test_v3_has_more_compute_and_bandwidth(self):
        assert TPU_V3.mxu_count == 2 * TPU_V2.mxu_count
        assert TPU_V3.hbm_bandwidth_gbps > TPU_V2.hbm_bandwidth_gbps
        assert TPU_V3.peak_matmul_flops > TPU_V2.peak_matmul_flops

    def test_peak_flops_formula(self):
        assert TPU_V2.peak_matmul_flops == pytest.approx(
            1 * 2 * 128 * 128 * 0.7e9
        )


class TestAnalyticalModel:
    def test_estimate_positive(self):
        m = AnalyticalModel()
        k = dense_kernel()
        assert m.estimate(k, default_tile(k)) > 0

    def test_breakdown_total_consistent(self):
        m = AnalyticalModel()
        k = dense_kernel()
        t = default_tile(k)
        bd = m.breakdown(k, t)
        expected = bd.iterations * max(bd.transfer_time, bd.compute_time) + bd.overhead
        assert bd.total == pytest.approx(expected)

    def test_rejects_kernels_without_tile_options(self):
        m = AnalyticalModel()
        k = formatting_kernel()
        with pytest.raises(ValueError):
            m.estimate(k, TileConfig((16, 32)))

    def test_best_tile_minimizes_estimate(self):
        m = AnalyticalModel()
        k = dense_kernel()
        tiles = enumerate_tile_sizes(k)
        best = m.best_tile(k, tiles)
        assert m.estimate(k, best) == min(m.estimate(k, t) for t in tiles)

    def test_rank_tiles_sorted(self):
        m = AnalyticalModel()
        k = dense_kernel()
        tiles = enumerate_tile_sizes(k)[:8]
        ranked = m.rank_tiles(k, tiles)
        estimates = [m.estimate(k, t) for t in ranked]
        assert estimates == sorted(estimates)

    def test_deterministic(self):
        m = AnalyticalModel()
        k = dense_kernel()
        t = default_tile(k)
        assert m.estimate(k, t) == m.estimate(k, t)


class TestCalibration:
    def test_calibrated_scales_match_ratio(self):
        model = AnalyticalModel()
        k = dense_kernel()
        t = default_tile(k)
        raw = model.estimate(k, t)
        scales = calibrate_kind_scales([k], [raw * 2.0], model)
        assert scales["fusion"] == pytest.approx(2.0)
        cal = CalibratedAnalyticalModel(model, scales)
        assert cal.estimate(k, t) == pytest.approx(raw * 2.0)

    def test_unseen_kind_defaults_to_one(self):
        model = AnalyticalModel()
        scales = calibrate_kind_scales([], [], model)
        assert all(v == 1.0 for v in scales.values())


class TestSimulator:
    def test_deterministic(self):
        sim = TpuSimulator()
        k = dense_kernel()
        t = default_tile(k)
        assert sim.run(k, t) == sim.run(k, t)

    def test_noise_min_of_runs_below_or_equal_single(self):
        sim = TpuSimulator()
        k = dense_kernel()
        t = default_tile(k)
        base = sim.run(k, t)
        rng = np.random.default_rng(0)
        vals = [sim.measure(k, t, rng=rng, runs=3, noise_sigma=0.05) for _ in range(20)]
        # min-of-3 lognormal: most samples cluster near (slightly below) base.
        assert np.median(vals) < base * 1.05
        assert all(v > 0 for v in vals)

    def test_measure_without_rng_is_noise_free(self):
        sim = TpuSimulator()
        k = dense_kernel()
        assert sim.measure(k) == sim.run(k)

    def test_v3_faster_on_large_kernels(self):
        k = dense_kernel(m=512, k=256, n=1024)
        t = default_tile(k)
        assert TpuSimulator(TPU_V3, quirk_amplitude=0).run(k, t) < TpuSimulator(
            TPU_V2, quirk_amplitude=0
        ).run(k, t)

    def test_quirk_amplitude_zero_is_clean(self):
        k = dense_kernel()
        t = default_tile(k)
        sim = TpuSimulator(quirk_amplitude=0.0)
        assert sim.breakdown(k, t).quirk == 1.0

    def test_quirk_bounded(self):
        sim = TpuSimulator(quirk_amplitude=0.12)
        k = dense_kernel()
        for t in enumerate_tile_sizes(k)[:10]:
            q = sim.breakdown(k, t).quirk
            assert 0.8 < q < 1.25

    def test_breakdown_total_positive_components(self):
        sim = TpuSimulator()
        k = dense_kernel()
        bd = sim.breakdown(k, default_tile(k))
        assert bd.total > 0
        assert bd.compute > 0
        assert bd.transfer_out > 0
        assert bd.iterations >= 1

    def test_program_runtime_additive(self):
        sim = TpuSimulator()
        k1, k2 = dense_kernel(), dense_kernel(m=128)
        total = sim.run_program([k1, k2])
        assert total == pytest.approx(sim.run(k1) + sim.run(k2))

    def test_tiny_tiles_slower_than_default(self):
        sim = TpuSimulator(quirk_amplitude=0)
        k = dense_kernel()
        tiny = TileConfig((1, 1))
        assert sim.run(k, tiny) > sim.run(k, default_tile(k))

    def test_misaligned_minor_tile_penalized(self):
        sim = TpuSimulator(quirk_amplitude=0)
        k = dense_kernel(m=256, k=128, n=512)
        aligned = TileConfig((64, 128))
        misaligned = TileConfig((64, 144))  # same-ish volume, off-lane minor
        per_aligned = sim.breakdown(k, aligned)
        per_mis = sim.breakdown(k, misaligned)
        # Per-element cost should be worse for the misaligned tile.
        a_cost = per_aligned.total * aligned.volume / aligned.volume
        assert per_mis.transfer_in / misaligned.volume > per_aligned.transfer_in / aligned.volume * 0.9

    def test_schedule_cache_consistency(self):
        sim = TpuSimulator()
        k = dense_kernel()
        tiles = enumerate_tile_sizes(k)[:5]
        first = [sim.run(k, t) for t in tiles]
        second = [sim.run(k, t) for t in tiles]  # cached path
        assert first == second
