"""Tracing + telemetry registry + HTTP ops gateway.

The observability layer's contracts, each pinned where it can actually
break: trace contexts must round-trip the wire without confusing old
peers, worker spans must assemble across the process boundary into one
tree, the trace ring buffer must stay bounded, sampling must be a pure
function of the trace id, the registry must stay consistent under
concurrent writers, the Prometheus exposition must be well-formed, and
the gateway must answer over a real socket.
"""
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.compiler import enumerate_tile_sizes
from repro.data import Scalers, build_tile_dataset
from repro.models import LearnedPerformanceModel, ModelConfig
from repro.models.trainer import TrainResult
from repro.serving import (
    AlertEngine,
    ContinuousProfiler,
    CostModelService,
    MetricsGateway,
    OpsJournal,
    ServiceConfig,
    ServiceEvaluator,
    TelemetryRegistry,
    ThresholdRule,
    TraceContext,
    Tracer,
    decode_request,
    encode_request,
    slo_burn_rate,
    trace_unit_hash,
)
from repro.serving.http_gateway import PROMETHEUS_CONTENT_TYPE
from repro.serving.protocol import TileScoresRequest
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=4, max_tiles_per_kernel=6, seed=0
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


@pytest.fixture(scope="module")
def result_a(corpus):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=0)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


def _tile_request(record, trace=None):
    tiles = enumerate_tile_sizes(record.kernel)[:4]
    return TileScoresRequest(kernel=record.kernel, tiles=tiles, trace=trace)


# ---------------------------------------------------------------------- #
# wire round-trip + backwards compatibility
# ---------------------------------------------------------------------- #


class TestWireRoundTrip:
    def test_context_round_trips_through_wire_dict(self):
        ctx = TraceContext(trace_id="t-abc-1", span_id="s-abc-2")
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_malformed_wire_entries_decode_to_none(self):
        for entry in (None, 42, "t-1", [], {}, {"trace_id": "t"}, {"span_id": "s"},
                      {"trace_id": 1, "span_id": "s"}):
            assert TraceContext.from_wire(entry) is None

    def test_untraced_request_bytes_carry_no_trace_key(self, corpus):
        """New-writer/old-reader compatibility: a request without a trace
        serializes byte-identically to the pre-telemetry format — no
        ``trace`` key for an old peer to choke on (or even see)."""
        records, _ = corpus
        request = _tile_request(records[0])
        payload = json.loads(request.to_bytes().split(b"\n", 1)[0])
        assert "trace" not in payload

    def test_traced_request_round_trips_through_codec(self, corpus):
        records, _ = corpus
        ctx = TraceContext(trace_id="t-deadbeef-1", span_id="s-deadbeef-2")
        request = _tile_request(records[0], trace=ctx)
        decoded = decode_request(encode_request(request))
        assert decoded.trace == ctx
        assert decoded.cache_key() == request.cache_key()

    def test_old_reader_payload_without_trace_decodes(self, corpus):
        """Old-writer/new-reader compatibility: bytes from a peer that
        has never heard of tracing decode with ``trace=None``."""
        records, _ = corpus
        frame = encode_request(_tile_request(records[0]))
        payload = json.loads(
            _tile_request(records[0]).to_bytes().split(b"\n", 1)[0]
        )
        assert "trace" not in payload  # genuinely old-format bytes
        decoded = decode_request(frame)
        assert decoded.trace is None

    def test_trace_never_contaminates_the_cache_key(self, corpus):
        records, _ = corpus
        bare = _tile_request(records[0])
        traced = _tile_request(
            records[0], trace=TraceContext(trace_id="t-1", span_id="s-1")
        )
        assert bare.cache_key() == traced.cache_key()


# ---------------------------------------------------------------------- #
# sampling
# ---------------------------------------------------------------------- #


class TestSampling:
    def test_unit_hash_is_deterministic_and_in_range(self):
        for i in range(100):
            value = trace_unit_hash(f"t-{i}")
            assert 0.0 <= value < 1.0
            assert value == trace_unit_hash(f"t-{i}")

    def test_salt_changes_the_subset(self):
        ids = [f"t-{i}" for i in range(256)]
        plain = {i for i in ids if trace_unit_hash(i) < 0.5}
        salted = {i for i in ids if trace_unit_hash(i, salt="x") < 0.5}
        assert plain != salted

    def test_verdict_is_identical_across_tracer_instances(self):
        a = Tracer(sample_rate=0.3)
        b = Tracer(sample_rate=0.3)
        for i in range(200):
            assert a.should_sample(f"t-{i}") == b.should_sample(f"t-{i}")

    def test_rate_extremes(self):
        assert all(Tracer(sample_rate=1.0).should_sample(f"t-{i}") for i in range(20))
        assert not any(Tracer(sample_rate=0.0).should_sample(f"t-{i}") for i in range(20))

    def test_sampled_fraction_tracks_the_rate(self):
        tracer = Tracer(sample_rate=0.25)
        hits = sum(tracer.should_sample(f"t-{i}") for i in range(4000))
        assert 0.20 < hits / 4000 < 0.30

    def test_sampled_out_ingress_records_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        request = type("R", (), {"trace": None})()
        assert tracer.ingress(request) is None
        assert tracer.unsampled == 1
        assert tracer.snapshot()["spans_recorded"] == 0.0

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


# ---------------------------------------------------------------------- #
# span recording + tree assembly
# ---------------------------------------------------------------------- #


class TestTraceAssembly:
    def test_tree_nests_children_under_parents(self):
        tracer = Tracer()
        ctx = tracer.ingress(type("R", (), {"trace": None})())
        with tracer.span(ctx, "outer") as outer:
            tracer.event(outer, "marker", attrs={"k": "v"})
        tracer.finish(ctx)
        tree = tracer.trace(ctx.trace_id)
        assert tree["span_count"] == 3
        root = tree["roots"][0]
        assert root["name"] == "request"
        assert root["end"] is not None
        outer_node = root["children"][0]
        assert outer_node["name"] == "outer"
        assert outer_node["children"][0]["name"] == "marker"
        assert outer_node["children"][0]["status"] == "event"

    def test_remote_parent_adopted_at_ingress(self):
        """A request that arrives already carrying a context keeps its
        trace id, and the server root hangs under the remote span."""
        tracer = Tracer()
        remote = TraceContext(trace_id="t-client-1", span_id="s-client-1")
        ctx = tracer.ingress(type("R", (), {"trace": remote})())
        assert ctx.trace_id == "t-client-1"
        tree = tracer.trace("t-client-1")
        # The remote parent span lives in another process; the local
        # span still renders, as a root.
        assert tree["roots"][0]["parent_id"] == "s-client-1"

    def test_raw_spans_from_another_process_join_the_tree(self):
        tracer = Tracer()
        ctx = tracer.ingress(type("R", (), {"trace": None})())
        tracer.record_raw(
            {
                "trace_id": ctx.trace_id,
                "parent_id": ctx.span_id,
                "name": "worker.forward",
                "start": 1.0,
                "end": 2.0,
                "process": "worker-3",
                "attrs": {"pid": 12345},
            }
        )
        tree = tracer.trace(ctx.trace_id)
        worker = tree["roots"][0]["children"][0]
        assert worker["name"] == "worker.forward"
        assert worker["process"] == "worker-3"
        assert worker["attrs"]["pid"] == 12345

    def test_record_raw_without_trace_id_is_a_noop(self):
        tracer = Tracer()
        tracer.record_raw({"name": "orphan"})
        assert tracer.snapshot()["spans_recorded"] == 0.0

    def test_span_context_manager_marks_errors(self):
        tracer = Tracer()
        ctx = tracer.ingress(type("R", (), {"trace": None})())
        with pytest.raises(RuntimeError):
            with tracer.span(ctx, "doomed"):
                raise RuntimeError("boom")
        tree = tracer.trace(ctx.trace_id)
        assert tree["roots"][0]["children"][0]["status"] == "error"

    def test_render_is_ascii_and_mentions_every_span(self):
        tracer = Tracer()
        ctx = tracer.ingress(type("R", (), {"trace": None})())
        with tracer.span(ctx, "stage"):
            pass
        tracer.finish(ctx)
        text = tracer.render(ctx.trace_id)
        assert "request" in text and "stage" in text
        assert "└──" in text
        assert tracer.render("t-missing").endswith("not retained")

    def test_ring_buffer_bounds_and_eviction_accounting(self):
        tracer = Tracer(max_traces=4)
        ids = []
        for _ in range(10):
            ctx = tracer.ingress(type("R", (), {"trace": None})())
            tracer.finish(ctx)
            ids.append(ctx.trace_id)
        snap = tracer.snapshot()
        assert snap["traces_retained"] == 4.0
        assert snap["traces_started"] == 10.0
        assert snap["traces_evicted"] == 6.0
        # The newest four survive, oldest first in the buffer.
        assert [t["trace_id"] for t in tracer.recent(10)] == ids[-1:-5:-1]
        assert tracer.trace(ids[0]) is None
        # Canonical counter alias alongside the legacy key.
        assert snap["trace_ring_evicted"] == 6.0

    def test_eviction_counter_lands_in_exposition_as_a_total(self):
        tracer = Tracer(max_traces=1)
        for _ in range(3):
            ctx = tracer.ingress(type("R", (), {"trace": None})())
            tracer.finish(ctx)
        registry = TelemetryRegistry()
        registry.register_collector("tracer", tracer.snapshot)
        registry.mark_counter("trace_ring_evicted")
        text = registry.prometheus()
        assert "repro_trace_ring_evicted_total 2" in text

    def test_chrome_trace_export(self):
        tracer = Tracer()
        ctx = tracer.ingress(type("R", (), {"trace": None})())
        with tracer.span(ctx, "stage") as stage:
            tracer.event(stage, "marker")
        tracer.finish(ctx)
        document = tracer.chrome_trace(ctx.trace_id)
        assert document["otherData"]["trace_id"] == ctx.trace_id
        events = document["traceEvents"]
        phases = [e["ph"] for e in events]
        # One process_name metadata record, complete spans, an instant
        # event for the zero-duration marker.
        assert "M" in phases and "X" in phases and "i" in phases
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"request", "stage"}
        for event in complete:
            # Timestamps/durations are microseconds.
            assert event["ts"] >= 0 and event["dur"] > 0
            assert event["args"]["span_id"]
        # The document is directly JSON-serializable (chrome://tracing
        # loads it as-is).
        json.dumps(document)

    def test_chrome_trace_unknown_id_is_none(self):
        assert Tracer().chrome_trace("t-missing") is None


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_instruments_are_deduplicated_by_name(self):
        registry = TelemetryRegistry()
        assert registry.counter("hits") is registry.counter("hits")
        with pytest.raises(ValueError):
            registry.gauge("hits")

    def test_counters_refuse_to_go_down(self):
        with pytest.raises(ValueError):
            TelemetryRegistry().counter("c").inc(-1)

    def test_collectors_merge_in_registration_order(self):
        registry = TelemetryRegistry()
        registry.register_collector("a", lambda: {"x": 1.0, "shared": "a"})
        registry.register_collector("b", lambda: {"y": 2.0, "shared": "b"})
        snap = registry.collect()
        assert snap["x"] == 1.0 and snap["y"] == 2.0
        assert snap["shared"] == "b"  # later registration wins

    def test_failing_collector_is_skipped_and_counted(self):
        registry = TelemetryRegistry()
        registry.register_collector("ok", lambda: {"fine": 1.0})
        registry.register_collector("bad", lambda: 1 / 0)
        snap = registry.collect()
        assert snap["fine"] == 1.0
        assert snap["telemetry_collector_errors"] == 1.0

    def test_snapshot_consistent_under_concurrent_writers(self):
        """Writers hammer instruments and a collector-backed component
        while readers collect: no reader may raise, per-snapshot
        monotonicity holds for counters, and the final totals are
        exact."""
        registry = TelemetryRegistry()
        counter = registry.counter("writes")
        histogram = registry.histogram("lat", buckets=(0.5, 1.0))
        component = {"value": 0}
        component_lock = threading.Lock()

        def component_snapshot():
            with component_lock:
                return {"component_value": float(component["value"])}

        registry.register_collector("component", component_snapshot)
        writers, per_writer = 4, 500
        stop = threading.Event()
        errors: list[BaseException] = []

        def read():
            try:
                last = 0.0
                while not stop.is_set():
                    snap = registry.collect()
                    assert last <= snap["writes"] <= writers * per_writer
                    last = snap["writes"]
                    hist = snap["lat"]
                    assert hist["buckets"]["0.5"] <= hist["buckets"]["1.0"] <= hist["count"]
            except BaseException as exc:
                errors.append(exc)

        def write():
            for i in range(per_writer):
                counter.inc()
                histogram.observe(0.25 if i % 2 else 0.75)
                with component_lock:
                    component["value"] += 1

        readers = [threading.Thread(target=read) for _ in range(2)]
        for t in readers:
            t.start()
        writer_threads = [threading.Thread(target=write) for _ in range(writers)]
        for t in writer_threads:
            t.start()
        for t in writer_threads:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors
        snap = registry.collect()
        assert snap["writes"] == float(writers * per_writer)
        assert snap["component_value"] == float(writers * per_writer)
        assert snap["lat"]["count"] == float(writers * per_writer)

    def test_slo_burn_rate(self):
        assert slo_burn_rate(0.01, 0.99) == pytest.approx(1.0)
        assert slo_burn_rate(0.05, 0.99) == pytest.approx(5.0)
        assert slo_burn_rate(0.0, 1.0) == 0.0
        assert slo_burn_rate(0.001, 1.0) == 1e9


class TestPrometheusExposition:
    def test_counters_get_total_suffix_and_type_lines(self):
        registry = TelemetryRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(2.5)
        text = registry.prometheus()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 2.5" in text
        assert text.endswith("\n")

    def test_labeled_families_become_labeled_series(self):
        registry = TelemetryRegistry()
        registry.register_collector(
            "stats",
            lambda: {
                "per_shard": {"0": {"requests": 5.0}, "1": {"requests": 7.0}},
                "per_version": {"v1": {"served": 2.0}},
            },
        )
        text = registry.prometheus()
        assert 'repro_per_shard_requests{shard="0"} 5' in text
        assert 'repro_per_shard_requests{shard="1"} 7' in text
        assert 'repro_per_version_served{version="v1"} 2' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = TelemetryRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = registry.prometheus()
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1.0"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_count 4" in text
        assert "repro_lat_sum 6.05" in text

    def test_strings_land_in_the_info_series_and_lists_are_skipped(self):
        registry = TelemetryRegistry()
        registry.register_collector(
            "meta",
            lambda: {
                "active_version": 'v"1\\x',
                "transitions": [{"noise": 1}],
            },
        )
        text = registry.prometheus()
        assert 'active_version="v\\"1\\\\x"' in text
        assert "repro_info" in text
        assert "transitions" not in text

    def test_label_values_escape_newlines(self):
        """An unescaped newline in a label value truncates the sample
        line and corrupts the whole scrape — the exposition format
        requires it spelled \\n."""
        registry = TelemetryRegistry()
        registry.register_collector(
            "meta",
            lambda: {"per_shard": {"bad\nname": {"x": 1.0}}},
        )
        text = registry.prometheus()
        assert 'shard="bad\\nname"' in text
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            # Every sample line still ends in a parsable value.
            float(line.rpartition(" ")[2])

    def test_nonfinite_gauges_render_per_exposition_format(self):
        """Prometheus parsers accept NaN/+Inf/-Inf, not Python's
        nan/inf spellings."""
        registry = TelemetryRegistry()
        registry.gauge("g_nan").set(float("nan"))
        registry.gauge("g_pinf").set(float("inf"))
        registry.gauge("g_ninf").set(float("-inf"))
        text = registry.prometheus()
        assert "repro_g_nan NaN" in text
        assert "repro_g_pinf +Inf" in text
        assert "repro_g_ninf -Inf" in text
        assert "nan\n" not in text and " inf" not in text

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line must be `name{labels} value` with a
        float-parsable value — the format Prometheus actually scrapes."""
        registry = TelemetryRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(0.2)
        registry.register_collector(
            "s", lambda: {"per_shard": {"0": {"x": 1.0}}, "note": "hello world"}
        )
        for line in registry.prometheus().strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
                continue
            name_part, _, value_part = line.rpartition(" ")
            assert name_part and not name_part.endswith(" ")
            float(value_part)  # must parse


# ---------------------------------------------------------------------- #
# end-to-end: spans across the process boundary
# ---------------------------------------------------------------------- #


class TestServiceTracing:
    def test_trace_spans_all_four_layers_including_worker_subprocess(
        self, corpus, result_a
    ):
        """One sampled request through the process executor must leave a
        tree with frontend, scheduler, executor, and worker spans — the
        worker span recorded in a different pid than the service."""
        records, _ = corpus
        tracer = Tracer(sample_rate=1.0)
        service = CostModelService(
            result_a,
            ServiceConfig(executor="process", replicas=2, result_cache_entries=0),
            tracer=tracer,
        ).start()
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            record = records[0]
            client.score_tiles_batched(
                record.kernel, enumerate_tile_sizes(record.kernel)[:4]
            )
            traces = tracer.recent(5)
            assert traces, "sampled request left no trace"
            tree = tracer.trace(traces[0]["trace_id"])
            spans = []

            def flatten(node):
                spans.append(node)
                for kid in node["children"]:
                    flatten(kid)

            for root in tree["roots"]:
                flatten(root)
            by_process = {s["process"] for s in spans}
            assert "frontend" in by_process
            assert "scheduler" in by_process
            assert "executor" in by_process
            worker_spans = [
                s for s in spans if s["process"].startswith("worker-")
            ]
            assert worker_spans, f"no worker span in {sorted(by_process)}"
            assert worker_spans[0]["attrs"]["pid"] != os.getpid()
            names = {s["name"] for s in spans}
            assert {"request", "queue.wait", "executor.dispatch",
                    "worker.forward"} <= names
            # The worker span hangs under the executor dispatch span.
            dispatch_ids = {
                s["span_id"] for s in spans if s["name"] == "executor.dispatch"
            }
            assert worker_spans[0]["parent_id"] in dispatch_ids
        finally:
            service.stop()

    def test_disabled_tracer_attaches_nothing(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=0)
        ).start()
        try:
            client = ServiceEvaluator(service)
            record = records[0]
            client.score_tiles_batched(
                record.kernel, enumerate_tile_sizes(record.kernel)[:4]
            )
            assert service.tracer is None
            assert "trace_sample_rate" not in service.metrics()
        finally:
            service.stop()

    def test_response_carries_the_trace_id(self, corpus, result_a):
        records, _ = corpus
        tracer = Tracer(sample_rate=1.0)
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=4),
            tracer=tracer,
        ).start()
        try:
            record = records[0]
            request = _tile_request(record)
            response = service.submit(request).result(timeout=120.0)
            assert response.trace_id
            assert tracer.trace(response.trace_id) is not None
            # Second submission hits the result cache — still traced.
            cached = service.submit(_tile_request(record)).result(timeout=120.0)
            assert cached.trace_id and cached.trace_id != response.trace_id
            tree = tracer.trace(cached.trace_id)
            names = {r["name"] for r in tree["roots"]} | {
                k["name"] for r in tree["roots"] for k in r["children"]
            }
            assert "cache.hit" in names
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# HTTP gateway over a real socket
# ---------------------------------------------------------------------- #


def _get(address, path):
    host, port = address
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read()


class TestGateway:
    def test_endpoints_over_a_real_socket(self, corpus, result_a):
        records, _ = corpus
        tracer = Tracer(sample_rate=1.0)
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=0),
            tracer=tracer,
        ).start()
        try:
            with MetricsGateway(service) as gateway:
                client = ServiceEvaluator(service, timeout_s=120.0)
                record = records[0]
                client.score_tiles_batched(
                    record.kernel, enumerate_tile_sizes(record.kernel)[:4]
                )

                status, ctype, body = _get(gateway.address, "/healthz")
                health = json.loads(body)
                assert status == 200 and ctype.startswith("application/json")
                assert health["status"] == "ok" and health["tracing"] is True

                status, ctype, body = _get(gateway.address, "/metrics")
                assert status == 200 and ctype == PROMETHEUS_CONTENT_TYPE
                text = body.decode()
                assert "repro_requests_total" in text
                assert "repro_slo_burn_rate" in text

                status, _, body = _get(gateway.address, "/metrics?format=json")
                snap = json.loads(body)
                assert snap["requests"] >= 1.0

                status, _, body = _get(gateway.address, "/traces/recent?n=5")
                recent = json.loads(body)["traces"]
                assert recent and recent[0]["span_count"] >= 1

                trace_id = recent[0]["trace_id"]
                status, _, body = _get(gateway.address, f"/traces/{trace_id}")
                tree = json.loads(body)
                assert status == 200 and tree["trace_id"] == trace_id

                status, ctype, body = _get(
                    gateway.address, f"/traces/{trace_id}?format=text"
                )
                assert status == 200 and b"request" in body

                # The gateway's own instruments land in the registry.
                status, _, body = _get(gateway.address, "/metrics?format=json")
                assert json.loads(body)["gateway_requests"] >= 6.0
        finally:
            service.stop()

    def test_observability_endpoints(self, corpus, result_a, tmp_path):
        """Chrome export, ``/profile``, ``/alerts``, ``/events/recent``,
        and the per-endpoint access family — the active-observability
        surface over a real socket."""
        records, _ = corpus
        journal = OpsJournal(tmp_path / "ops.jsonl")
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=0),
            tracer=Tracer(sample_rate=1.0),
            profiler=ContinuousProfiler(),
            journal=journal,
        ).start()
        try:
            service.attach_alerts(
                AlertEngine(
                    rules=[
                        ThresholdRule(
                            name="any_traffic", metric="requests", threshold=0.0
                        )
                    ]
                )
            )
            with MetricsGateway(service) as gateway:
                client = ServiceEvaluator(service, timeout_s=120.0)
                record = records[0]
                client.score_tiles_batched(
                    record.kernel, enumerate_tile_sizes(record.kernel)[:4]
                )
                service.alerts.evaluate()

                status, _, body = _get(gateway.address, "/traces/recent?n=1")
                trace_id = json.loads(body)["traces"][0]["trace_id"]
                status, _, body = _get(
                    gateway.address, f"/traces/{trace_id}?format=chrome"
                )
                document = json.loads(body)
                assert status == 200
                assert document["otherData"]["trace_id"] == trace_id
                assert any(e["ph"] == "X" for e in document["traceEvents"])

                status, _, body = _get(gateway.address, "/profile")
                profile = json.loads(body)
                assert status == 200
                stages = profile["stages"]
                assert stages["forward"]["count"] >= 1
                assert stages["queue.wait"]["exemplar"] == trace_id
                status, _, body = _get(gateway.address, "/profile?format=folded")
                assert status == 200 and b"request;forward;executor" in body

                status, _, body = _get(gateway.address, "/alerts")
                board = json.loads(body)
                assert status == 200 and board["firing"] >= 1
                assert board["alerts"][0]["name"] == "any_traffic"

                status, _, body = _get(gateway.address, "/events/recent?n=10")
                events = json.loads(body)["events"]
                assert status == 200
                assert any(e["kind"] == "alert.transition" for e in events)

                status, _, body = _get(gateway.address, "/metrics")
                text = body.decode()
                assert 'repro_gateway_accesses_total{endpoint="profile"}' in text
                assert 'repro_gateway_accesses_total{endpoint="alerts"}' in text
        finally:
            service.stop()
            journal.close()

    def test_observability_endpoints_503_when_not_attached(
        self, corpus, result_a
    ):
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=0)
        ).start()
        try:
            with MetricsGateway(service) as gateway:
                for path in ("/profile", "/alerts", "/events/recent"):
                    with pytest.raises(urllib.error.HTTPError) as exc:
                        _get(gateway.address, path)
                    assert exc.value.code == 503
        finally:
            service.stop()

    def test_error_statuses(self, corpus, result_a):
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=0)
        ).start()
        try:
            with MetricsGateway(service) as gateway:
                with pytest.raises(urllib.error.HTTPError) as exc:
                    _get(gateway.address, "/nope")
                assert exc.value.code == 404
                # No tracer attached: trace endpoints are 503.
                with pytest.raises(urllib.error.HTTPError) as exc:
                    _get(gateway.address, "/traces/recent")
                assert exc.value.code == 503
                # Counters are incremented after the response is written,
                # so give the handler thread a beat to finish accounting.
                for _ in range(100):
                    errors = json.loads(service.telemetry.json())[
                        "gateway_errors"
                    ]
                    if errors >= 2.0:
                        break
                    time.sleep(0.01)
                assert errors >= 2.0
        finally:
            service.stop()

    def test_unknown_trace_is_404_with_tracer(self, corpus, result_a):
        service = CostModelService(
            result_a,
            ServiceConfig(replicas=1, result_cache_entries=0),
            tracer=Tracer(sample_rate=1.0),
        ).start()
        try:
            with MetricsGateway(service) as gateway:
                with pytest.raises(urllib.error.HTTPError) as exc:
                    _get(gateway.address, "/traces/t-missing")
                assert exc.value.code == 404
                with pytest.raises(urllib.error.HTTPError) as exc:
                    _get(gateway.address, "/traces/recent?n=zebra")
                assert exc.value.code == 400
        finally:
            service.stop()

    def test_close_is_idempotent_and_port_is_ephemeral(self, corpus, result_a):
        service = CostModelService(
            result_a, ServiceConfig(replicas=1, result_cache_entries=0)
        )
        gateway = MetricsGateway(service)
        assert gateway.address[1] > 0
        gateway.close()
        gateway.close()
        with pytest.raises((ConnectionError, urllib.error.URLError, OSError)):
            _get(gateway.address, "/healthz")
