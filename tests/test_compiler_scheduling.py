"""Tests for the list scheduler and static analyses."""
import pytest

from repro.compiler import (
    analyze,
    critical_path,
    functional_unit,
    instruction_cycles,
    list_schedule,
    live_tensor_peak,
    operational_intensity,
)
from repro.hlo import GraphBuilder, Instruction, Opcode, Shape


def wide_graph(width=4):
    """One parameter feeding `width` independent tanh ops."""
    b = GraphBuilder("wide")
    x = b.parameter((1024,))
    for _ in range(width):
        b.tanh(x)
    return b.build()


def chain(depth=4):
    b = GraphBuilder("chain")
    x = b.parameter((1024,))
    for _ in range(depth):
        x = b.tanh(x)
    return b.build()


class TestFunctionalUnits:
    def test_unit_assignment(self):
        b = GraphBuilder("g")
        x = b.parameter((4, 4))
        w = b.constant((4, 4))
        d = b.dot(x, w)
        t = b.tanh(x)
        r = b.reshape(x, (16,))
        a = b.add(x, x)
        g = b.build()
        assert functional_unit(g.get(d)) == "mxu"
        assert functional_unit(g.get(t)) == "trans"
        assert functional_unit(g.get(r)) == "perm"
        assert functional_unit(g.get(a)) == "vpu"

    def test_leaf_nodes_free(self):
        b = GraphBuilder("g")
        x = b.parameter((1024,))
        g = b.build()
        assert instruction_cycles(g.get(x)) == 0.0

    def test_cycles_scale_with_elements(self):
        b = GraphBuilder("g")
        x = b.parameter((1024,))
        y = b.parameter((2048,))
        tx = b.tanh(x)
        ty = b.tanh(y)
        g = b.build()
        assert instruction_cycles(g.get(ty)) == pytest.approx(
            2 * instruction_cycles(g.get(tx))
        )


class TestSchedules:
    def test_makespan_at_least_critical_path(self):
        g = chain(6)
        r = list_schedule(g)
        assert r.length_cycles >= r.critical_path_cycles - 1e-9

    def test_makespan_at_least_busiest_unit(self):
        g = wide_graph(8)
        r = list_schedule(g)
        assert r.length_cycles >= max(r.unit_busy_cycles.values()) - 1e-9

    def test_serial_chain_equals_critical_path(self):
        g = chain(5)
        r = list_schedule(g)
        assert r.length_cycles == pytest.approx(r.critical_path_cycles)
        assert r.issue_stall_cycles == pytest.approx(0.0)

    def test_wide_graph_serializes_on_one_unit(self):
        # All tanh ops share the transcendental unit; makespan = sum.
        g = wide_graph(4)
        r = list_schedule(g)
        assert r.length_cycles == pytest.approx(r.unit_busy_cycles["trans"])
        assert r.length_cycles > r.critical_path_cycles

    def test_schedule_scales_linearly(self):
        g = chain(4)
        r1 = list_schedule(g, scale=1.0)
        r2 = list_schedule(g, scale=0.25)
        assert r2.length_cycles == pytest.approx(0.25 * r1.length_cycles)

    def test_critical_path_scales_linearly(self):
        g = chain(4)
        assert critical_path(g, 0.5) == pytest.approx(0.5 * critical_path(g, 1.0))

    def test_empty_ish_graph(self):
        b = GraphBuilder("g")
        b.parameter((4,))
        g = b.build()
        r = list_schedule(g)
        assert r.length_cycles == 0.0


class TestLivePeak:
    def test_chain_has_constant_live_peak(self):
        assert live_tensor_peak(chain(10)) <= 2

    def test_wide_graph_accumulates_live_values(self):
        # Sinks never die, so peak grows with width.
        assert live_tensor_peak(wide_graph(8)) == 8


class TestStaticAnalysis:
    def test_flops_bytes_transcendental(self):
        b = GraphBuilder("g")
        x = b.parameter((64, 64))
        w = b.constant((64, 64))
        y = b.dot(x, w)
        z = b.tanh(y)
        g = b.build()
        a = analyze(g)
        assert a.flops >= 2 * 64 * 64 * 64  # dot flops
        # Parameter + the >1024-element weight constant both stream from HBM.
        assert a.bytes_read == 2 * 64 * 64 * 4
        assert a.bytes_written == 64 * 64 * 4
        assert a.transcendental_count == 64 * 64

    def test_large_constants_count_as_reads(self):
        b = GraphBuilder("g")
        x = b.parameter((4, 4))
        w = b.constant((1024, 1024))  # > 1024 elements
        g = b.build()
        a = analyze(g)
        assert a.bytes_read == 4 * 4 * 4 + 1024 * 1024 * 4

    def test_reduce_flops_use_input_elements(self):
        b = GraphBuilder("g")
        x = b.parameter((128, 64))
        r = b.reduce(x, [1], kind="sum")
        g = b.build()
        a = analyze(g)
        assert a.flops == pytest.approx(128 * 64)

    def test_operational_intensity(self):
        b = GraphBuilder("g")
        x = b.parameter((64, 64))
        w = b.constant((64, 64))
        b.dot(x, w)
        a = analyze(b.build())
        oi = operational_intensity(a)
        assert oi > 0
        from repro.compiler import StaticAnalysis

        assert operational_intensity(StaticAnalysis(0, 0, 0, 0)) == 0.0

    def test_as_tuple_order(self):
        from repro.compiler import StaticAnalysis

        a = StaticAnalysis(1.0, 2.0, 3.0, 4.0)
        assert a.as_tuple() == (1.0, 2.0, 3.0, 4.0)
