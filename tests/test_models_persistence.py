"""Tests for model save/load and fine-tuning."""
import numpy as np
import pytest

from repro.data import build_fusion_dataset, build_tile_dataset
from repro.models import (
    ModelConfig,
    TrainConfig,
    fine_tune,
    load_model,
    load_model_bytes,
    predict_fusion_runtimes,
    predict_tile_scores,
    save_model,
    save_model_bytes,
    train_fusion_model,
    train_tile_model,
)
from repro.workloads import sequence, vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def tile_result():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=5, max_tiles_per_kernel=6, seed=0
    )
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    res = train_tile_model(ds.records, cfg, TrainConfig(steps=40, log_every=20))
    return ds, res


@pytest.fixture(scope="module")
def fusion_result():
    ds = build_fusion_dataset([sequence.char2feats(0)], configs_per_program=2, seed=0)
    cfg = ModelConfig(task="fusion", reduction="column-wise", loss="mse", **SMALL)
    res = train_fusion_model(ds.records, cfg, TrainConfig(steps=40, batch_size=8, log_every=20))
    return ds, res


class TestSaveLoad:
    def test_tile_roundtrip(self, tile_result, tmp_path):
        ds, res = tile_result
        path = tmp_path / "tile_model.npz"
        save_model(path, res)
        loaded = load_model(path)
        assert loaded.model.config == res.model.config
        r = ds.records[0]
        np.testing.assert_allclose(
            predict_tile_scores(res.model, res.scalers, r),
            predict_tile_scores(loaded.model, loaded.scalers, r),
            rtol=1e-3, atol=1e-6,
        )

    def test_fusion_roundtrip(self, fusion_result, tmp_path):
        ds, res = fusion_result
        path = tmp_path / "fusion_model.npz"
        save_model(path, res)
        loaded = load_model(path)
        np.testing.assert_allclose(
            predict_fusion_runtimes(res.model, res.scalers, ds.records[:4]),
            predict_fusion_runtimes(loaded.model, loaded.scalers, ds.records[:4]),
            rtol=1e-3, atol=1e-6,
        )

    def test_loaded_model_in_eval_mode(self, tile_result, tmp_path):
        _, res = tile_result
        path = tmp_path / "m.npz"
        save_model(path, res)
        assert not load_model(path).model.training

    def test_bytes_roundtrip_no_disk(self, tile_result):
        ds, res = tile_result
        blob = save_model_bytes(res)
        loaded = load_model_bytes(blob)
        assert loaded.model.config == res.model.config
        assert not loaded.model.training
        for name, arr in res.model.state_dict().items():
            np.testing.assert_allclose(
                arr, loaded.model.state_dict()[name], rtol=1e-5, atol=1e-8
            )
        r = ds.records[0]
        np.testing.assert_allclose(
            predict_tile_scores(res.model, res.scalers, r),
            predict_tile_scores(loaded.model, loaded.scalers, r),
            rtol=1e-3, atol=1e-6,
        )

    def test_bytes_and_file_forms_are_interchangeable(self, tile_result, tmp_path):
        _, res = tile_result
        path = tmp_path / "m.npz"
        path.write_bytes(save_model_bytes(res))
        via_file = load_model(path)
        via_bytes = load_model_bytes(save_model_bytes(res))
        # The two transports must agree exactly — same archive format.
        for name, arr in via_bytes.model.state_dict().items():
            np.testing.assert_array_equal(arr, via_file.model.state_dict()[name])

    def test_scaler_state_preserved(self, tile_result, tmp_path):
        _, res = tile_result
        path = tmp_path / "m.npz"
        save_model(path, res)
        loaded = load_model(path)
        np.testing.assert_allclose(res.scalers.node.lo, loaded.scalers.node.lo)
        np.testing.assert_allclose(res.scalers.tile.hi, loaded.scalers.tile.hi)


class TestFineTune:
    def test_fine_tune_improves_on_new_program(self, tile_result):
        ds, res = tile_result
        new_ds = build_tile_dataset(
            [vision.ssd(0)], max_kernels_per_program=5, max_tiles_per_kernel=6, seed=2
        )
        from repro.evaluation import evaluate_tile_task

        def quality(model_result):
            truths = [r.runtimes for r in new_ds.records]
            scores = [
                predict_tile_scores(model_result.model, model_result.scalers, r)
                for r in new_ds.records
            ]
            return evaluate_tile_task(truths, scores).kendall

        before = quality(res)
        tuned = fine_tune(res, new_ds.records, TrainConfig(steps=120, log_every=40))
        after = quality(tuned)
        assert after >= before - 0.05  # typically improves; never collapses

    def test_fine_tune_keeps_scalers(self, tile_result):
        ds, res = tile_result
        tuned = fine_tune(res, ds.records, TrainConfig(steps=10, log_every=10))
        assert tuned.scalers is res.scalers

    def test_fine_tune_extends_history(self, fusion_result):
        ds, res = fusion_result
        n = len(res.loss_history)
        tuned = fine_tune(res, ds.records, TrainConfig(steps=20, batch_size=8, log_every=10))
        assert len(tuned.loss_history) > n
