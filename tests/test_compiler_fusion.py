"""Tests for the fusion configuration space and default heuristic."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    FusionConfig,
    FusionParams,
    apply_fusion,
    default_fusion,
    fuse_program,
    fusible_edges,
)
from repro.hlo import GraphBuilder, Opcode
from repro.workloads import vision


def mlp_graph():
    b = GraphBuilder("mlp")
    x = b.parameter((8, 16))
    y = b.dense(x, 32)
    z = b.dense(y, 4, activation="tanh")
    return b.build()


class TestFusibleEdges:
    def test_no_parameter_edges(self):
        g = mlp_graph()
        edges = fusible_edges(g)
        for producer, _ in edges:
            assert g.get(producer).opcode is not Opcode.PARAMETER

    def test_edges_are_real_graph_edges(self):
        g = mlp_graph()
        for producer, consumer in fusible_edges(g):
            assert producer in g.get(consumer).operands

    def test_deterministic_order(self):
        g = mlp_graph()
        assert fusible_edges(g) == fusible_edges(g)


class TestFusionConfig:
    def test_none_and_all(self):
        assert not any(FusionConfig.none(5).decisions)
        assert all(FusionConfig.all(5).decisions)

    def test_flip(self):
        c = FusionConfig.none(4).flip(2)
        assert c.decisions == (False, False, True, False)

    def test_mutate_changes_some_bits(self):
        rng = np.random.default_rng(0)
        c = FusionConfig.none(16)
        m = c.mutate(rng, num_flips=3)
        assert sum(a != b for a, b in zip(c.decisions, m.decisions)) in (1, 2, 3)

    def test_random_respects_probability(self):
        rng = np.random.default_rng(0)
        c = FusionConfig.random(1000, rng, p=0.0)
        assert not any(c.decisions)
        c = FusionConfig.random(1000, rng, p=1.0)
        assert all(c.decisions)

    def test_wrong_length_rejected(self):
        g = mlp_graph()
        with pytest.raises(ValueError):
            apply_fusion(g, FusionConfig.none(1))


class TestApplyFusion:
    def test_groups_partition_all_nodes(self):
        g = mlp_graph()
        edges = fusible_edges(g)
        groups = apply_fusion(g, FusionConfig.all(len(edges)))
        all_ids = sorted(i for grp in groups for i in grp)
        assert all_ids == sorted(g.instructions)

    def test_none_config_gives_singleton_compute_groups(self):
        g = mlp_graph()
        edges = fusible_edges(g)
        groups = apply_fusion(g, FusionConfig.none(len(edges)))
        # Non-leaf nodes stay alone (constants may attach to consumers).
        for grp in groups:
            non_leaf = [
                i
                for i in grp
                if g.get(i).opcode not in (Opcode.PARAMETER, Opcode.CONSTANT)
            ]
            assert len(non_leaf) <= 1

    def test_contraction_cap_enforced(self):
        g = mlp_graph()
        edges = fusible_edges(g)
        params = FusionParams(max_contractions_per_kernel=1)
        groups = apply_fusion(g, FusionConfig.all(len(edges)), params)
        from repro.hlo import is_contraction

        for grp in groups:
            n = sum(1 for i in grp if is_contraction(g.get(i).opcode))
            assert n <= 1

    def test_size_cap_enforced(self):
        g = mlp_graph()
        edges = fusible_edges(g)
        params = FusionParams(max_ops_per_kernel=3)
        groups = apply_fusion(g, FusionConfig.all(len(edges)), params)
        for grp in groups:
            non_leaf = [
                i
                for i in grp
                if g.get(i).opcode not in (Opcode.PARAMETER, Opcode.CONSTANT)
            ]
            assert len(non_leaf) <= 3


class TestDefaultFusion:
    def test_default_fusion_reduces_kernel_count(self):
        g = vision.resnet_v1(0).graph
        unfused = fuse_program(g, config=FusionConfig.none(len(fusible_edges(g))))
        fused = fuse_program(g)
        assert len(fused) < len(unfused)

    def test_default_fusion_keeps_outputs_materialized(self):
        g = mlp_graph()
        config = default_fusion(g)
        groups = apply_fusion(g, config)
        kernels = fuse_program(g, config=config)
        # Every program root appears as a root of some kernel.
        assert kernels

    def test_default_fusion_deterministic(self):
        g = vision.image_embed(0).graph
        assert default_fusion(g).decisions == default_fusion(g).decisions


class TestFuseProgram:
    def test_kernels_validate_and_have_kinds(self):
        p = vision.resnet_v1(1)
        for k in fuse_program(p.graph, program_name=p.name):
            k.graph.validate()
            assert k.program_name == p.name
            assert k.kind in ("fusion", "convolution", "data_formatting", "other")

    def test_kernel_indices_sequential(self):
        p = vision.ssd(0)
        kernels = fuse_program(p.graph, program_name=p.name)
        assert [k.index for k in kernels] == list(range(len(kernels)))

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.floats(0.1, 0.9))
    @settings(max_examples=10, deadline=None)
    def test_random_configs_always_legal(self, seed, p):
        g = mlp_graph()
        rng = np.random.default_rng(seed)
        config = FusionConfig.random(len(fusible_edges(g)), rng, p=p)
        kernels = fuse_program(g, config=config)
        for k in kernels:
            k.graph.validate()
        # All compute is preserved: total non-leaf ops match the program.
        total = sum(
            1
            for k in kernels
            for i in k.graph
            if i.opcode not in (Opcode.PARAMETER, Opcode.CONSTANT)
        )
        program_total = sum(
            1 for i in g if i.opcode not in (Opcode.PARAMETER, Opcode.CONSTANT)
        )
        assert total == program_total
