"""Tests for the reusable graph-construction blocks."""
import pytest

from repro.hlo import DType, GraphBuilder, Opcode
from repro.workloads.blocks import (
    conv_block,
    embedding_lookup,
    global_average_pool,
    inception_module,
    lstm_cell,
    max_pool,
    mlp,
    residual_block_v1,
    residual_block_v2,
    self_attention,
    sequence_embedding,
    transformer_layer,
    unrolled_lstm,
)


@pytest.fixture
def b():
    return GraphBuilder("blocks")


class TestConvBlocks:
    def test_conv_block_shape(self, b):
        x = b.parameter((2, 16, 16, 3))
        y = conv_block(b, x, 8)
        assert b.shape_of(y).dims == (2, 16, 16, 8)

    def test_conv_block_strides(self, b):
        x = b.parameter((2, 16, 16, 3))
        y = conv_block(b, x, 8, strides=(2, 2))
        assert b.shape_of(y).dims == (2, 8, 8, 8)

    def test_residual_v1_identity_shortcut(self, b):
        x = b.parameter((2, 8, 8, 16))
        y = residual_block_v1(b, x, 16)
        assert b.shape_of(y).dims == (2, 8, 8, 16)

    def test_residual_v1_projection_shortcut(self, b):
        x = b.parameter((2, 8, 8, 16))
        y = residual_block_v1(b, x, 32, strides=(2, 2))
        assert b.shape_of(y).dims == (2, 4, 4, 32)

    def test_residual_v2_shapes(self, b):
        x = b.parameter((2, 8, 8, 16))
        y = residual_block_v2(b, x, 32, strides=(2, 2))
        assert b.shape_of(y).dims == (2, 4, 4, 32)

    def test_inception_concatenates_towers(self, b):
        x = b.parameter((2, 8, 8, 16))
        y = inception_module(b, x, 32)
        assert b.shape_of(y).dims[:3] == (2, 8, 8)
        assert b.shape_of(y).dims[3] == 4 * max(32 // 4, 8)

    def test_pools(self, b):
        x = b.parameter((2, 8, 8, 4))
        assert b.shape_of(max_pool(b, x)).dims == (2, 4, 4, 4)
        assert b.shape_of(global_average_pool(b, x)).dims == (2, 4)


class TestSequenceBlocks:
    def test_lstm_cell_shapes(self, b):
        x = b.parameter((4, 8))
        h = b.constant((4, 16))
        c = b.constant((4, 16))
        h2, c2 = lstm_cell(b, x, h, c, 16)
        assert b.shape_of(h2).dims == (4, 16)
        assert b.shape_of(c2).dims == (4, 16)

    def test_unrolled_lstm_step_count(self, b):
        xs = [b.parameter((4, 8)) for _ in range(3)]
        outs = unrolled_lstm(b, xs, 8, 4)
        assert len(outs) == 3
        for o in outs:
            assert b.shape_of(o).dims == (4, 8)

    def test_embedding_lookups(self, b):
        e = embedding_lookup(b, batch=4, vocab=100, dim=16)
        assert b.shape_of(e).dims == (4, 16)
        s = sequence_embedding(b, batch=4, seq=7, vocab=100, dim=16)
        assert b.shape_of(s).dims == (4, 7, 16)
        ids = [i for i in b.graph if i.opcode is Opcode.PARAMETER]
        assert any(i.shape.dtype is DType.S32 for i in ids)

    def test_self_attention_preserves_seq(self, b):
        x = b.parameter((2, 6, 16))
        y = self_attention(b, x, 16)
        assert b.shape_of(y).dims == (2, 6, 16)

    def test_transformer_layer_residual_shape(self, b):
        x = b.parameter((2, 6, 16))
        y = transformer_layer(b, x, 16, ff_dim=32)
        assert b.shape_of(y).dims == (2, 6, 16)

    def test_mlp_widths(self, b):
        x = b.parameter((4, 8))
        y = mlp(b, x, [32, 16, 2], final_activation="sigmoid")
        assert b.shape_of(y).dims == (4, 2)

    def test_blocks_produce_valid_graphs(self, b):
        x = b.parameter((2, 8, 8, 3))
        y = residual_block_v1(b, conv_block(b, x, 8), 16, (2, 2))
        g = b.build()
        g.validate()
        assert any(i.opcode is Opcode.CONVOLUTION for i in g)
