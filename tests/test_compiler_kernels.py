"""Tests for kernel extraction, classification and fingerprints."""
import pytest

from repro.compiler import Kernel, classify_kernel, extract_kernels
from repro.hlo import GraphBuilder, Opcode


def conv_graph():
    b = GraphBuilder("g")
    x = b.parameter((2, 8, 8, 3))
    k = b.constant((3, 3, 3, 8))
    y = b.conv2d(x, k)
    z = b.relu(y)
    return b.build(), y, z


class TestClassification:
    def test_convolution_kernel(self):
        g, y, z = conv_graph()
        sub = g.subgraph(set(g.instructions))
        assert classify_kernel(sub) == "convolution"

    def test_data_formatting_kernel(self):
        b = GraphBuilder("g")
        x = b.parameter((4, 6))
        y = b.transpose(x, (1, 0))
        z = b.reshape(y, (24,))
        g = b.build()
        assert classify_kernel(g) == "data_formatting"
        k = Kernel(graph=g, kind=classify_kernel(g))
        assert not k.has_tile_options()

    def test_fusion_kernel(self):
        b = GraphBuilder("g")
        x = b.parameter((4,))
        y = b.tanh(b.exp(x))
        g = b.build()
        assert classify_kernel(g) == "fusion"

    def test_single_op_is_other(self):
        b = GraphBuilder("g")
        x = b.parameter((4,))
        y = b.tanh(x)
        g = b.build()
        assert classify_kernel(g) == "other"

    def test_unknown_kind_rejected(self):
        b = GraphBuilder("g")
        b.parameter((4,))
        with pytest.raises(ValueError):
            Kernel(graph=b.build(), kind="weird")


class TestExtraction:
    def test_leaf_only_groups_skipped(self):
        g, y, z = conv_graph()
        params = [i.id for i in g.parameters()]
        groups = [set(params), set(g.instructions) - set(params)]
        kernels = extract_kernels(g, groups)
        assert len(kernels) == 1

    def test_kernels_ordered_topologically(self):
        b = GraphBuilder("g")
        x = b.parameter((4,))
        a = b.tanh(x)
        c = b.exp(a)
        g = b.build()
        kernels = extract_kernels(g, [{c}, {a}])
        assert kernels[0].graph.get(kernels[0].graph.roots()[0].id).opcode is Opcode.TANH

    def test_empty_groups_ignored(self):
        g, y, z = conv_graph()
        kernels = extract_kernels(g, [set(), set(g.instructions)])
        assert len(kernels) == 1


class TestKernelAPI:
    def test_primary_output_is_largest(self):
        b = GraphBuilder("g")
        x = b.parameter((4, 4))
        small = b.reduce(x, [0, 1], kind="sum")
        big = b.tanh(x)
        g = b.build([small, big])
        k = Kernel(graph=g, kind="fusion")
        assert k.primary_output().shape.dims == (4, 4)

    def test_fingerprint_stable_and_content_sensitive(self):
        g1, _, _ = conv_graph()
        g2, _, _ = conv_graph()
        k1 = Kernel(graph=g1, kind="convolution")
        k2 = Kernel(graph=g2, kind="convolution")
        assert k1.fingerprint() == k2.fingerprint()
        assert k1.fingerprint() == k1.fingerprint()  # cached path

        b = GraphBuilder("g")
        x = b.parameter((2, 8, 8, 3))
        kk = b.constant((3, 3, 3, 16))  # different filter count
        b.conv2d(x, kk)
        k3 = Kernel(graph=b.build(), kind="convolution")
        assert k3.fingerprint() != k1.fingerprint()

    def test_num_nodes_and_output_shapes(self):
        g, y, z = conv_graph()
        k = Kernel(graph=g.subgraph(set(g.instructions)), kind="convolution")
        assert k.num_nodes == len(g)
        assert any(s.dims == (2, 8, 8, 8) for s in k.output_shapes())
