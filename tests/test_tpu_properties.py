"""Property-based tests of the cost models' qualitative behaviours.

These pin down the *structure* the reproduction relies on: which effects
exist in the simulator, which are missing from the analytical model, and
the invariances both must satisfy.
"""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import Kernel, TileConfig, default_tile, enumerate_tile_sizes
from repro.hlo import GraphBuilder
from repro.tpu import AnalyticalModel, TPU_V2, TPU_V3, TpuSimulator


def dense_kernel(m, k, n):
    b = GraphBuilder("dense")
    x = b.parameter((m, k))
    w = b.constant((k, n))
    y = b.dot(x, w)
    b.tanh(y)
    return Kernel(graph=b.build(), kind="fusion")


def elementwise_kernel(n):
    b = GraphBuilder("ew")
    x = b.parameter((n,))
    y = b.parameter((n,))
    b.tanh(b.add(x, y))
    return Kernel(graph=b.build(), kind="fusion")


class TestSimulatorStructure:
    @given(st.integers(min_value=6, max_value=10))
    @settings(max_examples=8, deadline=None)
    def test_bigger_kernels_take_longer(self, log_n):
        sim = TpuSimulator(quirk_amplitude=0)
        small = elementwise_kernel(2**log_n)
        big = elementwise_kernel(2 ** (log_n + 2))
        assert sim.run(big) > sim.run(small)

    def test_quirk_varies_across_kernels(self):
        sim = TpuSimulator(quirk_amplitude=0.12)
        quirks = {
            sim.breakdown(dense_kernel(64 * i, 32, 64), default_tile(dense_kernel(64 * i, 32, 64))).quirk
            for i in range(1, 6)
        }
        assert len(quirks) >= 4  # essentially unique per kernel

    def test_quirk_deterministic_per_kernel_tile(self):
        sim = TpuSimulator()
        k = dense_kernel(128, 64, 128)
        t = default_tile(k)
        assert sim.breakdown(k, t).quirk == sim.breakdown(k, t).quirk

    def test_bidirectional_contention_increases_transfer(self):
        """The per-iteration time exceeds max(in, out) when both transfer."""
        sim = TpuSimulator(quirk_amplitude=0)
        k = elementwise_kernel(1 << 16)
        t = default_tile(k)
        bd = sim.breakdown(k, t)
        assert bd.total / bd.iterations >= max(bd.transfer_in, bd.transfer_out)

    @given(st.sampled_from([(128, 64, 512), (256, 32, 256), (64, 128, 384)]))
    @settings(max_examples=6, deadline=None)
    def test_v3_never_slower_without_quirks(self, dims):
        k = dense_kernel(*dims)
        t = default_tile(k)
        v2 = TpuSimulator(TPU_V2, quirk_amplitude=0).run(k, t)
        v3 = TpuSimulator(TPU_V3, quirk_amplitude=0).run(k, t)
        assert v3 <= v2 * 1.001


class TestAnalyticalVsSimulator:
    def test_models_agree_on_gross_ordering(self):
        """Across kernels 100x apart in size, both models agree on order."""
        sim = TpuSimulator(quirk_amplitude=0)
        ana = AnalyticalModel()
        small = dense_kernel(32, 32, 32)
        big = dense_kernel(512, 256, 512)
        assert sim.run(small) < sim.run(big)
        assert ana.estimate(small, default_tile(small)) < ana.estimate(big, default_tile(big))

    def test_models_disagree_within_kernels_sometimes(self):
        """The within-kernel tile rankings differ for at least one kernel —
        this disagreement is the paper's entire opportunity."""
        sim = TpuSimulator()
        ana = AnalyticalModel()
        disagreements = 0
        for m, k, n in [(128, 64, 512), (256, 128, 256), (64, 32, 1024), (512, 64, 128)]:
            kernel = dense_kernel(m, k, n)
            tiles = enumerate_tile_sizes(kernel)
            sim_order = np.argsort([sim.run(kernel, t) for t in tiles])
            ana_order = np.argsort([ana.estimate(kernel, t) for t in tiles])
            if not np.array_equal(sim_order, ana_order):
                disagreements += 1
        assert disagreements >= 1

    def test_analytical_narrow_tile_heuristic(self):
        """The analytical model's minor-dim heuristic penalizes narrow
        tiles, but only approximately (smooth vs the true sawtooth)."""
        ana = AnalyticalModel()
        k = dense_kernel(256, 64, 512)
        wide = TileConfig((32, 512))
        narrow = TileConfig((512, 32))
        # Same volume; the narrow-minor tile must cost more per iteration.
        bd_wide = ana.breakdown(k, wide)
        bd_narrow = ana.breakdown(k, narrow)
        assert bd_narrow.transfer_time > 0 and bd_wide.transfer_time > 0

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=4, deadline=None)
    def test_estimates_scale_reasonably_with_volume(self, i):
        """4x the output should cost between 1x and ~40x for both models."""
        sim = TpuSimulator(quirk_amplitude=0)
        ana = AnalyticalModel()
        base = dense_kernel(64 << i, 64, 128)
        quad = dense_kernel((64 << i) * 4, 64, 128)
        for model_time in (
            (sim.run(base), sim.run(quad)),
            (
                ana.estimate(base, default_tile(base)),
                ana.estimate(quad, default_tile(quad)),
            ),
        ):
            small, large = model_time
            assert 1.0 <= large / small < 40.0
