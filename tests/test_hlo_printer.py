"""Tests for graph rendering."""
from repro.compiler import apply_fusion, default_fusion
from repro.hlo import GraphBuilder, to_dot
from repro.workloads import vision


def small_graph():
    b = GraphBuilder("g")
    x = b.parameter((4, 8))
    y = b.dense(x, 16)
    return b.build()


class TestToDot:
    def test_contains_all_nodes_and_edges(self):
        g = small_graph()
        dot = to_dot(g)
        for inst in g:
            assert f"n{inst.id}" in dot
        edges = sum(len(i.operands) for i in g)
        assert dot.count("->") == edges

    def test_roots_rendered_distinctly(self):
        g = small_graph()
        assert "doubleoctagon" in to_dot(g)

    def test_contraction_colored(self):
        g = small_graph()
        assert "lightgreen" in to_dot(g)

    def test_fusion_groups_become_clusters(self):
        p = vision.image_embed(0)
        groups = apply_fusion(p.graph, default_fusion(p.graph))
        dot = to_dot(p.graph, groups=groups)
        assert "subgraph cluster_" in dot
        assert "kernel" in dot

    def test_valid_dot_structure(self):
        dot = to_dot(small_graph())
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_graph_str_lists_instructions(self):
        g = small_graph()
        s = str(g)
        assert "graph g {" in s
        assert s.count("%") >= len(g)
