"""Tests for the cost-model serving layer.

The two load-bearing guarantees:

* **equivalence** — scores served through the micro-batched service are
  bitwise-identical to direct :class:`LearnedEvaluator` calls at equal
  batch shape (coalescing concatenates, it never re-orders or re-scales);
* **hot-swap atomicity** — a registry activation mid-stream never mixes
  two checkpoints inside one response.
"""
import threading

import numpy as np
import pytest

from repro.autotuner import (
    HardwareEvaluator,
    LearnedEvaluator,
    ProgramCostModel,
    TileScorer,
    model_tile_autotune,
)
from repro.compiler import enumerate_tile_sizes
from repro.data import KernelCache, Scalers, build_tile_dataset
from repro.evaluation import ServingStats, latency_percentiles
from repro.models import LearnedPerformanceModel, ModelConfig
from repro.models.trainer import TrainResult
from repro.serving import (
    CostModelService,
    KernelRuntimeRequest,
    MicroBatcher,
    ModelRegistry,
    ProgramRuntimesRequest,
    ResultCache,
    ServiceConfig,
    ServiceEvaluator,
    TileScoresRequest,
)
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=6, max_tiles_per_kernel=6, seed=0
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


def _result(corpus, seed=0):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=seed)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


@pytest.fixture(scope="module")
def result_a(corpus):
    return _result(corpus, seed=0)


@pytest.fixture(scope="module")
def result_b(corpus):
    return _result(corpus, seed=1)


def sync_service(result, **kwargs) -> CostModelService:
    """A service pumped on the caller's thread (deterministic batching)."""
    return CostModelService(result, ServiceConfig(**kwargs))


class TestMicroBatcher:
    def test_cuts_at_max_batch_size(self):
        mb = MicroBatcher(max_batch_size=3, flush_interval_s=10.0)
        for _ in range(5):
            mb.submit(KernelRuntimeRequest(kernel=None))
        batch = mb.next_batch(timeout=0.1)
        assert len(batch) == 3
        assert len(mb) == 2

    def test_flush_interval_cuts_partial_batch(self):
        mb = MicroBatcher(max_batch_size=100, flush_interval_s=0.01)
        mb.submit(KernelRuntimeRequest(kernel=None))
        batch = mb.next_batch(timeout=1.0)
        assert len(batch) == 1

    def test_timeout_returns_empty(self):
        mb = MicroBatcher()
        assert mb.next_batch(timeout=0.01) == []

    def test_close_refuses_new_and_drains(self):
        mb = MicroBatcher(max_batch_size=100, flush_interval_s=10.0)
        mb.submit(KernelRuntimeRequest(kernel=None))
        mb.close()
        assert len(mb.next_batch(timeout=0.1)) == 1  # closed cuts immediately
        assert mb.next_batch(timeout=0.1) == []
        with pytest.raises(RuntimeError):
            mb.submit(KernelRuntimeRequest(kernel=None))

    def test_preserves_arrival_order(self):
        mb = MicroBatcher(max_batch_size=4, flush_interval_s=10.0)
        reqs = [KernelRuntimeRequest(kernel=i) for i in range(4)]
        for r in reqs:
            mb.submit(r)
        batch = mb.next_batch(timeout=0.1)
        assert [p.request for p in batch] == reqs


class TestModelRegistry:
    def test_publish_auto_versions_and_activate(self, result_a, result_b):
        reg = ModelRegistry()
        v1 = reg.publish(result_a)
        v2 = reg.publish(result_b, activate=False)
        assert (v1, v2) == ("v1", "v2")
        assert reg.active_version == "v1"
        reg.activate("v2")
        assert reg.active_version == "v2"
        assert reg.versions == ["v1", "v2"]

    def test_get_is_memoized(self, result_a):
        reg = ModelRegistry()
        v = reg.publish(result_a)
        assert reg.get(v) is reg.get(v)

    def test_swap_releases_inactive_materializations(self, result_a, result_b):
        reg = ModelRegistry()
        reg.publish(result_a)
        first = reg.get("v1")
        reg.publish(result_b)  # activates v2, drops v1's deserialized model
        assert reg.get("v2") is reg.get("v2")
        assert reg.get("v1") is not first  # rebuilt from the blob on demand

    def test_roundtrip_through_blob(self, result_a):
        reg = ModelRegistry()
        v = reg.publish(result_a)
        reloaded = reg.get(v)
        for name, arr in result_a.model.state_dict().items():
            np.testing.assert_array_equal(arr, reloaded.model.state_dict()[name])

    def test_staged_publish_never_serves_before_activation(self, result_a):
        reg = ModelRegistry()
        staged = reg.publish(result_a, activate=False)
        assert reg.active_version is None  # even on a fresh registry
        with pytest.raises(ValueError):
            CostModelService(reg)
        reg.activate(staged)
        assert reg.active_version == staged

    def test_duplicate_and_unknown_versions_raise(self, result_a):
        reg = ModelRegistry()
        reg.publish(result_a, version="gold")
        with pytest.raises(ValueError):
            reg.publish(result_a, version="gold")
        with pytest.raises(KeyError):
            reg.activate("nope")
        with pytest.raises(KeyError):
            reg.get("nope")


class TestResultCache:
    def test_lru_eviction_and_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put(("v1", "a"), 1)
        cache.put(("v1", "b"), 2)
        assert cache.get(("v1", "a")) == 1  # refresh a
        cache.put(("v1", "c"), 3)  # evicts b
        assert cache.get(("v1", "b")) is None
        assert cache.get(("v1", "a")) == 1
        assert cache.stats()["evictions"] == 1
        assert cache.get(None) is None  # uncacheable key never hits


class TestServiceEquivalence:
    def test_tile_scores_bitwise_identical(self, corpus, result_a):
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        service = sync_service(result_a, result_cache_entries=0)
        client = ServiceEvaluator(service)
        for record in records[:3]:
            tiles = enumerate_tile_sizes(record.kernel)[:6]
            np.testing.assert_array_equal(
                direct.score_tiles_batched(record.kernel, tiles),
                client.score_tiles_batched(record.kernel, tiles),
            )

    def test_coalesced_same_kernel_requests_match_merged_direct_call(
        self, corpus, result_a
    ):
        records, scalers = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:6]
        service = sync_service(result_a, max_batch_size=8, result_cache_entries=0)
        f1 = service.submit(TileScoresRequest(kernel=kernel, tiles=tuple(tiles[:3])))
        f2 = service.submit(TileScoresRequest(kernel=kernel, tiles=tuple(tiles[3:])))
        assert service.flush() == 2
        r1, r2 = f1.result(timeout=5), f2.result(timeout=5)
        assert r1.batch_size == 2 and r2.batch_size == 2  # one shared forward
        direct = LearnedEvaluator(result_a.model, scalers)
        merged = direct.score_tiles_batched(kernel, tiles)
        np.testing.assert_array_equal(np.concatenate([r1.unwrap(), r2.unwrap()]), merged)

    def test_kernel_runtimes_match_direct_batched_call(self, corpus, result_a):
        records, scalers = corpus
        kernels = [r.kernel for r in records[:4]]
        service = sync_service(result_a, max_batch_size=8, result_cache_entries=0)
        futures = [service.submit(KernelRuntimeRequest(kernel=k)) for k in kernels]
        service.flush()
        served = np.asarray([f.result(timeout=5).unwrap() for f in futures])
        direct = LearnedEvaluator(result_a.model, scalers)
        reference = direct.program_runtimes_batched([[k] for k in kernels])
        np.testing.assert_array_equal(served, reference)

    def test_program_runtimes_match_direct(self, corpus, result_a):
        records, scalers = corpus
        programs = [[r.kernel for r in records[:3]], [r.kernel for r in records[3:5]]]
        service = sync_service(result_a, result_cache_entries=0)
        client = ServiceEvaluator(service)
        direct = LearnedEvaluator(result_a.model, scalers)
        np.testing.assert_array_equal(
            client.program_runtimes_batched(programs),
            direct.program_runtimes_batched(programs),
        )

    def test_concurrent_clients_bitwise_identical(self, corpus, result_a):
        # One distinct kernel per client: requests for different kernels
        # are never merged into one forward, so every request keeps its
        # own batch shape and the bitwise guarantee applies exactly.
        records, scalers = corpus
        workload = [(r.kernel, enumerate_tile_sizes(r.kernel)[:6]) for r in records]
        direct = LearnedEvaluator(result_a.model, scalers)
        reference = [direct.score_tiles_batched(k, t) for k, t in workload]
        config = ServiceConfig(
            max_batch_size=16, flush_interval_s=0.001, replicas=2, result_cache_entries=0
        )
        outputs = {}
        with CostModelService(result_a, config) as service:
            def client(idx, kernel, tiles):
                evaluator = ServiceEvaluator(service)
                outputs[idx] = evaluator.score_tiles_batched(kernel, tiles)

            for _wave in range(3):
                threads = [
                    threading.Thread(target=client, args=(i, k, t))
                    for i, (k, t) in enumerate(workload)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert len(outputs) == len(workload)
                for idx, scores in outputs.items():
                    np.testing.assert_array_equal(scores, reference[idx])
                outputs.clear()

    def test_autotuner_runs_unchanged_against_service(self, corpus, result_a):
        records, scalers = corpus
        kernels = [r.kernel for r in records[:3]]
        direct = LearnedEvaluator(result_a.model, scalers)
        service = sync_service(result_a)
        client = ServiceEvaluator(service)
        assert isinstance(client, TileScorer) and isinstance(client, ProgramCostModel)
        tuned_direct = model_tile_autotune(kernels, direct, HardwareEvaluator(), top_k=1)
        tuned_served = model_tile_autotune(kernels, client, HardwareEvaluator(), top_k=1)
        assert tuned_direct.tiles == tuned_served.tiles
        assert tuned_served.hardware_evaluations == 0


class TestResultCacheInService:
    def test_repeat_request_is_cache_hit_with_identical_value(self, corpus, result_a):
        records, _ = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:5]
        service = sync_service(result_a)
        client = ServiceEvaluator(service)
        first = client.score_tiles_batched(kernel, tiles)
        assert not client.last_response.cache_hit
        second = client.score_tiles_batched(kernel, tiles)
        assert client.last_response.cache_hit
        np.testing.assert_array_equal(first, second)
        assert service.result_cache.stats()["hits"] == 1

    def test_cache_is_version_scoped(self, corpus, result_a, result_b):
        records, _ = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:5]
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, activate=False)
        service = CostModelService(registry, ServiceConfig())
        client = ServiceEvaluator(service)
        from_a = client.score_tiles_batched(kernel, tiles)
        registry.activate("v2")
        from_b = client.score_tiles_batched(kernel, tiles)
        assert not client.last_response.cache_hit  # v2 never served this yet
        assert client.model_version == "v2"
        assert not np.array_equal(from_a, from_b)


class TestHotSwap:
    def test_swap_applies_between_flushes(self, corpus, result_a, result_b):
        records, scalers = corpus
        kernel = records[0].kernel
        tiles = tuple(enumerate_tile_sizes(kernel)[:5])
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, activate=False)
        service = CostModelService(registry, ServiceConfig(result_cache_entries=0))
        client = ServiceEvaluator(service)
        ref_a = LearnedEvaluator(result_a.model, scalers).score_tiles_batched(kernel, list(tiles))
        ref_b = LearnedEvaluator(result_b.model, scalers).score_tiles_batched(kernel, list(tiles))
        np.testing.assert_array_equal(client.score_tiles_batched(kernel, list(tiles)), ref_a)
        assert client.model_version == "v1"
        registry.activate("v2")
        np.testing.assert_array_equal(client.score_tiles_batched(kernel, list(tiles)), ref_b)
        assert client.model_version == "v2"

    def test_swap_mid_queue_never_mixes_checkpoints_in_one_response(
        self, corpus, result_a, result_b
    ):
        """Requests queued before an activation are batched after it: the
        whole coalesced batch must be served by exactly one checkpoint."""
        records, scalers = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:6]
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, activate=False)
        service = CostModelService(registry, ServiceConfig(result_cache_entries=0))
        f1 = service.submit(TileScoresRequest(kernel=kernel, tiles=tuple(tiles[:3])))
        f2 = service.submit(TileScoresRequest(kernel=kernel, tiles=tuple(tiles[3:])))
        registry.activate("v2")  # lands between submit and execution
        service.flush()
        r1, r2 = f1.result(timeout=5), f2.result(timeout=5)
        assert r1.model_version == r2.model_version == "v2"
        merged_b = LearnedEvaluator(result_b.model, scalers).score_tiles_batched(
            kernel, tiles
        )
        np.testing.assert_array_equal(
            np.concatenate([r1.unwrap(), r2.unwrap()]), merged_b
        )

    def test_swap_under_concurrent_load_serves_single_version_responses(
        self, corpus, result_a, result_b
    ):
        records, scalers = corpus
        workload = [
            (r.kernel, enumerate_tile_sizes(r.kernel)[:5]) for r in records[:4]
        ]
        refs = {
            "v1": {
                k.fingerprint(): LearnedEvaluator(result_a.model, scalers).score_tiles_batched(k, t)
                for k, t in workload
            },
            "v2": {
                k.fingerprint(): LearnedEvaluator(result_b.model, scalers).score_tiles_batched(k, t)
                for k, t in workload
            },
        }
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, activate=False)
        config = ServiceConfig(max_batch_size=4, flush_interval_s=0.0005, result_cache_entries=0)
        responses = []
        with CostModelService(registry, config) as service:
            def client(kernel, tiles):
                evaluator = ServiceEvaluator(service)
                evaluator.score_tiles_batched(kernel, tiles)
                responses.append((kernel.fingerprint(), evaluator.last_response))

            threads = [
                threading.Thread(target=client, args=(k, t))
                for k, t in workload * 4
            ]
            for i, t in enumerate(threads):
                t.start()
                if i == len(threads) // 2:
                    registry.activate("v2")
            for t in threads:
                t.join()
        assert len(responses) == len(threads)
        versions_seen = set()
        for fingerprint, response in responses:
            versions_seen.add(response.model_version)
            # Same-kernel requests may have been coalesced into a larger
            # forward, whose shape shifts scores at BLAS rounding level —
            # allclose still discriminates v1 from v2 (different inits)
            # by orders of magnitude, which is the mixing guarantee under
            # test here; exact bitwise equality is covered by the
            # shape-controlled tests above.
            np.testing.assert_allclose(
                np.asarray(response.unwrap()),
                refs[response.model_version][fingerprint],
                rtol=1e-4,
                atol=1e-7,
            )
        assert "v2" in versions_seen  # the swap happened mid-stream

    def test_no_requests_dropped_across_swap(self, corpus, result_a, result_b):
        records, _ = corpus
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, activate=False)
        config = ServiceConfig(max_batch_size=2, flush_interval_s=0.0005, result_cache_entries=0)
        with CostModelService(registry, config) as service:
            futures = [
                service.submit(KernelRuntimeRequest(kernel=r.kernel))
                for r in records
            ]
            registry.activate("v2")
            results = [f.result(timeout=10) for f in futures]
        assert all(r.error is None for r in results)
        assert service.stats.snapshot()["requests"] == len(records)


class TestServiceLifecycleAndErrors:
    def test_errors_resolve_futures_instead_of_hanging(self, result_a):
        service = sync_service(result_a)
        future = service.submit(TileScoresRequest(kernel=None, tiles=()))
        service.flush()
        response = future.result(timeout=5)
        assert response.error is not None
        with pytest.raises(RuntimeError):
            response.unwrap()

    def test_malformed_request_does_not_fail_co_batched_neighbours(
        self, corpus, result_a
    ):
        records, _ = corpus
        kernel = records[0].kernel
        tiles = tuple(enumerate_tile_sizes(kernel)[:4])
        service = sync_service(result_a, max_batch_size=8, result_cache_entries=0)
        good = service.submit(TileScoresRequest(kernel=kernel, tiles=tiles))
        bad = service.submit(TileScoresRequest(kernel=None, tiles=()))
        service.flush()  # one micro-batch containing both
        assert good.result(timeout=5).error is None
        assert bad.result(timeout=5).error is not None

    def test_stop_drains_pending(self, corpus, result_a):
        records, _ = corpus
        service = CostModelService(result_a, ServiceConfig(result_cache_entries=0))
        service.start()
        futures = [
            service.submit(KernelRuntimeRequest(kernel=r.kernel)) for r in records[:4]
        ]
        service.stop()
        assert all(f.result(timeout=5).error is None for f in futures)
        assert not service.is_running

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError):
            CostModelService(ModelRegistry())

    def test_replica_sharding_is_stable(self, corpus, result_a):
        records, _ = corpus
        from repro.serving import ReplicaPool

        pool = ReplicaPool(result_a, "v1", replicas=3)
        for record in records:
            fp = record.kernel.fingerprint()
            assert pool.route(fp) is pool.route(fp)
        assert len({id(pool.route(r.kernel.fingerprint())) for r in records}) > 1


class TestStatsSurfaces:
    def test_evaluator_stats_counters(self, corpus, result_a):
        records, scalers = corpus
        evaluator = LearnedEvaluator(result_a.model, scalers, max_cached_kernels=2)
        for record in records[:4]:
            evaluator.kernel_runtime(record.kernel)
        stats = evaluator.stats()
        assert stats["feature_misses"] == 4
        assert stats["feature_evictions"] == 2  # bound of 2, saw 4 kernels
        assert stats["prediction_misses"] == 4
        assert stats["batch_entries"] <= 2
        evaluator.kernel_runtime(records[3].kernel)
        assert evaluator.stats()["prediction_hits"] == 1

    def test_kernel_cache_eviction_counter(self, corpus):
        records, scalers = corpus
        cache = KernelCache(scalers, max_entries=1)
        cache.entry(records[0].features)
        cache.entry(records[1].features)
        assert cache.stats()["evictions"] == 1

    def test_configurable_prediction_memo_bound(self, corpus, result_a):
        records, scalers = corpus
        evaluator = LearnedEvaluator(
            result_a.model, scalers, max_cached_predictions=1
        )
        evaluator.kernel_runtime(records[0].kernel)
        evaluator.kernel_runtime(records[1].kernel)
        assert evaluator.stats()["prediction_entries"] == 1
        assert evaluator.stats()["prediction_evictions"] == 1

    def test_serving_stats_snapshot(self):
        stats = ServingStats()
        stats.record_batch(4, forwards=1)
        for latency in (0.001, 0.002, 0.003, 0.004):
            stats.record_response(latency, cache_hit=False)
        stats.record_response(0.0, cache_hit=True)
        snap = stats.snapshot()
        assert snap["requests"] == 5
        assert snap["batch_occupancy"] == 4.0
        assert snap["cache_hit_rate"] == pytest.approx(0.2)
        assert snap["requests_per_forward"] == 4.0
        assert snap["latency_max_s"] == pytest.approx(0.004)

    def test_latency_percentiles_empty(self):
        summary = latency_percentiles([])
        assert summary.count == 0 and summary.p99 == 0.0

    def test_service_metrics_merge(self, corpus, result_a):
        records, _ = corpus
        service = sync_service(result_a)
        client = ServiceEvaluator(service)
        client.kernel_runtime(records[0].kernel)
        client.kernel_runtime(records[0].kernel)  # result-cache hit
        metrics = service.metrics()
        assert metrics["requests"] == 2
        assert metrics["cache_hit_rate"] == pytest.approx(0.5)
        assert metrics["result_cache_hits"] == 1
        assert metrics["active_version"] == "v1"
        assert metrics["evaluator_prediction_misses"] == 1


class TestProtocolKeys:
    def test_tile_cache_keys_distinguish_tiles(self, corpus):
        records, _ = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:4]
        a = TileScoresRequest(kernel=kernel, tiles=tuple(tiles[:2]))
        b = TileScoresRequest(kernel=kernel, tiles=tuple(tiles[2:]))
        assert a.cache_key() != b.cache_key()
        assert a.shard_key() == b.shard_key() == kernel.fingerprint()

    def test_program_requests_not_cached(self, corpus):
        records, _ = corpus
        request = ProgramRuntimesRequest(programs=((records[0].kernel,),))
        assert request.cache_key() is None
        assert request.shard_key() == records[0].kernel.fingerprint()
