"""Tests for the ASCII bar chart renderer."""
import pytest

from repro.evaluation import bar_chart


class TestBarChart:
    def test_contains_labels_series_and_values(self):
        out = bar_chart(
            ["prog_a", "prog_b"],
            {"HW": [1.0, 1.2], "CM+HW": [1.1, 1.4]},
            title="Fig",
        )
        for token in ("Fig", "prog_a", "prog_b", "HW", "CM+HW", "1.40"):
            assert token in out

    def test_bar_lengths_monotone_in_value(self):
        out = bar_chart(["x"], {"a": [0.5], "b": [2.0]}, baseline=None)
        lines = [l for l in out.splitlines() if "#" in l]
        assert lines[0].count("#") < lines[1].count("#")

    def test_baseline_tick_drawn(self):
        out = bar_chart(["x"], {"a": [2.0]}, baseline=1.0)
        assert "|" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["x", "y"], {"a": [1.0]})

    def test_empty_series_values(self):
        assert bar_chart([], {"a": []}, title="t") == "t"

    def test_zero_values_render(self):
        out = bar_chart(["x"], {"a": [0.0]}, baseline=None)
        assert "0.00" in out
