"""Tests for the resilience layer: chaos harness, deadlines, degradation.

The serving contract under test: **every request resolves within its
deadline as exactly one of a correct answer, a typed error, or a
degraded-flagged analytical answer — never a hang.** Specifically:

* the fault-injection harness is deterministic (``after``/``every_n``/
  ``count`` schedules, seeded probability, per-shard targeting) and the
  healthy path is bitwise-identical with faults disabled;
* deadlines ride the wire, expired requests are shed pre-dispatch with a
  typed ``deadline_exceeded``, and admission control sheds at the door
  with a typed ``Overloaded``;
* per-shard circuit breakers open on consecutive infrastructure
  failures, admit a single half-open probe, and show up in ``metrics()``;
* breaker-open / worker-dead requests degrade to the analytical TPU
  model (``degraded=True``, never result-cached);
* the process executor survives killed, hung (SIGSTOP), and
  crash-looping workers with bounded wall time, and the registry's disk
  spill is atomic under a mid-write crash;
* the socket frontend resolves in-flight requests with a typed
  disconnect when a peer drops, and clients retry transient faults with
  deterministic backoff.
"""
import json
import socket as socketlib
import struct
import threading
import time

import numpy as np
import pytest

from repro.autotuner import LearnedEvaluator
from repro.compiler import enumerate_tile_sizes
from repro.data import Scalers, build_tile_dataset
from repro.models import LearnedPerformanceModel, ModelConfig
from repro.models.trainer import TrainResult
from repro.serving import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_DISCONNECTED,
    ERROR_OVERLOADED,
    ERROR_WORKER_FAILURE,
    ANALYTICAL_VERSION,
    AnalyticalFallback,
    CircuitBreaker,
    CommandResult,
    ConnectionLost,
    CostModelService,
    CrashLoopBackoff,
    DeadlineExceeded,
    EvaluatorClient,
    Executor,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KernelRuntimeRequest,
    MicroBatcher,
    ModelRegistry,
    Overloaded,
    ProgramRuntimesRequest,
    Response,
    RetryPolicy,
    ServiceConfig,
    ServiceEvaluator,
    SocketEvaluator,
    SocketFrontend,
    TileScoresRequest,
    corrupt_bytes,
    encode_request,
    fault_for,
    idempotency_key,
)
from repro.serving.protocol import frame_bytes
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=6,
        max_tiles_per_kernel=6, seed=0,
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


@pytest.fixture(scope="module")
def result_a(corpus):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=0)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


def _tile_request(corpus, index=0, n_tiles=4, **kwargs):
    records, _ = corpus
    kernel = records[index].kernel
    tiles = tuple(enumerate_tile_sizes(kernel)[:n_tiles])
    return TileScoresRequest(kernel=kernel, tiles=tiles, **kwargs)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------- #
# fault harness
# ---------------------------------------------------------------------- #


class TestFaultHarness:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            FaultRule(hook="nope", kind="kill")
        with pytest.raises(ValueError):
            FaultRule(hook="worker.forward", kind="explode")
        with pytest.raises(ValueError):
            FaultRule(hook="worker.forward", kind="kill", count=0)
        with pytest.raises(ValueError):
            FaultRule(hook="worker.forward", kind="kill", probability=0.0)

    def test_after_every_n_count_schedule(self):
        rule = FaultRule(
            hook="executor.dispatch", kind="delay", after=2, every_n=3, count=2
        )
        injector = FaultInjector(FaultPlan(rules=(rule,)))
        fired = [
            injector.fire("executor.dispatch") is not None for _ in range(12)
        ]
        # Events 0,1 are warmup; eligible events 2,5,8,... fire until the
        # count bound (2 firings) is spent.
        assert fired == [False, False, True, False, False, True] + [False] * 6
        assert injector.exhausted()
        (snap,) = injector.snapshot()
        assert snap["events"] == 12 and snap["fired"] == 2

    def test_shard_targeting(self):
        rule = FaultRule(
            hook="executor.dispatch", kind="kill", shard=1, count=None
        )
        injector = FaultInjector(FaultPlan(rules=(rule,)))
        assert injector.fire("executor.dispatch", shard=0) is None
        assert injector.fire("executor.dispatch", shard=1) is rule
        # Mismatched-shard events do not advance the rule's counter.
        assert injector.snapshot()[0]["events"] == 1

    def test_unlisted_hook_is_silent(self):
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(hook="worker.forward", kind="kill"),))
        )
        assert injector.fire("frontend.recv") is None

    def test_subset_restricts_hooks(self):
        plan = FaultPlan(
            rules=(
                FaultRule(hook="worker.forward", kind="kill"),
                FaultRule(hook="executor.dispatch", kind="hang"),
            ),
            seed=3,
        )
        worker_plan = plan.subset("worker.")
        assert worker_plan.hooks() == {"worker.forward"}
        assert worker_plan.seed == 3

    def test_corrupt_bytes_deterministic_single_flip(self):
        blob = bytes(range(32))
        corrupted = corrupt_bytes(blob)
        assert corrupted == corrupt_bytes(blob)
        assert len(corrupted) == len(blob)
        diff = [i for i in range(len(blob)) if corrupted[i] != blob[i]]
        assert len(diff) == 1
        assert corrupt_bytes(b"") == b"\x00"

    def test_probability_is_seeded(self):
        def firings(seed):
            rule = FaultRule(
                hook="frontend.recv", kind="drop", probability=0.5, count=None
            )
            injector = FaultInjector(FaultPlan(rules=(rule,), seed=seed))
            return [
                injector.fire("frontend.recv") is not None for _ in range(64)
            ]

        assert firings(7) == firings(7)
        assert any(firings(7)) and not all(firings(7))

    def test_disarmed_injector_is_inert(self):
        rule = FaultRule(hook="frontend.recv", kind="drop", after=1, count=1)
        injector = FaultInjector(FaultPlan(rules=(rule,)), armed=False)
        for _ in range(4):
            assert injector.fire("frontend.recv") is None
        # Disarmed events never touched the counters: the `after` budget
        # is intact when the chaos phase arms the injector.
        assert injector.snapshot()[0]["events"] == 0
        injector.arm()
        assert injector.fire("frontend.recv") is None  # after=1 warmup
        assert injector.fire("frontend.recv") is rule

    def test_first_matching_rule_wins(self):
        delay = FaultRule(hook="frontend.recv", kind="delay", count=None)
        drop = FaultRule(hook="frontend.recv", kind="drop", count=None)
        injector = FaultInjector(FaultPlan(rules=(delay, drop)))
        assert injector.fire("frontend.recv") is delay
        # Both rules' event counters advance even though only one fired.
        assert [s["events"] for s in injector.snapshot()] == [1, 1]


# ---------------------------------------------------------------------- #
# retry policy / idempotency
# ---------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, max_backoff_s=0.5, multiplier=2.0
        )
        backoffs = [policy.backoff_s(i, "key") for i in range(6)]
        caps = [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]
        for value, cap in zip(backoffs, caps):
            assert cap / 2 <= value < cap
        assert backoffs == [policy.backoff_s(i, "key") for i in range(6)]

    def test_jitter_spreads_distinct_keys(self):
        policy = RetryPolicy(base_backoff_s=0.1)
        assert policy.backoff_s(0, "a") != policy.backoff_s(0, "b")

    def test_retryable_codes(self):
        policy = RetryPolicy()
        assert policy.retryable(ERROR_OVERLOADED)
        assert policy.retryable(ERROR_WORKER_FAILURE)
        assert not policy.retryable(ERROR_DEADLINE_EXCEEDED)
        assert not policy.retryable(None)

    def test_idempotency_key_is_content_derived(self, corpus):
        a1 = _tile_request(corpus, index=0)
        a2 = _tile_request(corpus, index=0)
        b = _tile_request(corpus, index=1)
        assert idempotency_key(a1) == idempotency_key(a2)
        assert idempotency_key(a1) != idempotency_key(b)


# ---------------------------------------------------------------------- #
# circuit breaker / crash-loop backoff
# ---------------------------------------------------------------------- #


class TestCircuitBreaker:
    def test_opens_at_threshold_and_probes_once(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_s=2.0, clock=clock)
        assert breaker.state == "closed" and breaker.allow()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(1.0)
        assert not breaker.allow()
        clock.advance(1.5)  # past reset_s: exactly one half-open probe
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.snapshot()["opens"] == 2

    def test_open_seconds_accounting(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_s=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(3.0)
        assert breaker.open_seconds() == pytest.approx(3.0)
        clock.advance(7.5)
        assert breaker.allow()  # half-open probe
        breaker.record_success()
        assert breaker.open_seconds() == pytest.approx(10.5)
        clock.advance(5.0)  # closed time does not accrue
        assert breaker.open_seconds() == pytest.approx(10.5)


class TestCrashLoopBackoff:
    def test_first_failure_is_free(self):
        clock = FakeClock()
        backoff = CrashLoopBackoff(base_s=0.5, max_s=4.0, clock=clock)
        assert backoff.record_failure() == 0.0
        assert backoff.remaining() == 0.0

    def test_window_doubles_then_caps(self):
        clock = FakeClock()
        backoff = CrashLoopBackoff(base_s=0.5, max_s=4.0, clock=clock)
        backoff.record_failure()
        assert backoff.record_failure() == pytest.approx(0.5)
        assert backoff.remaining() == pytest.approx(0.5)
        clock.advance(0.2)
        assert backoff.remaining() == pytest.approx(0.3)
        assert backoff.record_failure() == pytest.approx(1.0)
        assert backoff.record_failure() == pytest.approx(2.0)
        assert backoff.record_failure() == pytest.approx(4.0)
        assert backoff.record_failure() == pytest.approx(4.0)  # capped

    def test_success_resets(self):
        clock = FakeClock()
        backoff = CrashLoopBackoff(base_s=0.5, clock=clock)
        backoff.record_failure()
        backoff.record_failure()
        backoff.record_success()
        assert backoff.failures == 0 and backoff.remaining() == 0.0
        assert backoff.record_failure() == 0.0  # first-failure grace again


# ---------------------------------------------------------------------- #
# analytical fallback
# ---------------------------------------------------------------------- #


class TestAnalyticalFallback:
    def test_answers_all_request_shapes(self, corpus):
        records, _ = corpus
        fallback = AnalyticalFallback()
        tile_req = _tile_request(corpus)
        scores = fallback.answer(tile_req)
        assert scores.shape == (len(tile_req.tiles),)
        assert np.all(np.isfinite(scores)) and np.all(scores > 0)
        runtime = fallback.answer(KernelRuntimeRequest(kernel=records[0].kernel))
        assert isinstance(runtime, float) and runtime > 0
        programs = ProgramRuntimesRequest(
            programs=(tuple(r.kernel for r in records[:3]),)
        )
        runtimes = fallback.answer(programs)
        assert runtimes.shape == (1,) and runtimes[0] > 0
        assert fallback.answers == 3 and fallback.failures == 0

    def test_unsupported_request_counts_failure(self):
        fallback = AnalyticalFallback()
        with pytest.raises(Exception):
            fallback.answer(object())
        assert fallback.failures == 1 and fallback.answers == 0


# ---------------------------------------------------------------------- #
# wire: deadlines and typed errors
# ---------------------------------------------------------------------- #


class TestResilienceOnTheWire:
    def test_deadline_rides_the_wire(self, corpus):
        from repro.serving import decode_request

        request = _tile_request(corpus, deadline_s=0.25)
        decoded = decode_request(encode_request(request))
        assert decoded.deadline_s == 0.25
        bare = decode_request(encode_request(_tile_request(corpus)))
        assert bare.deadline_s is None

    def test_deadline_not_in_cache_key(self, corpus):
        assert (
            _tile_request(corpus, deadline_s=0.25).cache_key()
            == _tile_request(corpus).cache_key()
        )

    def test_error_code_and_degraded_roundtrip(self):
        response = Response(
            value=None,
            model_version="v1",
            error="shed",
            error_code=ERROR_DEADLINE_EXCEEDED,
        )
        decoded = Response.from_bytes(response.to_bytes())
        assert decoded.error_code == ERROR_DEADLINE_EXCEEDED
        degraded = Response(
            value=1.5, model_version=ANALYTICAL_VERSION, degraded=True
        )
        assert Response.from_bytes(degraded.to_bytes()).degraded is True

    def test_pre_resilience_header_still_decodes(self):
        """Frames from an older peer (no error_code/degraded keys) decode
        with the new fields defaulted."""
        blob = Response(value=2.0, model_version="v1").to_bytes()
        (header_len,) = struct.unpack_from(">I", blob, 0)
        header = json.loads(blob[4:4 + header_len].decode())
        del header["error_code"], header["degraded"]
        old = json.dumps(header).encode()
        rebuilt = struct.pack(">I", len(old)) + old + blob[4 + header_len:]
        decoded = Response.from_bytes(rebuilt)
        assert decoded.error_code is None and decoded.degraded is False
        assert decoded.value == 2.0

    def test_fault_for_maps_codes(self):
        shed = Response(
            value=None, model_version="v1", error="x",
            error_code=ERROR_DEADLINE_EXCEEDED,
        )
        assert isinstance(fault_for(shed), DeadlineExceeded)
        unknown = Response(
            value=None, model_version="v1", error="x", error_code="new_code"
        )
        fault = fault_for(unknown)
        assert fault is not None and fault.code == "unavailable"
        assert fault_for(Response(value=1.0, model_version="v1")) is None


# ---------------------------------------------------------------------- #
# scheduler: admission control + deadline stamping
# ---------------------------------------------------------------------- #


class TestSchedulerResilience:
    def test_max_pending_sheds_typed(self, corpus):
        batcher = MicroBatcher(max_batch_size=8, max_pending=2)
        batcher.submit(_tile_request(corpus, index=0))
        batcher.submit(_tile_request(corpus, index=1))
        with pytest.raises(Overloaded):
            batcher.submit(_tile_request(corpus, index=2))
        assert batcher.rejected == 1
        batcher.drain()
        batcher.submit(_tile_request(corpus, index=2))  # room again

    def test_expires_at_stamped_from_request_and_default(self, corpus):
        batcher = MicroBatcher(default_deadline_s=5.0)
        batcher.submit(_tile_request(corpus, deadline_s=0.5))
        batcher.submit(_tile_request(corpus, index=1))
        own, default = batcher.drain()
        assert own.expires_at == pytest.approx(own.enqueued_at + 0.5)
        assert default.expires_at == pytest.approx(default.enqueued_at + 5.0)
        unbounded = MicroBatcher()
        unbounded.submit(_tile_request(corpus))
        (pending,) = unbounded.drain()
        assert pending.expires_at is None


# ---------------------------------------------------------------------- #
# service: shedding, breakers, degradation
# ---------------------------------------------------------------------- #


class ScriptedExecutor(Executor):
    """Stub backend: fails the first ``fail_first`` run() calls with an
    infrastructure error, then serves zeros."""

    num_shards = 1
    shard_map = None

    def __init__(self, fail_first=0):
        self.fail_first = fail_first
        self.calls = 0

    def run(self, version, commands):
        self.calls += 1
        if self.calls <= self.fail_first:
            return [
                CommandResult(error="worker died (scripted)", infra=True)
                for _ in commands
            ]
        results = []
        for command in commands:
            n = len(getattr(command, "tiles", None) or command.programs)
            results.append(CommandResult(value=np.zeros(n, dtype=np.float32)))
        return results

    def stats(self):
        return {"calls": self.calls}


class TestServiceResilience:
    def test_expired_request_shed_with_typed_error(self, corpus, result_a):
        service = CostModelService(
            result_a, ServiceConfig(result_cache_entries=0)
        )
        try:
            future = service.submit(_tile_request(corpus, deadline_s=0.01))
            time.sleep(0.05)
            service.flush()
            response = future.result(timeout=5)
            assert response.error_code == ERROR_DEADLINE_EXCEEDED
            assert response.value is None
            assert service.metrics()["deadline_expired"] == 1.0
        finally:
            service.stop()

    def test_admission_control_typed_overload(self, corpus, result_a):
        service = CostModelService(
            result_a, ServiceConfig(max_pending=1, result_cache_entries=0)
        )
        try:
            service.submit(_tile_request(corpus, index=0))
            with pytest.raises(Overloaded):
                service.submit(_tile_request(corpus, index=1))
            assert service.metrics()["overload_rejections"] == 1.0
            service.flush()
        finally:
            service.stop()

    def test_infra_failure_degrades_to_analytical(self, corpus, result_a):
        executor = ScriptedExecutor(fail_first=10**9)
        service = CostModelService(
            result_a,
            ServiceConfig(breaker_failure_threshold=2, breaker_reset_s=60.0,
                          result_cache_entries=64),
            executor=executor,
        )
        try:
            request = _tile_request(corpus)
            reference = AnalyticalFallback().answer(request)
            future = service.submit(request)
            service.flush()
            response = future.result(timeout=5)
            assert response.degraded is True
            assert response.model_version == ANALYTICAL_VERSION
            np.testing.assert_array_equal(response.value, reference)
            # Degraded answers are never result-cached: the replay is
            # degraded again, not a cache hit of an analytical value.
            again = service.submit(request)
            service.flush()
            assert again.result(timeout=5).degraded is True
            assert not again.result(timeout=5).cache_hit
            metrics = service.metrics()
            assert metrics["degraded"] >= 2.0
            assert metrics["fallback_answers"] >= 2.0
        finally:
            service.stop()

    def test_breaker_opens_and_blocks_executor(self, corpus, result_a):
        executor = ScriptedExecutor(fail_first=10**9)
        service = CostModelService(
            result_a,
            ServiceConfig(breaker_failure_threshold=2, breaker_reset_s=60.0,
                          result_cache_entries=0),
            executor=executor,
        )
        try:
            for index in range(2):  # two infra failures open the breaker
                future = service.submit(_tile_request(corpus, index=index))
                service.flush()
                future.result(timeout=5)
            calls_when_open = executor.calls
            future = service.submit(_tile_request(corpus, index=2))
            service.flush()
            response = future.result(timeout=5)
            assert response.degraded is True
            assert executor.calls == calls_when_open  # breaker-gated
            metrics = service.metrics()
            assert metrics["breakers"]["0"]["state"] == "open"
            assert metrics["breakers"]["0"]["opens"] >= 1
            assert metrics["breaker_open_seconds"] > 0.0
            assert metrics["breaker_blocks"] >= 1.0
        finally:
            service.stop()

    def test_half_open_probe_recovers(self, corpus, result_a):
        executor = ScriptedExecutor(fail_first=2)
        service = CostModelService(
            result_a,
            ServiceConfig(breaker_failure_threshold=2, breaker_reset_s=0.05,
                          result_cache_entries=0),
            executor=executor,
        )
        try:
            for index in range(2):
                future = service.submit(_tile_request(corpus, index=index))
                service.flush()
                assert future.result(timeout=5).degraded is True
            assert service.metrics()["breakers"]["0"]["state"] == "open"
            time.sleep(0.1)  # past reset_s: next dispatch is the probe
            future = service.submit(_tile_request(corpus, index=2))
            service.flush()
            response = future.result(timeout=5)
            assert response.degraded is False and response.error is None
            metrics = service.metrics()
            assert metrics["breakers"]["0"]["state"] == "closed"
            assert metrics["breakers"]["0"]["probes"] >= 1
        finally:
            service.stop()

    def test_degradation_disabled_fails_typed(self, corpus, result_a):
        executor = ScriptedExecutor(fail_first=10**9)
        service = CostModelService(
            result_a,
            ServiceConfig(degrade_to_analytical=False, result_cache_entries=0),
            executor=executor,
        )
        try:
            future = service.submit(_tile_request(corpus))
            service.flush()
            response = future.result(timeout=5)
            assert response.error_code == ERROR_WORKER_FAILURE
            assert response.degraded is False and response.value is None
        finally:
            service.stop()

    def test_healthy_path_bitwise_identical_with_resilience_defaults(
        self, corpus, result_a
    ):
        """Faults disabled + resilience defaults = the exact pre-resilience
        responses (value bytes, version stamp, no degraded/error tags)."""
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        service = CostModelService(
            result_a, ServiceConfig(result_cache_entries=0)
        )
        try:
            client = ServiceEvaluator(
                service, deadline_s=60.0, retry=RetryPolicy()
            )
            for record in records[:4]:
                tiles = enumerate_tile_sizes(record.kernel)[:5]
                served = client.score_tiles_batched(record.kernel, tiles)
                reference = direct.score_tiles_batched(record.kernel, tiles)
                np.testing.assert_array_equal(served, reference)
                assert served.dtype == reference.dtype
                assert client.last_response.degraded is False
                assert client.last_response.error_code is None
            assert client.retries == 0 and client.degraded_responses == 0
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# client retry loop
# ---------------------------------------------------------------------- #


class ScriptedClient(EvaluatorClient):
    """Client whose transport follows a script of outcomes."""

    def __init__(self, outcomes, **kwargs):
        super().__init__(**kwargs)
        self.outcomes = list(outcomes)
        self.attempts = 0

    def _call_once(self, request):
        self.attempts += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestClientRetry:
    def _ok(self):
        return Response(value=np.zeros(4, dtype=np.float32), model_version="v1")

    def test_retries_transient_faults_then_succeeds(self, corpus):
        client = ScriptedClient(
            [Overloaded("full"), ConnectionLost("reset"), self._ok()],
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.001),
        )
        scores = client.score_tiles_batched(
            *_request_parts(_tile_request(corpus))
        )
        assert scores.shape == (4,)
        assert client.attempts == 3 and client.retries == 2

    def test_retries_typed_error_responses(self, corpus):
        shed = Response(
            value=None, model_version="v1", error="queue full",
            error_code=ERROR_OVERLOADED,
        )
        client = ScriptedClient(
            [shed, self._ok()],
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.001),
        )
        client.score_tiles_batched(*_request_parts(_tile_request(corpus)))
        assert client.attempts == 2

    def test_non_retryable_fault_raises_immediately(self, corpus):
        client = ScriptedClient(
            [DeadlineExceeded("spent"), self._ok()],
            retry=RetryPolicy(max_attempts=4, base_backoff_s=0.001),
        )
        with pytest.raises(DeadlineExceeded):
            client.score_tiles_batched(*_request_parts(_tile_request(corpus)))
        assert client.attempts == 1

    def test_exhausted_retries_raise_last_fault(self, corpus):
        client = ScriptedClient(
            [Overloaded("full")] * 2,
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.001),
        )
        with pytest.raises(Overloaded):
            client.score_tiles_batched(*_request_parts(_tile_request(corpus)))
        assert client.attempts == 2

    def test_no_policy_raises_first_fault(self, corpus):
        client = ScriptedClient([Overloaded("full"), self._ok()])
        with pytest.raises(Overloaded):
            client.score_tiles_batched(*_request_parts(_tile_request(corpus)))
        assert client.attempts == 1

    def test_deadline_stamped_on_requests(self, corpus):
        seen = []

        class Spy(ScriptedClient):
            def _call_once(self, request):
                seen.append(request.deadline_s)
                return super()._call_once(request)

        client = Spy([self._ok(), self._ok()], deadline_s=1.5)
        client.score_tiles_batched(*_request_parts(_tile_request(corpus)))
        client._call(_tile_request(corpus, deadline_s=0.2))
        assert seen == [1.5, 0.2]  # explicit deadline wins over the default

    def test_degraded_responses_counted(self, corpus):
        degraded = Response(
            value=np.ones(4), model_version=ANALYTICAL_VERSION, degraded=True
        )
        client = ScriptedClient([degraded])
        client.score_tiles_batched(*_request_parts(_tile_request(corpus)))
        assert client.degraded_responses == 1


def _request_parts(request):
    return request.kernel, list(request.tiles)


# ---------------------------------------------------------------------- #
# socket frontend: disconnects, partial frames, recv faults
# ---------------------------------------------------------------------- #


@pytest.fixture()
def thread_service(result_a):
    service = CostModelService(
        result_a, ServiceConfig(result_cache_entries=0)
    ).start()
    yield service
    service.stop()


class TestFrontendResilience:
    def test_partial_frame_then_close_does_not_wedge(
        self, corpus, result_a, thread_service
    ):
        records, scalers = corpus
        with SocketFrontend(thread_service) as frontend:
            body = encode_request(_tile_request(corpus))
            frame = frame_bytes(1, body)
            with socketlib.create_connection(frontend.address, timeout=10) as sock:
                sock.sendall(frame[: len(frame) // 2])  # mid-frame, then gone
            time.sleep(0.2)
            # The frontend must still serve new clients.
            direct = LearnedEvaluator(result_a.model, scalers)
            with SocketEvaluator(frontend.address, timeout_s=30) as remote:
                tiles = enumerate_tile_sizes(records[0].kernel)[:4]
                np.testing.assert_array_equal(
                    remote.score_tiles_batched(records[0].kernel, tiles),
                    direct.score_tiles_batched(records[0].kernel, tiles),
                )

    def test_abrupt_close_resolves_inflight_typed(self, corpus, result_a):
        """A peer that disconnects with requests in flight: the futures
        resolve with a typed ``disconnected`` error (no waiter blocks) and
        the service sheds them as abandoned instead of spending forwards."""
        service = CostModelService(
            result_a,
            ServiceConfig(
                flush_interval_s=0.3, adaptive_flush=False,
                result_cache_entries=0,
            ),
        ).start()
        try:
            with SocketFrontend(service) as frontend:
                body = encode_request(_tile_request(corpus))
                sock = socketlib.create_connection(frontend.address, timeout=10)
                sock.sendall(frame_bytes(1, body))
                deadline = time.monotonic() + 5
                while frontend.stats()["frames_in"] < 1:
                    if time.monotonic() > deadline:
                        pytest.fail("frame never ingested")
                    time.sleep(0.01)
                sock.close()  # the request is still queued (0.3s flush)
                deadline = time.monotonic() + 5
                while frontend.stats()["abandoned_requests"] < 1:
                    if time.monotonic() > deadline:
                        pytest.fail("in-flight future never resolved on drop")
                    time.sleep(0.01)
                stats = frontend.stats()
                assert stats["dropped_connections"] >= 1
                time.sleep(0.5)  # let the batch cut and shed run
                assert service.metrics()["abandoned"] >= 1.0
        finally:
            service.stop()

    def test_recv_drop_fault_is_retried_by_client(
        self, corpus, result_a, thread_service
    ):
        records, scalers = corpus
        plan = FaultPlan(
            rules=(FaultRule(hook="frontend.recv", kind="drop", count=1),)
        )
        direct = LearnedEvaluator(result_a.model, scalers)
        with SocketFrontend(
            thread_service, fault_injector=FaultInjector(plan)
        ) as frontend:
            with SocketEvaluator(
                frontend.address, timeout_s=30,
                retry=RetryPolicy(base_backoff_s=0.01),
            ) as remote:
                tiles = enumerate_tile_sizes(records[0].kernel)[:4]
                scores = remote.score_tiles_batched(records[0].kernel, tiles)
                np.testing.assert_array_equal(
                    scores, direct.score_tiles_batched(records[0].kernel, tiles)
                )
                assert remote.reconnects == 1 and remote.retries == 1

    def test_overload_crosses_wire_typed_and_retry_recovers(
        self, corpus, result_a
    ):
        """Admission-control rejections reach socket clients as typed
        ``overloaded`` responses; a retrying client backs off and lands
        once the queue drains."""
        records, _ = corpus
        service = CostModelService(
            result_a,
            ServiceConfig(max_pending=1, result_cache_entries=0,
                          flush_interval_s=0.4, adaptive_flush=False),
        ).start()
        try:
            with SocketFrontend(service) as frontend:
                # A raw peer parks one request in the queue (0.4s until the
                # batch cuts), filling max_pending.
                blocker = socketlib.create_connection(
                    frontend.address, timeout=10
                )
                blocker.sendall(
                    frame_bytes(1, encode_request(_tile_request(corpus)))
                )
                deadline = time.monotonic() + 5
                while service.metrics()["pending"] < 1:
                    if time.monotonic() > deadline:
                        pytest.fail("blocker request never queued")
                    time.sleep(0.01)
                with SocketEvaluator(
                    frontend.address, timeout_s=30,
                    retry=RetryPolicy(
                        max_attempts=10, base_backoff_s=0.05,
                        max_backoff_s=0.3,
                    ),
                ) as remote:
                    tiles = enumerate_tile_sizes(records[1].kernel)[:3]
                    scores = remote.score_tiles_batched(
                        records[1].kernel, tiles
                    )
                    assert scores.shape == (3,)
                    assert remote.retries >= 1
                blocker.close()
            assert service.metrics()["overload_rejections"] >= 1.0
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# process executor under chaos
# ---------------------------------------------------------------------- #


def _chaos_service(result_a, plan, **config_kwargs):
    faults = FaultInjector(plan) if plan is not None else None
    config = ServiceConfig(
        executor="process", replicas=1, result_cache_entries=0,
        dispatch_timeout_s=config_kwargs.pop("dispatch_timeout_s", 2.0),
        **config_kwargs,
    )
    return CostModelService(result_a, config, faults=faults)


class TestProcessExecutorChaos:
    def test_dispatch_kill_recovers_bitwise(self, corpus, result_a):
        records, scalers = corpus
        plan = FaultPlan(
            rules=(FaultRule(hook="executor.dispatch", kind="kill", count=1),)
        )
        service = _chaos_service(result_a, plan)
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            direct = LearnedEvaluator(result_a.model, scalers)
            for record in records[:3]:
                tiles = enumerate_tile_sizes(record.kernel)[:4]
                np.testing.assert_array_equal(
                    client.score_tiles_batched(record.kernel, tiles),
                    direct.score_tiles_batched(record.kernel, tiles),
                )
            assert client.degraded_responses == 0
            assert service.executor._shards[0].restarts >= 1
        finally:
            service.stop()

    def test_hung_worker_is_detected_and_replaced(self, corpus, result_a):
        """SIGSTOP (alive but unresponsive) must be caught by the bounded
        dispatch poll within dispatch_timeout_s — not hang the batch."""
        records, scalers = corpus
        plan = FaultPlan(
            rules=(FaultRule(hook="executor.dispatch", kind="hang", count=1),)
        )
        # dispatch_timeout_s bounds every pipe reply wait — including the
        # respawned worker's boot + checkpoint load in the fallback path —
        # so it must cover a cold spawn, not just a healthy forward.
        service = _chaos_service(result_a, plan, dispatch_timeout_s=2.0)
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            direct = LearnedEvaluator(result_a.model, scalers)
            tiles = enumerate_tile_sizes(records[0].kernel)[:4]
            started = time.monotonic()
            scores = client.score_tiles_batched(records[0].kernel, tiles)
            elapsed = time.monotonic() - started
            np.testing.assert_array_equal(
                scores, direct.score_tiles_batched(records[0].kernel, tiles)
            )
            assert elapsed < 30.0  # bounded by watchdog + respawn, not ∞
            assert service.executor._shards[0].restarts >= 1
        finally:
            service.stop()

    def test_corrupt_checkpoint_blob_recovers(self, corpus, result_a):
        """A blob corrupted in flight fails integrity-checked load; the
        retry ships clean bytes and serving continues bitwise-correct."""
        records, scalers = corpus
        plan = FaultPlan(
            rules=(FaultRule(hook="registry.load", kind="corrupt", count=1),)
        )
        service = _chaos_service(result_a, plan)
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            direct = LearnedEvaluator(result_a.model, scalers)
            tiles = enumerate_tile_sizes(records[0].kernel)[:4]
            np.testing.assert_array_equal(
                client.score_tiles_batched(records[0].kernel, tiles),
                direct.score_tiles_batched(records[0].kernel, tiles),
            )
        finally:
            service.stop()

    def test_respawn_storm_hits_backoff_and_breaker(self, corpus, result_a):
        """A worker that dies on *every* forward: respawns must be
        suppressed by crash-loop backoff, the shard's breaker must open,
        and every request must still resolve (degraded)."""
        records, _ = corpus
        plan = FaultPlan(
            rules=(
                FaultRule(hook="worker.forward", kind="kill", count=None),
            )
        )
        service = _chaos_service(
            result_a, plan, breaker_failure_threshold=2, breaker_reset_s=30.0
        )
        try:
            responses = []
            for index in range(6):
                record = records[index % len(records)]
                future = service.submit(
                    TileScoresRequest(
                        kernel=record.kernel,
                        tiles=tuple(enumerate_tile_sizes(record.kernel)[:3]),
                    )
                )
                service.flush()
                responses.append(future.result(timeout=60))
            # Every request resolved: degraded answer or typed error.
            for response in responses:
                assert response.degraded or response.error_code is not None
            assert any(r.degraded for r in responses)
            shard = service.executor._shards[0]
            assert shard.backoff.failures >= 2
            metrics = service.metrics()
            assert metrics["breakers"]["0"]["state"] == "open"
            assert metrics["breaker_open_seconds"] > 0.0
            # Respawns are bounded by the backoff, not one per attempt.
            assert shard.restarts <= 2 * len(responses)
            per_shard = metrics["per_shard"]["0"]
            assert per_shard["backoff_failures"] >= 2
        finally:
            service.stop()

    def test_worker_plan_only_ships_worker_rules(self, result_a):
        plan = FaultPlan(
            rules=(
                FaultRule(hook="worker.forward", kind="delay", delay_s=0.01),
                FaultRule(hook="frontend.recv", kind="drop"),
            )
        )
        service = _chaos_service(result_a, plan)
        try:
            assert service.executor._worker_plan.hooks() == {"worker.forward"}
        finally:
            service.stop()


# ---------------------------------------------------------------------- #
# registry: atomic spill
# ---------------------------------------------------------------------- #


class TestAtomicSpill:
    def _registry(self, result_a):
        registry = ModelRegistry()
        registry.publish(result_a)
        return registry

    def test_spill_leaves_no_temp_files(self, result_a, tmp_path):
        registry = self._registry(result_a)
        registry.spill(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))
        reloaded = ModelRegistry.load(tmp_path)
        assert reloaded.blob("v1") == registry.blob("v1")

    def test_crash_mid_spill_preserves_previous_files(
        self, result_a, tmp_path, monkeypatch
    ):
        registry = self._registry(result_a)
        registry.spill(tmp_path)
        before_blob = (tmp_path / "v1.ckpt").read_bytes()
        before_manifest = (tmp_path / "manifest.json").read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr("repro.serving.registry.os.replace", crash)
        with pytest.raises(OSError):
            registry.spill(tmp_path)
        monkeypatch.undo()
        # The previous complete files survived, byte-identical, and no
        # temp debris is left for load() to trip on.
        assert (tmp_path / "v1.ckpt").read_bytes() == before_blob
        assert (tmp_path / "manifest.json").read_bytes() == before_manifest
        assert not list(tmp_path.glob("*.tmp"))
        assert ModelRegistry.load(tmp_path).blob("v1") == registry.blob("v1")


# ---------------------------------------------------------------------- #
# combined chaos: the serving contract end to end
# ---------------------------------------------------------------------- #


class TestChaosIntegration:
    def test_every_request_resolves_under_chaos(self, corpus, result_a):
        """Kills + hangs + connection drops + blob corruption at once:
        16 requests from 4 concurrent clients all resolve within their
        deadline as answer | typed error | degraded — and no client
        thread is left hanging."""
        records, _ = corpus
        plan = FaultPlan(
            rules=(
                FaultRule(hook="executor.dispatch", kind="kill", count=1),
                FaultRule(hook="executor.dispatch", kind="hang", after=3,
                          count=1),
                FaultRule(hook="registry.load", kind="corrupt", count=1),
                FaultRule(hook="frontend.recv", kind="drop", after=2, count=1),
            ),
            seed=11,
        )
        faults = FaultInjector(plan)
        service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=1, result_cache_entries=0,
                dispatch_timeout_s=2.5, breaker_failure_threshold=3,
                breaker_reset_s=0.2,
            ),
            faults=faults,
        ).start()
        outcomes = []
        outcome_lock = threading.Lock()
        try:
            with SocketFrontend(service, fault_injector=faults) as frontend:
                def run_client(client_index):
                    retry = RetryPolicy(max_attempts=6, base_backoff_s=0.02)
                    if client_index % 2:
                        client = SocketEvaluator(
                            frontend.address, timeout_s=60,
                            deadline_s=30.0, retry=retry,
                        )
                    else:
                        client = ServiceEvaluator(
                            service, timeout_s=60,
                            deadline_s=30.0, retry=retry,
                        )
                    try:
                        for i in range(4):
                            record = records[(client_index + i) % len(records)]
                            tiles = enumerate_tile_sizes(record.kernel)[:3]
                            try:
                                value = client.score_tiles_batched(
                                    record.kernel, tiles
                                )
                                assert value.shape == (3,)
                                kind = (
                                    "degraded"
                                    if client.last_response.degraded
                                    else "ok"
                                )
                            except (Overloaded, DeadlineExceeded,
                                    ConnectionLost) as exc:
                                kind = f"typed:{exc.code}"
                            with outcome_lock:
                                outcomes.append(kind)
                    finally:
                        if isinstance(client, SocketEvaluator):
                            client.close()

                threads = [
                    threading.Thread(target=run_client, args=(i,), daemon=True)
                    for i in range(4)
                ]
                started = time.monotonic()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                hung = [t for t in threads if t.is_alive()]
                assert not hung, f"{len(hung)} client thread(s) wedged"
                assert time.monotonic() - started < 120
            # The contract: all 16 requests resolved, each as exactly one
            # of answer / degraded / typed error — nothing untyped, no gap.
            assert len(outcomes) == 16
            assert all(
                o == "ok" or o == "degraded" or o.startswith("typed:")
                for o in outcomes
            )
            assert any(o == "ok" for o in outcomes)  # service recovered
        finally:
            service.stop()
