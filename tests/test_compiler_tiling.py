"""Tests for tile enumeration, footprints and transfer estimates."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import (
    Kernel,
    TileConfig,
    TilingParams,
    candidate_block_sizes,
    default_tile,
    enumerate_tile_sizes,
    tile_footprint_bytes,
)
from repro.compiler.tiling import tile_transfer_bytes
from repro.hlo import GraphBuilder, Shape


def dense_kernel(m=64, k=32, n=128):
    b = GraphBuilder("dense")
    x = b.parameter((m, k))
    w = b.constant((k, n))
    y = b.dot(x, w)
    g = b.build()
    return Kernel(graph=g, kind="other")


class TestTileConfig:
    def test_volume(self):
        assert TileConfig((4, 8)).volume == 32
        assert TileConfig(()).volume == 1

    def test_iterations_ceil_division(self):
        out = Shape((10, 7))
        assert TileConfig((4, 4)).iterations(out) == 3 * 2
        assert TileConfig((10, 7)).iterations(out) == 1

    def test_iterations_scalar_output(self):
        assert TileConfig(()).iterations(Shape(())) == 1


class TestCandidates:
    def test_powers_of_two_present(self):
        c = candidate_block_sizes(64, cap=20)
        for p in (1, 2, 4, 8, 16, 32, 64):
            assert p in c

    def test_dim_itself_always_present(self):
        for dim in (1, 5, 100, 1000):
            assert dim in candidate_block_sizes(dim, cap=8)

    def test_cap_respected(self):
        assert len(candidate_block_sizes(100000, cap=6)) <= 6

    def test_multiples_of_128(self):
        c = candidate_block_sizes(512, cap=30)
        assert 128 in c and 256 in c

    @given(st.integers(min_value=1, max_value=4096))
    def test_all_candidates_in_range(self, dim):
        for c in candidate_block_sizes(dim, cap=10):
            assert 1 <= c <= dim


class TestEnumeration:
    def test_all_enumerated_tiles_fit_budget(self):
        k = dense_kernel()
        params = TilingParams()
        budget = int(params.scratchpad_bytes * params.scratchpad_fraction)
        for t in enumerate_tile_sizes(k, params):
            assert tile_footprint_bytes(k, t) <= budget

    def test_at_least_one_config(self):
        # A huge kernel still yields a (clamped) config.
        k = dense_kernel(m=4096, k=2048, n=4096)
        params = TilingParams(scratchpad_bytes=64 * 1024)
        configs = enumerate_tile_sizes(k, params)
        assert configs

    def test_max_configs_cap(self):
        k = dense_kernel(m=512, k=64, n=512)
        params = TilingParams(max_configs=16)
        assert len(enumerate_tile_sizes(k, params)) <= 16

    def test_tile_rank_matches_output(self):
        k = dense_kernel()
        for t in enumerate_tile_sizes(k):
            assert len(t.dims) == 2

    def test_data_formatting_gets_trivial_config(self):
        b = GraphBuilder("g")
        x = b.parameter((4, 6))
        b.transpose(x, (1, 0))
        k = Kernel(graph=b.build(), kind="data_formatting")
        tiles = enumerate_tile_sizes(k)
        assert tiles == [TileConfig((6, 4))]

    def test_enumeration_deterministic(self):
        k = dense_kernel()
        a = enumerate_tile_sizes(k)
        b = enumerate_tile_sizes(k)
        assert a == b


class TestFootprintAndTransfer:
    def test_footprint_grows_with_tile(self):
        k = dense_kernel()
        small = tile_footprint_bytes(k, TileConfig((8, 16)))
        large = tile_footprint_bytes(k, TileConfig((64, 128)))
        assert large > small

    def test_transfer_out_is_tile_bytes(self):
        k = dense_kernel()
        t = TileConfig((16, 32))
        _, out_bytes = tile_transfer_bytes(k, t)
        assert out_bytes == 16 * 32 * 4

    def test_transfer_in_nonnegative(self):
        k = dense_kernel()
        for t in enumerate_tile_sizes(k):
            in_b, out_b = tile_transfer_bytes(k, t)
            assert in_b >= 0 and out_b > 0

    def test_default_tile_is_valid_and_maximal(self):
        k = dense_kernel()
        params = TilingParams()
        tiles = enumerate_tile_sizes(k, params)
        d = default_tile(k, params)
        assert d in tiles
        assert d.volume == max(t.volume for t in tiles)

    @given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=256))
    @settings(max_examples=20, deadline=None)
    def test_iterations_times_volume_covers_output(self, m, n):
        k = dense_kernel(m=m, k=16, n=n)
        out = k.primary_output().shape
        for t in enumerate_tile_sizes(k, TilingParams(max_configs=8)):
            assert t.iterations(out) * t.volume >= out.num_elements
