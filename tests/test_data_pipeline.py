"""Tests for dataset generation, batching and balanced sampling."""
import numpy as np
import pytest

from repro.data import (
    FusionBatchSampler,
    Scalers,
    TileBatchSampler,
    assemble_batch,
    build_fusion_dataset,
    build_tile_dataset,
)
from repro.workloads import sequence, vision


@pytest.fixture(scope="module")
def programs():
    return [vision.image_embed(0), sequence.feats2wave(0), vision.ssd(0)]


@pytest.fixture(scope="module")
def tile_ds(programs):
    return build_tile_dataset(
        programs, max_kernels_per_program=6, max_tiles_per_kernel=8, seed=0
    )


@pytest.fixture(scope="module")
def fusion_ds(programs):
    return build_fusion_dataset(programs, configs_per_program=2, seed=0)


class TestTileDataset:
    def test_nonempty_with_expected_counts(self, tile_ds, programs):
        assert tile_ds.num_kernels > 0
        assert tile_ds.num_samples >= 2 * tile_ds.num_kernels
        assert set(tile_ds.by_program()) == {p.name for p in programs}

    def test_every_record_has_multiple_tiles(self, tile_ds):
        for r in tile_ds.records:
            assert r.num_samples >= 2
            assert len(r.tiles) == len(r.runtimes) == len(r.tile_feats)

    def test_runtimes_positive(self, tile_ds):
        for r in tile_ds.records:
            assert (r.runtimes > 0).all()

    def test_kernel_cap_respected(self, programs):
        ds = build_tile_dataset(programs[:1], max_kernels_per_program=3, max_tiles_per_kernel=4)
        assert ds.num_kernels <= 3
        assert all(r.num_samples <= 4 for r in ds.records)

    def test_deterministic(self, programs):
        a = build_tile_dataset(programs[:1], max_kernels_per_program=4, max_tiles_per_kernel=4, seed=5)
        b = build_tile_dataset(programs[:1], max_kernels_per_program=4, max_tiles_per_kernel=4, seed=5)
        assert a.num_samples == b.num_samples
        np.testing.assert_allclose(a.records[0].runtimes, b.records[0].runtimes)


class TestFusionDataset:
    def test_deduplication(self, fusion_ds):
        fps = [r.kernel.fingerprint() for r in fusion_ds.records]
        assert len(fps) == len(set(fps))

    def test_provenance(self, fusion_ds, programs):
        assert set(fusion_ds.by_program()) <= {p.name for p in programs}
        for r in fusion_ds.records:
            assert r.runtime > 0
            assert r.family

    def test_more_configs_more_samples(self, programs):
        small = build_fusion_dataset(programs[:1], configs_per_program=1, seed=0)
        large = build_fusion_dataset(programs[:1], configs_per_program=5, seed=0)
        assert large.num_samples >= small.num_samples


class TestAssembleBatch:
    def test_alignment(self, tile_ds):
        recs = tile_ds.records[:3]
        items = [(r.features, r.tile_feats[0], float(r.runtimes[0]), g) for g, r in enumerate(recs)]
        batch = assemble_batch(items)
        assert batch.size == 3
        assert batch.context.num_graphs == 3
        total = sum(r.features.num_nodes for r in recs)
        assert batch.opcodes.shape == (total,)
        assert batch.node_feats.shape[0] == total
        assert batch.tile_feats.shape == (3, recs[0].tile_feats.shape[1])

    def test_pad_mask_matches_sizes(self, tile_ds):
        recs = tile_ds.records[:2]
        items = [(r.features, None, 1.0, i) for i, r in enumerate(recs)]
        batch = assemble_batch(items)
        for row, r in enumerate(recs):
            assert batch.pad_mask[row].sum() == r.features.num_nodes

    def test_pad_index_points_to_own_graph(self, tile_ds):
        recs = tile_ds.records[:3]
        items = [(r.features, None, 1.0, i) for i, r in enumerate(recs)]
        batch = assemble_batch(items)
        for row in range(3):
            valid = batch.pad_index[row][batch.pad_mask[row]]
            assert (batch.context.graph_ids[valid] == row).all()

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            assemble_batch([])

    def test_scaling_applied(self, tile_ds):
        recs = tile_ds.records
        scalers = Scalers.fit_tile(recs)
        items = [(r.features, r.tile_feats[0], 1.0, i) for i, r in enumerate(recs[:4])]
        batch = assemble_batch(items, scalers)
        assert batch.node_feats.min() >= 0.0 and batch.node_feats.max() <= 1.0
        assert batch.tile_feats.min() >= 0.0 and batch.tile_feats.max() <= 1.0

    def test_none_tile_becomes_zeros(self, fusion_ds):
        r = fusion_ds.records[0]
        batch = assemble_batch([(r.features, None, r.runtime, 0)])
        assert (batch.tile_feats == 0).all()


class TestSamplers:
    def test_tile_sampler_groups(self, tile_ds):
        sampler = TileBatchSampler(tile_ds.records, kernels_per_batch=4, tiles_per_kernel=3, seed=0)
        items = sampler.draw_items()
        groups = [g for _, _, _, g in items]
        assert set(groups) == {0, 1, 2, 3}
        # All items of one group share identical features object.
        by_group = {}
        for f, t, y, g in items:
            by_group.setdefault(g, set()).add(id(f))
        assert all(len(v) == 1 for v in by_group.values())

    def test_tile_sampler_balances_families(self, tile_ds):
        sampler = TileBatchSampler(tile_ds.records, kernels_per_batch=8, tiles_per_kernel=2, seed=1)
        fams = {r.family for r in tile_ds.records}
        seen = set()
        for _ in range(30):
            for f, _, _, _ in sampler.draw_items():
                pass
        # family buckets must cover all families present.
        assert set(sampler.family_names) == fams

    def test_fusion_sampler_batch_size(self, fusion_ds):
        sampler = FusionBatchSampler(fusion_ds.records, batch_size=10, seed=0)
        items = sampler.draw_items()
        assert len(items) == 10
        assert all(t is None for _, t, _, _ in items)

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            TileBatchSampler([])
        with pytest.raises(ValueError):
            FusionBatchSampler([])
