"""Tests for the layout-assignment pass."""
import pytest

from repro.compiler import (
    Kernel,
    best_output_layout,
    default_tile,
    enumerate_output_layouts,
    with_output_layout,
)
from repro.hlo import GraphBuilder, Layout
from repro.tpu import TpuSimulator


def skinny_kernel():
    """Output [8, 4096]: layout choice changes the minor dim 4096 <-> 8."""
    b = GraphBuilder("skinny")
    x = b.parameter((8, 256))
    w = b.constant((256, 4096))
    y = b.dot(x, w)
    b.tanh(y)
    return Kernel(graph=b.build(), kind="fusion")


class TestEnumeration:
    def test_default_first(self):
        k = skinny_kernel()
        layouts = enumerate_output_layouts(k)
        assert layouts[0] == Layout.default(2)

    def test_rank2_has_both_orders(self):
        k = skinny_kernel()
        layouts = enumerate_output_layouts(k)
        assert Layout((0, 1)) in layouts and Layout((1, 0)) in layouts

    def test_scalar_single_layout(self):
        b = GraphBuilder("s")
        x = b.parameter((16,))
        b.reduce(x, [0], kind="sum")
        k = Kernel(graph=b.build(), kind="other")
        assert enumerate_output_layouts(k) == [Layout.default(0)]

    def test_cap_respected_high_rank(self):
        b = GraphBuilder("r4")
        x = b.parameter((2, 4, 8, 16))
        b.tanh(x)
        k = Kernel(graph=b.build(), kind="other")
        assert len(enumerate_output_layouts(k, cap=3)) == 3


class TestWithOutputLayout:
    def test_layout_applied_only_to_primary_output(self):
        k = skinny_kernel()
        flipped = with_output_layout(k, Layout((0, 1)))
        assert flipped.primary_output().shape.layout == Layout((0, 1))
        for inst in flipped.graph:
            if inst.id != flipped.primary_output().id:
                assert inst.shape.layout.is_default()

    def test_graph_still_validates(self):
        k = skinny_kernel()
        with_output_layout(k, Layout((0, 1))).graph.validate()

    def test_fingerprint_is_layout_blind(self):
        """Kernel identity is *logical* content: relaying out the output
        does not change the fingerprint (so the simulator's per-kernel
        quirk is shared across layouts, while layout still changes runtime
        through the alignment terms -- see TestLayoutCost)."""
        k = skinny_kernel()
        flipped = with_output_layout(k, Layout((0, 1)))
        assert flipped.fingerprint() == k.fingerprint()

    def test_invalid_layout_rejected(self):
        k = skinny_kernel()
        with pytest.raises(ValueError):
            with_output_layout(k, Layout((0, 1, 2)))


class TestLayoutCost:
    def test_layout_changes_simulated_runtime(self):
        sim = TpuSimulator(quirk_amplitude=0)
        k = skinny_kernel()
        wide_minor = sim.run(k, default_tile(k))
        flipped = with_output_layout(k, Layout((0, 1)))
        narrow_minor = sim.run(flipped, default_tile(flipped))
        assert wide_minor != narrow_minor

    def test_best_layout_minimizes_cost(self):
        sim = TpuSimulator(quirk_amplitude=0)
        k = skinny_kernel()
        cost = lambda kk: sim.run(kk, default_tile(kk))
        layout, best_cost = best_output_layout(k, cost)
        for candidate in enumerate_output_layouts(k):
            assert best_cost <= cost(with_output_layout(k, candidate)) + 1e-15
