"""Tests for graphs: construction, validation, topology, subgraphs."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hlo import Graph, GraphError, Instruction, Opcode, Program, Shape


def make_inst(i, opcode=Opcode.PARAMETER, operands=(), dims=(4,), **kw):
    return Instruction(id=i, opcode=opcode, shape=Shape(dims), operands=operands, **kw)


def chain_graph(n=4):
    """param -> tanh -> tanh -> ... chain of n nodes."""
    g = Graph("chain")
    g.add(make_inst(0))
    for i in range(1, n):
        g.add(make_inst(i, Opcode.TANH, (i - 1,)))
    return g


class TestGraphBasics:
    def test_add_and_get(self):
        g = Graph()
        inst = g.add(make_inst(0))
        assert g.get(0) is inst
        assert len(g) == 1
        assert 0 in g

    def test_duplicate_id_rejected(self):
        g = Graph()
        g.add(make_inst(0))
        with pytest.raises(GraphError):
            g.add(make_inst(0))

    def test_missing_operand_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add(make_inst(1, Opcode.TANH, (0,)))

    def test_operands_of(self):
        g = chain_graph(3)
        ops = g.operands_of(2)
        assert [o.id for o in ops] == [1]

    def test_users_map(self):
        g = chain_graph(3)
        users = g.users()
        assert users[0] == [1]
        assert users[1] == [2]
        assert users[2] == []

    def test_roots_are_sinks(self):
        g = chain_graph(3)
        assert [r.id for r in g.roots()] == [2]

    def test_explicit_root_marking(self):
        g = chain_graph(3)
        g.get(1).is_root = True
        assert sorted(r.id for r in g.roots()) == [1, 2]

    def test_parameters_listed_in_order(self):
        g = Graph()
        g.add(make_inst(3))
        g.add(make_inst(1))
        g.add(make_inst(2, Opcode.ADD, (3, 1), dims=(4,)))
        assert [p.id for p in g.parameters()] == [1, 3]


class TestTopology:
    def test_topological_order_respects_edges(self):
        g = chain_graph(5)
        order = [i.id for i in g.topological_order()]
        assert order == [0, 1, 2, 3, 4]

    def test_cycle_detected(self):
        g = Graph()
        # Build a cycle by hand (bypassing add()'s operand check).
        g.instructions[0] = Instruction(0, Opcode.TANH, Shape((4,)), (1,))
        g.instructions[1] = Instruction(1, Opcode.TANH, Shape((4,)), (0,))
        with pytest.raises(GraphError):
            g.topological_order()

    def test_validate_passes_for_valid_graph(self):
        chain_graph(4).validate()

    def test_validate_rejects_key_mismatch(self):
        g = chain_graph(2)
        g.instructions[5] = g.instructions.pop(1)
        with pytest.raises(GraphError):
            g.validate()

    def test_adjacency_matrix(self):
        g = chain_graph(3)
        a = g.adjacency_matrix()
        expected = np.zeros((3, 3), dtype=np.float32)
        expected[0, 1] = expected[1, 2] = 1.0
        assert np.array_equal(a, expected)

    def test_adjacency_upper_triangular_in_topo_order(self):
        g = chain_graph(6)
        a = g.adjacency_matrix()
        assert np.allclose(a, np.triu(a, 1))


class TestSubgraph:
    def diamond(self):
        g = Graph("diamond")
        g.add(make_inst(0))
        g.add(make_inst(1, Opcode.TANH, (0,)))
        g.add(make_inst(2, Opcode.EXP, (0,)))
        g.add(make_inst(3, Opcode.ADD, (1, 2)))
        return g

    def test_subgraph_imports_external_operands_as_parameters(self):
        g = self.diamond()
        sub = g.subgraph({3})
        params = sub.parameters()
        assert len(params) == 2
        assert all(p.attr("imported_from") in (1, 2) for p in params)

    def test_subgraph_marks_outputs(self):
        g = self.diamond()
        sub = g.subgraph({1, 2})
        roots = sub.roots()
        assert len(roots) == 2  # both feed node 3 outside

    def test_subgraph_ids_dense_topological(self):
        g = self.diamond()
        sub = g.subgraph({0, 1, 2, 3})
        assert sorted(sub.instructions) == list(range(len(sub)))
        sub.validate()

    def test_subgraph_shares_external_producer_parameter(self):
        g = self.diamond()
        sub = g.subgraph({1, 2})  # both consume node 0 from outside
        assert len(sub.parameters()) == 1

    def test_clone_is_independent(self):
        g = chain_graph(3)
        c = g.clone()
        c.get(0).attrs["x"] = 1
        assert "x" not in g.get(0).attrs
        assert len(c) == len(g)


class TestProgram:
    def test_family_defaults_to_name(self):
        p = Program("net", chain_graph(2))
        assert p.family == "net"
        p2 = Program("net_1", chain_graph(2), family="net")
        assert p2.family == "net"


@st.composite
def random_dag(draw):
    """Random DAG: each node consumes up to 2 earlier nodes."""
    n = draw(st.integers(min_value=1, max_value=12))
    g = Graph("rand")
    g.add(make_inst(0))
    for i in range(1, n):
        arity = draw(st.integers(min_value=0, max_value=min(2, i)))
        if arity == 0:
            g.add(make_inst(i))
        elif arity == 1:
            op = draw(st.integers(min_value=0, max_value=i - 1))
            g.add(make_inst(i, Opcode.TANH, (op,)))
        else:
            a = draw(st.integers(min_value=0, max_value=i - 1))
            b = draw(st.integers(min_value=0, max_value=i - 1))
            g.add(make_inst(i, Opcode.ADD, (a, b)))
    return g


class TestGraphProperties:
    @given(random_dag())
    @settings(max_examples=40)
    def test_topological_order_property(self, g):
        order = g.topological_order()
        pos = {inst.id: k for k, inst in enumerate(order)}
        assert len(order) == len(g)
        for inst in g:
            for op in inst.operands:
                assert pos[op] < pos[inst.id]

    @given(random_dag())
    @settings(max_examples=40)
    def test_subgraph_always_validates(self, g):
        ids = [i for i in g.instructions if i % 2 == 0]
        if not ids:
            return
        sub = g.subgraph(ids)
        sub.validate()

    @given(random_dag())
    @settings(max_examples=40)
    def test_adjacency_edge_count(self, g):
        a = g.adjacency_matrix()
        edges = sum(len(inst.operands) for inst in g)
        assert a.sum() <= edges  # duplicate operands collapse to one cell
        assert a.sum() >= len({(o, i.id) for i in g for o in i.operands})
