"""Tests for the layered serving stack: transport / scheduling / execution.

The load-bearing guarantees on top of ``test_serving.py``:

* **wire fidelity** — protocol messages survive ``to_bytes``/``from_bytes``
  exactly (kernels by fingerprint, score arrays bitwise);
* **placement equivalence** — the ``ProcessShardExecutor`` and the socket
  frontend serve responses bitwise-identical to the in-thread/in-process
  path at equal batch shape;
* **cross-process hot-swap atomicity** — a swap applies between
  micro-batches even when shards live in worker subprocesses, and a
  worker killed mid-swap resyncs to the active version before serving;
* **blob integrity** — truncated/corrupt checkpoint bytes fail with the
  typed ``ModelBlobError``, and registry disk spill round-trips blobs
  byte-identically.
"""
import os
import signal
import time

import numpy as np
import pytest

from repro.autotuner import LearnedEvaluator
from repro.compiler import enumerate_tile_sizes
from repro.compiler.kernels import Kernel
from repro.data import Scalers, build_tile_dataset
from repro.models import (
    LearnedPerformanceModel,
    ModelBlobError,
    ModelConfig,
    load_model,
    save_model_bytes,
    validate_model_blob,
)
from repro.models.trainer import TrainResult
from repro.serving import (
    CostModelService,
    KernelRuntimeRequest,
    MicroBatcher,
    ModelRegistry,
    ProcessShardExecutor,
    ProgramRuntimesRequest,
    Response,
    ServiceConfig,
    ServiceEvaluator,
    SocketEvaluator,
    SocketFrontend,
    TileScoresRequest,
    WireError,
    decode_request,
    encode_request,
    recv_frame,
    send_frame,
    shard_of,
)
from repro.workloads import vision

SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


@pytest.fixture(scope="module")
def corpus():
    ds = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=6, max_tiles_per_kernel=6, seed=0
    )
    scalers = Scalers.fit_tile(ds.records)
    return ds.records, scalers


def _result(corpus, seed=0):
    _, scalers = corpus
    cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
    model = LearnedPerformanceModel(cfg, seed=seed)
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


@pytest.fixture(scope="module")
def result_a(corpus):
    return _result(corpus, seed=0)


@pytest.fixture(scope="module")
def result_b(corpus):
    return _result(corpus, seed=1)


@pytest.fixture(scope="module")
def process_service(corpus, result_a, result_b):
    """One module-wide process-sharded service (spawn cost amortized).

    Publishes v1 (active) and v2 (staged) like the hot-swap tests in
    ``test_serving.py``; tests that activate v2 must activate v1 back.
    """
    registry = ModelRegistry()
    registry.publish(result_a)
    registry.publish(result_b, activate=False)
    service = CostModelService(
        registry,
        ServiceConfig(executor="process", replicas=2, result_cache_entries=0),
    )
    yield service
    service.stop()


# ---------------------------------------------------------------------- #
# wire protocol
# ---------------------------------------------------------------------- #


class TestWireProtocol:
    def test_tile_request_roundtrip(self, corpus):
        records, _ = corpus
        kernel = records[0].kernel
        tiles = tuple(enumerate_tile_sizes(kernel)[:4])
        request = TileScoresRequest(kernel=kernel, tiles=tiles)
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, TileScoresRequest)
        assert decoded.kernel.fingerprint() == kernel.fingerprint()
        assert decoded.tiles == tiles
        assert decoded.cache_key() == request.cache_key()
        assert decoded.shard_key() == request.shard_key()

    def test_kernel_runtime_request_roundtrip(self, corpus):
        records, _ = corpus
        request = KernelRuntimeRequest(kernel=records[1].kernel)
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, KernelRuntimeRequest)
        assert decoded.cache_key() == request.cache_key()

    def test_program_request_roundtrip(self, corpus):
        records, _ = corpus
        programs = (
            tuple(r.kernel for r in records[:3]),
            tuple(r.kernel for r in records[3:5]),
        )
        request = ProgramRuntimesRequest(programs=programs)
        decoded = decode_request(encode_request(request))
        assert isinstance(decoded, ProgramRuntimesRequest)
        assert decoded.shard_key() == request.shard_key()
        assert [
            [k.fingerprint() for k in kernels] for kernels in decoded.programs
        ] == [[k.fingerprint() for k in kernels] for kernels in programs]

    def test_kernel_dict_roundtrip_preserves_fingerprint(self, corpus):
        records, _ = corpus
        for record in records:
            rebuilt = Kernel.from_dict(record.kernel.to_dict())
            assert rebuilt.fingerprint() == record.kernel.fingerprint()
            assert rebuilt.kind == record.kernel.kind

    def test_response_array_roundtrip_is_bitwise(self):
        value = (np.arange(7, dtype=np.float32) * 0.1) ** 3
        response = Response(
            value=value, model_version="v9", batch_size=4, latency_s=0.25
        )
        decoded = Response.from_bytes(response.to_bytes())
        np.testing.assert_array_equal(decoded.value, value)
        assert decoded.value.dtype == value.dtype
        assert decoded.model_version == "v9"
        assert decoded.batch_size == 4

    def test_response_scalar_and_error_roundtrip(self):
        scalar = Response(value=3.25e-7, model_version="v1")
        assert Response.from_bytes(scalar.to_bytes()).value == 3.25e-7
        failed = Response(value=None, model_version="v1", error="boom")
        decoded = Response.from_bytes(failed.to_bytes())
        assert decoded.error == "boom" and decoded.value is None
        with pytest.raises(RuntimeError):
            decoded.unwrap()

    def test_garbage_bytes_raise_typed_error(self):
        with pytest.raises(WireError):
            decode_request(b"\x00\x01 not json")
        with pytest.raises(WireError):
            decode_request(b'{"type": "no_such_request"}')
        with pytest.raises(WireError):
            Response.from_bytes(b"\x00")


# ---------------------------------------------------------------------- #
# blob integrity + registry persistence
# ---------------------------------------------------------------------- #


class TestBlobIntegrity:
    def test_truncated_blob_raises_typed_error(self, result_a):
        blob = save_model_bytes(result_a)
        with pytest.raises(ModelBlobError, match="truncated"):
            validate_model_blob(blob[: len(blob) // 2])
        with pytest.raises(ModelBlobError):
            validate_model_blob(blob[:10])

    def test_corrupt_blob_raises_typed_error(self, result_a):
        blob = bytearray(save_model_bytes(result_a))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(ModelBlobError, match="checksum"):
            validate_model_blob(bytes(blob))

    def test_garbage_bytes_raise_typed_error(self):
        with pytest.raises(ModelBlobError, match="not a model blob"):
            validate_model_blob(b"definitely not a checkpoint")

    def test_registry_rejects_corrupt_blob_at_publish(self, result_a):
        blob = bytearray(save_model_bytes(result_a))
        blob[-1] ^= 0xFF
        registry = ModelRegistry()
        with pytest.raises(ModelBlobError):
            registry.publish(bytes(blob))

    def test_valid_blob_passes_and_loads(self, result_a):
        blob = save_model_bytes(result_a)
        validate_model_blob(blob)
        registry = ModelRegistry()
        version = registry.publish(blob)
        loaded = registry.get(version)
        for name, arr in result_a.model.state_dict().items():
            np.testing.assert_array_equal(arr, loaded.model.state_dict()[name])


class TestRegistrySpill:
    def test_spill_load_roundtrips_bytes_identically(self, result_a, result_b, tmp_path):
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, version="candidate", activate=False)
        registry.spill(tmp_path / "reg")
        restored = ModelRegistry.load(tmp_path / "reg")
        assert restored.versions == ["v1", "candidate"]
        assert restored.active_version == "v1"
        assert restored.blob("v1") == registry.blob("v1")
        assert restored.blob("candidate") == registry.blob("candidate")

    def test_restored_registry_serves(self, corpus, result_a, tmp_path):
        records, scalers = corpus
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.spill(tmp_path / "reg")
        restored = ModelRegistry.load(tmp_path / "reg")
        service = CostModelService(restored, ServiceConfig(result_cache_entries=0))
        client = ServiceEvaluator(service)
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:5]
        reference = LearnedEvaluator(result_a.model, scalers).score_tiles_batched(
            kernel, tiles
        )
        np.testing.assert_array_equal(
            client.score_tiles_batched(kernel, tiles), reference
        )

    def test_auto_numbering_resumes_after_load(self, result_a, tmp_path):
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_a, activate=False)  # v2
        registry.spill(tmp_path / "reg")
        restored = ModelRegistry.load(tmp_path / "reg")
        assert restored.publish(result_a, activate=False) == "v3"

    def test_spilled_checkpoint_loads_as_model_file(self, result_a, tmp_path):
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.spill(tmp_path / "reg")
        loaded = load_model(tmp_path / "reg" / "v1.ckpt")
        for name, arr in result_a.model.state_dict().items():
            np.testing.assert_array_equal(arr, loaded.model.state_dict()[name])

    def test_corrupted_spill_file_fails_typed_on_load(self, result_a, tmp_path):
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.spill(tmp_path / "reg")
        path = tmp_path / "reg" / "v1.ckpt"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ModelBlobError):
            ModelRegistry.load(tmp_path / "reg")


# ---------------------------------------------------------------------- #
# adaptive micro-batching
# ---------------------------------------------------------------------- #


class TestAdaptiveFlush:
    def test_fixed_mode_keeps_configured_interval(self):
        mb = MicroBatcher(flush_interval_s=0.005, adaptive_flush=False)
        for _ in range(4):
            mb.submit(KernelRuntimeRequest(kernel=None))
        assert mb.effective_flush_interval() == 0.005

    def test_sparse_arrivals_collapse_interval_to_zero(self):
        mb = MicroBatcher(flush_interval_s=0.002, adaptive_flush=True)
        for _ in range(4):
            mb.submit(KernelRuntimeRequest(kernel=None))
            time.sleep(0.01)  # gap of ~10 ms >> 2 ms window
        assert mb.arrival_gap_ema_s > mb.flush_interval_s
        assert mb.effective_flush_interval() == 0.0

    def test_dense_arrivals_keep_full_interval(self):
        mb = MicroBatcher(flush_interval_s=0.05, adaptive_flush=True)
        for _ in range(8):
            mb.submit(KernelRuntimeRequest(kernel=None))  # back-to-back
        assert mb.arrival_gap_ema_s < mb.flush_interval_s
        assert mb.effective_flush_interval() == 0.05

    def test_sparse_then_dense_recovers_batching(self):
        mb = MicroBatcher(flush_interval_s=0.05, adaptive_flush=True, gap_ema_alpha=0.5)
        mb.submit(KernelRuntimeRequest(kernel=None))
        time.sleep(0.08)
        mb.submit(KernelRuntimeRequest(kernel=None))
        assert mb.effective_flush_interval() == 0.0
        for _ in range(8):
            mb.submit(KernelRuntimeRequest(kernel=None))
        assert mb.effective_flush_interval() == 0.05

    def test_adaptive_sparse_batch_cuts_immediately(self):
        mb = MicroBatcher(max_batch_size=100, flush_interval_s=0.05, adaptive_flush=True)
        for _ in range(3):
            mb.submit(KernelRuntimeRequest(kernel=None))
            time.sleep(0.08)  # EMA gap ~80 ms >= 50 ms window: sparse regime
        mb.drain()
        mb.submit(KernelRuntimeRequest(kernel=None))
        start = time.perf_counter()
        batch = mb.next_batch(timeout=5.0)
        elapsed = time.perf_counter() - start
        assert len(batch) == 1
        # A fixed 50 ms window would hold this lone request for the full
        # window; the sparse-trained EMA cuts it with no added wait.
        assert elapsed < 0.04

    def test_service_exposes_effective_interval(self, result_a):
        service = CostModelService(
            result_a, ServiceConfig(adaptive_flush=True, result_cache_entries=0)
        )
        assert "flush_interval_effective_s" in service.metrics()


# ---------------------------------------------------------------------- #
# process-shard executor
# ---------------------------------------------------------------------- #


class TestProcessShardExecutor:
    def test_bitwise_equivalent_to_direct(self, corpus, result_a, process_service):
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        client = ServiceEvaluator(process_service)
        for record in records[:4]:
            tiles = enumerate_tile_sizes(record.kernel)[:5]
            np.testing.assert_array_equal(
                client.score_tiles_batched(record.kernel, tiles),
                direct.score_tiles_batched(record.kernel, tiles),
            )

    def test_interned_repeat_requests_stay_bitwise(self, corpus, result_a, process_service):
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        client = ServiceEvaluator(process_service)
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:5]
        reference = direct.score_tiles_batched(kernel, tiles)
        for _ in range(3):  # second+ pass ships fingerprint-only commands
            np.testing.assert_array_equal(
                client.score_tiles_batched(kernel, tiles), reference
            )

    def test_program_paths_match_direct(self, corpus, result_a):
        # One shard: runtime/program groups keep the same forward batch
        # shape as the direct batched calls, so the bitwise guarantee
        # applies exactly (with N shards a group splits per shard, which
        # changes batch shape — float32-rounding-level shifts by design).
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=1, max_batch_size=8,
                result_cache_entries=0,
            ),
        )
        try:
            kernels = [r.kernel for r in records[:4]]
            futures = [
                service.submit(KernelRuntimeRequest(kernel=k)) for k in kernels
            ]
            service.flush()
            served = np.asarray([f.result(timeout=60).unwrap() for f in futures])
            reference = direct.program_runtimes_batched([[k] for k in kernels])
            np.testing.assert_array_equal(served, reference)
            client = ServiceEvaluator(service, timeout_s=60.0)
            programs = [
                [r.kernel for r in records[:3]], [r.kernel for r in records[3:5]]
            ]
            np.testing.assert_array_equal(
                client.program_runtimes_batched(programs),
                direct.program_runtimes_batched(programs),
            )
        finally:
            service.stop()

    def test_hot_swap_applies_between_batches(
        self, corpus, result_a, result_b, process_service
    ):
        records, scalers = corpus
        registry = process_service.registry
        client = ServiceEvaluator(process_service)
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:5]
        ref_a = LearnedEvaluator(result_a.model, scalers).score_tiles_batched(kernel, tiles)
        ref_b = LearnedEvaluator(result_b.model, scalers).score_tiles_batched(kernel, tiles)
        try:
            np.testing.assert_array_equal(
                client.score_tiles_batched(kernel, tiles), ref_a
            )
            assert client.model_version == "v1"
            registry.activate("v2")
            np.testing.assert_array_equal(
                client.score_tiles_batched(kernel, tiles), ref_b
            )
            assert client.model_version == "v2"
        finally:
            registry.activate("v1")

    def test_swap_mid_queue_serves_single_version(
        self, corpus, result_b, process_service
    ):
        records, scalers = corpus
        registry = process_service.registry
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:6]
        try:
            f1 = process_service.submit(
                TileScoresRequest(kernel=kernel, tiles=tuple(tiles[:3]))
            )
            f2 = process_service.submit(
                TileScoresRequest(kernel=kernel, tiles=tuple(tiles[3:]))
            )
            registry.activate("v2")  # lands between submit and execution
            process_service.flush()
            r1, r2 = f1.result(timeout=30), f2.result(timeout=30)
            assert r1.model_version == r2.model_version == "v2"
            merged = LearnedEvaluator(result_b.model, scalers).score_tiles_batched(
                kernel, tiles
            )
            np.testing.assert_array_equal(
                np.concatenate([r1.unwrap(), r2.unwrap()]), merged
            )
        finally:
            registry.activate("v1")

    def test_worker_killed_mid_swap_never_serves_old_version(
        self, corpus, result_b, process_service
    ):
        """Kill a worker, hot-swap, then query: the respawned worker must
        resync to the *new* active version before serving anything."""
        records, scalers = corpus
        registry = process_service.registry
        executor = process_service.executor
        client = ServiceEvaluator(process_service, timeout_s=120.0)
        # Prime the shards so workers exist and hold v1.
        for record in records[:4]:
            client.score_tiles_batched(
                record.kernel, enumerate_tile_sizes(record.kernel)[:4]
            )
        primed = [s for s in executor._shards if s.process is not None]
        assert primed, "no shard received any traffic"
        victim = primed[0]
        try:
            assert victim.version == "v1"
            restarts_before = victim.restarts
            os.kill(victim.process.pid, signal.SIGKILL)
            time.sleep(0.1)  # let the SIGKILL land before the next dispatch
            registry.activate("v2")
            for record in records[:4]:
                kernel = record.kernel
                tiles = enumerate_tile_sizes(kernel)[:4]
                scores = client.score_tiles_batched(kernel, tiles)
                assert client.model_version == "v2"
                reference = LearnedEvaluator(
                    result_b.model, scalers
                ).score_tiles_batched(kernel, tiles)
                np.testing.assert_array_equal(scores, reference)
            assert victim.restarts > restarts_before
        finally:
            registry.activate("v1")

    def test_result_cache_is_version_scoped_across_processes(
        self, corpus, result_a, result_b
    ):
        records, _ = corpus
        registry = ModelRegistry()
        registry.publish(result_a)
        registry.publish(result_b, activate=False)
        service = CostModelService(
            registry,
            ServiceConfig(executor="process", replicas=2, result_cache_entries=64),
        )
        try:
            client = ServiceEvaluator(service)
            kernel = records[0].kernel
            tiles = enumerate_tile_sizes(kernel)[:5]
            from_a = client.score_tiles_batched(kernel, tiles)
            assert not client.last_response.cache_hit
            client.score_tiles_batched(kernel, tiles)
            assert client.last_response.cache_hit  # served without a forward
            registry.activate("v2")
            from_b = client.score_tiles_batched(kernel, tiles)
            assert not client.last_response.cache_hit  # v2 never served this
            assert client.model_version == "v2"
            assert not np.array_equal(from_a, from_b)
        finally:
            service.stop()

    def test_per_shard_metrics_populated(self, corpus, process_service):
        records, _ = corpus
        client = ServiceEvaluator(process_service)
        for record in records:
            client.score_tiles_batched(
                record.kernel, enumerate_tile_sizes(record.kernel)[:4]
            )
        per_shard = process_service.metrics()["per_shard"]
        assert len(per_shard) == 2
        assert sum(entry["requests"] for entry in per_shard.values()) > 0
        for entry in per_shard.values():
            assert entry["placement"] == "process"
            assert "latency_p99_s" in entry and "restarts" in entry

    def test_malformed_request_fails_alone(self, corpus, process_service):
        records, _ = corpus
        kernel = records[0].kernel
        tiles = tuple(enumerate_tile_sizes(kernel)[:4])
        good = process_service.submit(TileScoresRequest(kernel=kernel, tiles=tiles))
        bad = process_service.submit(TileScoresRequest(kernel=None, tiles=()))
        process_service.flush()
        assert good.result(timeout=30).error is None
        assert bad.result(timeout=30).error is not None

    def test_fused_tile_groups_single_group_is_bitwise(self, corpus, result_a):
        """score_tile_groups with one group == score_tiles_batched exactly
        (the shape-preserving case the fused shard path relies on)."""
        records, scalers = corpus
        kernel = records[0].kernel
        tiles = enumerate_tile_sizes(kernel)[:6]
        a = LearnedEvaluator(result_a.model, scalers)
        b = LearnedEvaluator(result_a.model, scalers)
        np.testing.assert_array_equal(
            a.score_tile_groups([(kernel, tiles)])[0],
            b.score_tiles_batched(kernel, tiles),
        )

    def test_fused_tile_groups_multi_kernel_close(self, corpus, result_a):
        """Fusing several kernels into one forward changes batch shape,
        which may move scores only at float32 rounding level."""
        records, scalers = corpus
        groups = [
            (r.kernel, enumerate_tile_sizes(r.kernel)[:5]) for r in records[:3]
        ]
        evaluator = LearnedEvaluator(result_a.model, scalers)
        fused = evaluator.score_tile_groups(groups)
        assert len(fused) == 3
        for (kernel, tiles), scores in zip(groups, fused):
            reference = LearnedEvaluator(
                result_a.model, scalers
            ).score_tiles_batched(kernel, tiles)
            assert scores.shape == reference.shape
            np.testing.assert_allclose(scores, reference, rtol=1e-4, atol=1e-7)

    def test_program_interning_miss_retry_is_transparent(self, corpus, result_a):
        """Program commands intern kernels too; a worker whose interning
        map evicted them answers miss and the retry stays correct."""
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=1, max_cached_kernels=1,
                result_cache_entries=0,
            ),
        )
        try:
            client = ServiceEvaluator(service, timeout_s=120.0)
            programs = [
                [r.kernel for r in records[:3]], [r.kernel for r in records[3:5]]
            ]
            reference = direct.program_runtimes_batched(programs)
            for _round in range(3):  # cap of 1 forces misses every round
                np.testing.assert_array_equal(
                    client.program_runtimes_batched(programs), reference
                )
        finally:
            service.stop()

    def test_fused_commands_report_forward_accounting(self, corpus, result_a):
        """N coalesced same-shard tile commands cost one fused forward."""
        records, _ = corpus
        service = CostModelService(
            result_a,
            ServiceConfig(
                executor="process", replicas=1, max_batch_size=16,
                result_cache_entries=0,
            ),
        )
        try:
            futures = [
                service.submit(
                    TileScoresRequest(
                        kernel=r.kernel,
                        tiles=tuple(enumerate_tile_sizes(r.kernel)[:4]),
                    )
                )
                for r in records[:3]
            ]
            service.flush()
            assert all(f.result(timeout=60).error is None for f in futures)
            snap = service.stats.snapshot()
            assert snap["model_forwards"] == 1.0  # three kernels, one forward
        finally:
            service.stop()

    def test_routing_matches_in_thread_executor(self, corpus):
        records, _ = corpus
        for record in records:
            fp = record.kernel.fingerprint()
            assert shard_of(fp, 4) == int(fp[:8], 16) % 4

    def test_executor_requires_valid_shards(self):
        with pytest.raises(ValueError):
            ProcessShardExecutor(ModelRegistry(), shards=0)


# ---------------------------------------------------------------------- #
# socket frontend
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def socket_setup(result_a):
    service = CostModelService(
        result_a, ServiceConfig(result_cache_entries=0)
    ).start()
    frontend = SocketFrontend(service)
    yield service, frontend
    frontend.close()
    service.stop()


class TestSocketFrontend:
    def test_roundtrip_bitwise_equivalent_to_in_process(
        self, corpus, result_a, socket_setup
    ):
        records, scalers = corpus
        service, frontend = socket_setup
        direct = LearnedEvaluator(result_a.model, scalers)
        local = ServiceEvaluator(service)
        with SocketEvaluator(frontend.address) as remote:
            for record in records[:4]:
                tiles = enumerate_tile_sizes(record.kernel)[:5]
                via_socket = remote.score_tiles_batched(record.kernel, tiles)
                via_local = local.score_tiles_batched(record.kernel, tiles)
                reference = direct.score_tiles_batched(record.kernel, tiles)
                np.testing.assert_array_equal(via_socket, via_local)
                np.testing.assert_array_equal(via_socket, reference)
                assert via_socket.dtype == reference.dtype

    def test_all_request_kinds_over_socket(self, corpus, result_a, socket_setup):
        records, scalers = corpus
        _, frontend = socket_setup
        direct = LearnedEvaluator(result_a.model, scalers)
        with SocketEvaluator(frontend.address) as remote:
            runtime = remote.kernel_runtime(records[0].kernel)
            assert runtime == direct.kernel_runtime(records[0].kernel)
            programs = [[r.kernel for r in records[:3]]]
            np.testing.assert_array_equal(
                remote.program_runtimes_batched(programs),
                direct.program_runtimes_batched(programs),
            )
            assert remote.model_version == "v1"

    def test_concurrent_socket_clients(self, corpus, result_a, socket_setup):
        import threading

        records, scalers = corpus
        _, frontend = socket_setup
        direct = LearnedEvaluator(result_a.model, scalers)
        workload = [
            (r.kernel, enumerate_tile_sizes(r.kernel)[:5]) for r in records[:4]
        ]
        references = [direct.score_tiles_batched(k, t) for k, t in workload]
        outputs = {}

        def client(idx, kernel, tiles):
            with SocketEvaluator(frontend.address) as remote:
                outputs[idx] = remote.score_tiles_batched(kernel, tiles)

        threads = [
            threading.Thread(target=client, args=(i, k, t))
            for i, (k, t) in enumerate(workload)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(outputs) == len(workload)
        for idx, scores in outputs.items():
            np.testing.assert_array_equal(scores, references[idx])

    def test_error_responses_cross_the_wire(self, socket_setup):
        import socket as socketlib

        _, frontend = socket_setup
        with socketlib.create_connection(frontend.address, timeout=30) as sock:
            # Undecodable body: the frontend must answer with a typed
            # error response on the same request id, not drop the frame.
            send_frame(sock, 7, b'{"type": "no_such_request"}')
            frame = recv_frame(sock)
            assert frame is not None
            request_id, body = frame
            assert request_id == 7
            response = Response.from_bytes(body)
            assert response.error is not None and "bad request" in response.error
            with pytest.raises(RuntimeError):
                response.unwrap()

    def test_kernel_interning_miss_retry_is_transparent(self, corpus, result_a):
        """A server that evicts interned kernels answers ``need_kernel``;
        the client resends in full and results stay bitwise-identical."""
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        service = CostModelService(
            result_a, ServiceConfig(result_cache_entries=0)
        ).start()
        try:
            with SocketFrontend(service, max_interned_kernels=1) as frontend:
                with SocketEvaluator(frontend.address) as remote:
                    workload = [
                        (r.kernel, enumerate_tile_sizes(r.kernel)[:4])
                        for r in records[:3]
                    ]
                    for _round in range(3):  # alternating kernels force misses
                        for kernel, tiles in workload:
                            np.testing.assert_array_equal(
                                remote.score_tiles_batched(kernel, tiles),
                                direct.score_tiles_batched(kernel, tiles),
                            )
        finally:
            service.stop()

    def test_frontend_counts_traffic(self, corpus, socket_setup):
        records, _ = corpus
        _, frontend = socket_setup
        before = frontend.stats()
        with SocketEvaluator(frontend.address) as remote:
            remote.score_tiles_batched(
                records[0].kernel, enumerate_tile_sizes(records[0].kernel)[:4]
            )
        after = frontend.stats()
        assert after["frames_in"] > before["frames_in"]
        assert after["connections"] > before["connections"]

    def test_socket_frontend_over_process_executor(
        self, corpus, result_a, process_service
    ):
        """The full remote stack: TCP ingress + subprocess shard forwards."""
        records, scalers = corpus
        direct = LearnedEvaluator(result_a.model, scalers)
        process_service.start()
        with SocketFrontend(process_service) as frontend:
            with SocketEvaluator(frontend.address, timeout_s=120.0) as remote:
                for record in records[:3]:
                    tiles = enumerate_tile_sizes(record.kernel)[:5]
                    np.testing.assert_array_equal(
                        remote.score_tiles_batched(record.kernel, tiles),
                        direct.score_tiles_batched(record.kernel, tiles),
                    )
