"""Tests for the learned performance model: config, forward pass, training."""
import numpy as np
import pytest

from repro.data import Scalers, TileBatchSampler, assemble_batch, build_tile_dataset
from repro.models import (
    LearnedPerformanceModel,
    ModelConfig,
    TrainConfig,
    predict_tile_scores,
    train_tile_model,
)
from repro.workloads import vision


@pytest.fixture(scope="module")
def tile_ds():
    return build_tile_dataset(
        [vision.image_embed(0), vision.ssd(0)],
        max_kernels_per_program=5,
        max_tiles_per_kernel=6,
        seed=0,
    )


@pytest.fixture(scope="module")
def batch(tile_ds):
    sampler = TileBatchSampler(tile_ds.records, kernels_per_batch=3, tiles_per_kernel=2, seed=0)
    scalers = Scalers.fit_tile(tile_ds.records)
    return assemble_batch(sampler.draw_items(), scalers)


class TestModelConfig:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(task="training")
        with pytest.raises(ValueError):
            ModelConfig(gnn="gcn")
        with pytest.raises(ValueError):
            ModelConfig(reduction="attention-pool")
        with pytest.raises(ValueError):
            ModelConfig(loss="mae")
        with pytest.raises(ValueError):
            ModelConfig(static_placement="edge")
        with pytest.raises(ValueError):
            ModelConfig(hidden_dim=0)

    def test_presets(self):
        t = ModelConfig.paper_best_tile()
        assert t.task == "tile" and t.gnn == "graphsage" and t.reduction == "lstm"
        f = ModelConfig.paper_best_fusion()
        assert f.task == "fusion" and f.reduction == "transformer" and f.loss == "mse"
        v = ModelConfig.vanilla("tile")
        assert v.reduction == "per-node" and not v.use_static_features

    def test_with_overrides(self):
        c = ModelConfig().with_overrides(gnn="gat", hidden_dim=16)
        assert c.gnn == "gat" and c.hidden_dim == 16


SMALL = dict(hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2, lstm_hidden=16)


class TestForwardPass:
    @pytest.mark.parametrize("gnn", ["graphsage", "gat", "none"])
    @pytest.mark.parametrize("reduction", ["per-node", "column-wise", "lstm", "transformer"])
    def test_all_architecture_combinations(self, batch, gnn, reduction):
        cfg = ModelConfig(task="tile", gnn=gnn, reduction=reduction, **SMALL)
        model = LearnedPerformanceModel(cfg, seed=0)
        out = model(batch)
        assert out.shape == (batch.size,)
        assert np.isfinite(out.numpy()).all()

    def test_undirected_variant(self, batch):
        cfg = ModelConfig(task="tile", directed=False, **SMALL)
        out = LearnedPerformanceModel(cfg)(batch)
        assert out.shape == (batch.size,)

    @pytest.mark.parametrize("tile_placement", ["node", "kernel"])
    @pytest.mark.parametrize("static_placement", ["node", "kernel"])
    def test_feature_placements(self, batch, tile_placement, static_placement):
        cfg = ModelConfig(
            task="tile",
            tile_placement=tile_placement,
            static_placement=static_placement,
            **SMALL,
        )
        out = LearnedPerformanceModel(cfg)(batch)
        assert np.isfinite(out.numpy()).all()

    def test_per_node_with_kernel_features_gets_correction(self, batch):
        cfg = ModelConfig(task="tile", reduction="per-node", tile_placement="kernel", **SMALL)
        model = LearnedPerformanceModel(cfg)
        assert model.kernel_correction is not None
        assert np.isfinite(model(batch).numpy()).all()

    def test_no_static_features(self, batch):
        cfg = ModelConfig(task="tile", use_static_features=False, **SMALL)
        assert np.isfinite(LearnedPerformanceModel(cfg)(batch).numpy()).all()

    def test_tile_features_affect_prediction(self, batch, tile_ds):
        cfg = ModelConfig(task="tile", **SMALL)
        model = LearnedPerformanceModel(cfg, seed=3)
        r = tile_ds.records[0]
        scalers = Scalers.fit_tile(tile_ds.records)
        b1 = assemble_batch([(r.features, r.tile_feats[0], 0.0, 0)], scalers)
        b2 = assemble_batch([(r.features, r.tile_feats[-1], 0.0, 0)], scalers)
        assert model.predict(b1)[0] != model.predict(b2)[0]

    def test_predict_is_deterministic_and_gradient_free(self, batch):
        cfg = ModelConfig(task="tile", dropout=0.25, **SMALL)
        model = LearnedPerformanceModel(cfg)
        a = model.predict(batch)
        b = model.predict(batch)
        np.testing.assert_allclose(a, b)  # dropout disabled in predict
        assert model.training  # restored afterwards

    def test_predict_runtimes_positive(self, batch):
        cfg = ModelConfig(task="fusion", reduction="column-wise", loss="mse", **SMALL)
        model = LearnedPerformanceModel(cfg)
        assert (model.predict_runtimes(batch) > 0).all()

    def test_parameter_count_grows_with_width(self):
        small = LearnedPerformanceModel(ModelConfig(task="tile", **SMALL))
        big = LearnedPerformanceModel(ModelConfig(task="tile", hidden_dim=64))
        assert big.num_parameters() > small.num_parameters()


class TestTraining:
    def test_loss_decreases(self, tile_ds):
        cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
        res = train_tile_model(
            tile_ds.records,
            cfg,
            TrainConfig(steps=80, kernels_per_batch=4, tiles_per_kernel=3, log_every=10),
        )
        first = res.loss_history[0][1]
        last = np.mean([v for _, v in res.loss_history[-3:]])
        assert last < first

    def test_task_mismatch_rejected(self, tile_ds):
        with pytest.raises(ValueError):
            train_tile_model(tile_ds.records, ModelConfig(task="fusion", loss="mse"))

    def test_predict_tile_scores_shape(self, tile_ds):
        cfg = ModelConfig(task="tile", reduction="column-wise", **SMALL)
        res = train_tile_model(
            tile_ds.records, cfg, TrainConfig(steps=5, log_every=5)
        )
        r = tile_ds.records[0]
        scores = predict_tile_scores(res.model, res.scalers, r)
        assert scores.shape == (r.num_samples,)

    def test_state_dict_roundtrip_preserves_predictions(self, tile_ds, batch):
        cfg = ModelConfig(task="tile", **SMALL)
        m1 = LearnedPerformanceModel(cfg, seed=0)
        m2 = LearnedPerformanceModel(cfg, seed=99)
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(m1.predict(batch), m2.predict(batch), rtol=1e-6)
