"""Shape-inference tests for the GraphBuilder API."""
import pytest

from repro.hlo import DType, GraphBuilder, GraphError, Opcode


@pytest.fixture
def b():
    return GraphBuilder("t")


class TestLeaves:
    def test_parameter_and_constant(self, b):
        x = b.parameter((2, 3))
        w = b.constant((3, 4), DType.BF16)
        assert b.shape_of(x).dims == (2, 3)
        assert b.shape_of(w).dtype is DType.BF16

    def test_iota(self, b):
        i = b.iota((5,), dim=0)
        assert b.shape_of(i).dtype is DType.S32


class TestElementwise:
    def test_unary_preserves_shape(self, b):
        x = b.parameter((2, 3))
        assert b.shape_of(b.tanh(x)).dims == (2, 3)
        assert b.shape_of(b.exp(x)).dims == (2, 3)

    def test_binary_requires_equal_shapes(self, b):
        x = b.parameter((2, 3))
        y = b.parameter((3, 2))
        with pytest.raises(GraphError):
            b.add(x, y)

    def test_compare_produces_pred(self, b):
        x = b.parameter((4,))
        y = b.parameter((4,))
        assert b.shape_of(b.compare(x, y)).dtype is DType.PRED

    def test_select_shape_checked(self, b):
        p = b.compare(b.parameter((4,)), b.parameter((4,)))
        t = b.parameter((4,))
        f = b.parameter((5,))
        with pytest.raises(GraphError):
            b.select(p, t, f)

    def test_convert_changes_dtype(self, b):
        x = b.parameter((4,), DType.S32)
        assert b.shape_of(b.convert(x, DType.F32)).dtype is DType.F32


class TestDataMovement:
    def test_broadcast_scalar(self, b):
        s = b.constant(())
        out = b.broadcast_scalar(s, (2, 3))
        assert b.shape_of(out).dims == (2, 3)

    def test_broadcast_in_dim(self, b):
        v = b.constant((3,))
        out = b.broadcast_in_dim(v, (2, 3), axis=1)
        assert b.shape_of(out).dims == (2, 3)

    def test_broadcast_dim_mismatch_rejected(self, b):
        v = b.constant((3,))
        with pytest.raises(GraphError):
            b.broadcast_in_dim(v, (2, 4), axis=1)

    def test_reshape_checks_element_count(self, b):
        x = b.parameter((2, 6))
        assert b.shape_of(b.reshape(x, (3, 4))).dims == (3, 4)
        with pytest.raises(GraphError):
            b.reshape(x, (5, 2))

    def test_transpose(self, b):
        x = b.parameter((2, 3, 4))
        assert b.shape_of(b.transpose(x, (2, 0, 1))).dims == (4, 2, 3)
        with pytest.raises(GraphError):
            b.transpose(x, (0, 0, 1))

    def test_slice(self, b):
        x = b.parameter((10, 10))
        assert b.shape_of(b.slice(x, (2, 0), (7, 10))).dims == (5, 10)
        with pytest.raises(GraphError):
            b.slice(x, (5,), (6,))
        with pytest.raises(GraphError):
            b.slice(x, (0, 0), (11, 10))

    def test_concatenate(self, b):
        x = b.parameter((2, 3))
        y = b.parameter((2, 5))
        assert b.shape_of(b.concatenate([x, y], dim=1)).dims == (2, 8)
        with pytest.raises(GraphError):
            b.concatenate([x, b.parameter((3, 3))], dim=1)

    def test_pad(self, b):
        x = b.parameter((4, 4))
        z = b.constant(())
        assert b.shape_of(b.pad(x, z, (1, 0), (1, 2))).dims == (6, 6)


class TestReductions:
    def test_reduce_removes_dims(self, b):
        x = b.parameter((2, 3, 4))
        assert b.shape_of(b.reduce(x, [1], "sum")).dims == (2, 4)
        assert b.shape_of(b.reduce(x, [0, 2], "max")).dims == (3,)

    def test_reduce_window_valid(self, b):
        x = b.parameter((1, 8, 8, 3))
        y = b.reduce_window(x, (1, 2, 2, 1), (1, 2, 2, 1))
        assert b.shape_of(y).dims == (1, 4, 4, 3)

    def test_reduce_window_same(self, b):
        x = b.parameter((1, 7, 7, 3))
        y = b.reduce_window(x, (1, 3, 3, 1), (1, 2, 2, 1), padding="same")
        assert b.shape_of(y).dims == (1, 4, 4, 3)

    def test_argmax(self, b):
        x = b.parameter((4, 10))
        y = b.argmax(x, dim=1)
        assert b.shape_of(y).dims == (4,)
        assert b.shape_of(y).dtype is DType.S32


class TestContractions:
    def test_dot_2d(self, b):
        x = b.parameter((4, 8))
        w = b.constant((8, 16))
        y = b.dot(x, w)
        assert b.shape_of(y).dims == (4, 16)
        assert b.graph.get(y).attr("flops") == 2.0 * 4 * 16 * 8

    def test_dot_batched(self, b):
        x = b.parameter((2, 4, 8))
        w = b.constant((8, 16))
        assert b.shape_of(b.dot(x, w)).dims == (2, 4, 16)
        y = b.parameter((2, 8, 5))
        assert b.shape_of(b.dot(x, y)).dims == (2, 4, 5)

    def test_dot_contracting_mismatch(self, b):
        with pytest.raises(GraphError):
            b.dot(b.parameter((4, 8)), b.constant((9, 16)))

    def test_conv2d_same_and_valid(self, b):
        x = b.parameter((2, 8, 8, 3))
        k = b.constant((3, 3, 3, 16))
        assert b.shape_of(b.conv2d(x, k, padding="same")).dims == (2, 8, 8, 16)
        assert b.shape_of(b.conv2d(x, k, padding="valid")).dims == (2, 6, 6, 16)
        assert b.shape_of(b.conv2d(x, k, strides=(2, 2))).dims == (2, 4, 4, 16)

    def test_conv2d_channel_mismatch(self, b):
        with pytest.raises(GraphError):
            b.conv2d(b.parameter((2, 8, 8, 3)), b.constant((3, 3, 4, 16)))

    def test_gather(self, b):
        t = b.constant((100, 16))
        ids = b.parameter((4, 7), DType.S32)
        assert b.shape_of(b.gather(t, ids)).dims == (4, 7, 16)


class TestComposites:
    def test_relu_expands_to_maximum(self, b):
        x = b.parameter((4,))
        y = b.relu(x)
        assert b.graph.get(y).opcode is Opcode.MAXIMUM

    def test_softmax_shape_preserved(self, b):
        x = b.parameter((4, 10))
        assert b.shape_of(b.softmax(x)).dims == (4, 10)

    def test_layer_norm_shape_preserved(self, b):
        x = b.parameter((4, 16))
        assert b.shape_of(b.layer_norm(x)).dims == (4, 16)

    def test_dense_output_width(self, b):
        x = b.parameter((4, 8))
        assert b.shape_of(b.dense(x, 32)).dims == (4, 32)
        with pytest.raises(GraphError):
            b.dense(x, 32, activation="gelu")

    def test_build_validates_and_marks_roots(self, b):
        x = b.parameter((4, 8))
        y = b.dense(x, 2)
        g = b.build()
        assert g.get(y).is_root
        g.validate()

    def test_build_with_explicit_roots(self, b):
        x = b.parameter((4,))
        y = b.tanh(x)
        z = b.exp(y)
        g = b.build([y, z])
        assert g.get(y).is_root and g.get(z).is_root
