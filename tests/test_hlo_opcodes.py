"""Tests for opcode metadata."""
from repro.hlo import (
    NUM_OPCODES,
    OpCategory,
    Opcode,
    is_contraction,
    is_elementwise,
    is_transcendental,
    opcode_info,
)
from repro.hlo.opcodes import OPCODE_INFO


class TestOpcodeMetadata:
    def test_every_opcode_has_info(self):
        for op in Opcode:
            assert opcode_info(op) is not None

    def test_num_opcodes_covers_ids(self):
        assert all(int(op) < NUM_OPCODES for op in Opcode)

    def test_opcode_ids_stable_and_unique(self):
        values = [int(op) for op in Opcode]
        assert len(values) == len(set(values))

    def test_contractions(self):
        assert is_contraction(Opcode.DOT)
        assert is_contraction(Opcode.CONVOLUTION)
        assert not is_contraction(Opcode.ADD)

    def test_elementwise(self):
        assert is_elementwise(Opcode.ADD)
        assert is_elementwise(Opcode.TANH)
        assert not is_elementwise(Opcode.RESHAPE)
        assert not is_elementwise(Opcode.REDUCE)

    def test_transcendental_ops_flagged(self):
        for op in (Opcode.EXP, Opcode.LOG, Opcode.TANH, Opcode.LOGISTIC):
            assert is_transcendental(op)
        for op in (Opcode.ADD, Opcode.MAXIMUM, Opcode.RESHAPE):
            assert not is_transcendental(op)

    def test_parameters_not_fusible(self):
        assert not opcode_info(Opcode.PARAMETER).fusible
        assert opcode_info(Opcode.ADD).fusible

    def test_arity_classes(self):
        assert opcode_info(Opcode.TANH).arity == 1
        assert opcode_info(Opcode.ADD).arity == 2
        assert opcode_info(Opcode.SELECT).arity == 3
        assert opcode_info(Opcode.CONCATENATE).arity == -1
        assert opcode_info(Opcode.PARAMETER).arity == 0

    def test_transcendentals_cost_more_flops(self):
        assert (
            opcode_info(Opcode.EXP).flops_per_element
            > opcode_info(Opcode.ADD).flops_per_element
        )

    def test_categories_consistent(self):
        assert opcode_info(Opcode.RESHAPE).category is OpCategory.DATA_MOVEMENT
        assert opcode_info(Opcode.REDUCE).category is OpCategory.REDUCTION
        assert opcode_info(Opcode.GATHER).category is OpCategory.SCATTER_GATHER
        assert set(OPCODE_INFO) == set(Opcode)
