"""Integration test: the layout axis composes with the learned model.

The learned model's node features include the layout block, so a model can
in principle distinguish layout variants of a kernel; this test checks the
plumbing end to end (features differ, predictions differ, and the layout
pass can be driven by a learned evaluator's tile scores).
"""
import numpy as np
import pytest

from repro.autotuner import LearnedEvaluator
from repro.compiler import (
    Kernel,
    best_output_layout,
    default_tile,
    with_output_layout,
)
from repro.data import build_tile_dataset, extract_kernel_features
from repro.hlo import GraphBuilder, Layout
from repro.models import ModelConfig, TrainConfig, train_tile_model
from repro.workloads import vision


def skinny_kernel() -> Kernel:
    b = GraphBuilder("skinny")
    x = b.parameter((8, 128))
    w = b.constant((128, 2048))
    y = b.dot(x, w)
    b.tanh(y)
    return Kernel(graph=b.build(), kind="fusion")


class TestLayoutModelIntegration:
    def test_layout_changes_node_features(self):
        k = skinny_kernel()
        flipped = with_output_layout(k, Layout((0, 1)))
        f1 = extract_kernel_features(k)
        f2 = extract_kernel_features(flipped)
        assert not np.allclose(f1.node_feats, f2.node_feats)

    def test_learned_evaluator_scores_layout_variants(self):
        ds = build_tile_dataset(
            [vision.image_embed(0)], max_kernels_per_program=4,
            max_tiles_per_kernel=6, seed=0,
        )
        cfg = ModelConfig(
            task="tile", reduction="column-wise",
            hidden_dim=16, opcode_embedding_dim=8, gnn_layers=2,
        )
        res = train_tile_model(ds.records, cfg, TrainConfig(steps=20, log_every=10))
        ev = LearnedEvaluator(res.model, res.scalers)
        k = skinny_kernel()
        layout, cost = best_output_layout(
            k, lambda kk: float(ev.tile_scores(kk, [default_tile(kk)])[0]), cap=2
        )
        assert np.isfinite(cost)
        assert layout in (Layout((1, 0)), Layout((0, 1)))
