"""Fine-tuning on an out-of-distribution workload (paper Sec. 7.1).

"This demonstrates another advantage of a learned performance model over a
manually-written model: it can be easily improved with more data. If the
learned model does not perform well on some benchmarks, we can re-train or
fine-tune the model on similar benchmarks."

This example trains a tile model on convolutional programs only, shows it
struggling on an unseen sequence-model family, then fine-tunes on a sibling
program of that family and re-measures.

Run:  python examples/finetune_new_workload.py
"""
import numpy as np

from repro.data import build_tile_dataset
from repro.evaluation import evaluate_tile_task, format_table
from repro.models import (
    ModelConfig,
    TrainConfig,
    fine_tune,
    predict_tile_scores,
    train_tile_model,
)
from repro.workloads import sequence, vision


def quality(result, dataset):
    truths = [r.runtimes for r in dataset.records]
    scores = [predict_tile_scores(result.model, result.scalers, r)
              for r in dataset.records]
    return evaluate_tile_task(truths, scores)


def main() -> None:
    conv_programs = [vision.resnet_v1(i) for i in range(3)] + [vision.inception(0)]
    target = sequence.smartcompose(0)        # unseen family
    sibling = sequence.smartcompose(1)       # fine-tuning data

    base_ds = build_tile_dataset(conv_programs, max_kernels_per_program=8,
                                 max_tiles_per_kernel=12, seed=0)
    target_ds = build_tile_dataset([target], max_kernels_per_program=8,
                                   max_tiles_per_kernel=12, seed=1)
    sibling_ds = build_tile_dataset([sibling], max_kernels_per_program=8,
                                    max_tiles_per_kernel=12, seed=2)

    config = ModelConfig(task="tile", reduction="column-wise",
                         hidden_dim=48, opcode_embedding_dim=16)
    print(f"training on {len(conv_programs)} conv programs "
          f"({base_ds.num_samples} samples)...")
    result = train_tile_model(base_ds.records, config,
                              TrainConfig(steps=1000, log_every=250), verbose=True)

    before = quality(result, target_ds)
    print(f"\nfine-tuning on sibling program '{sibling.name}' "
          f"({sibling_ds.num_samples} samples)...")
    result = fine_tune(result, sibling_ds.records,
                       TrainConfig(steps=400, log_every=100))
    after = quality(result, target_ds)

    print()
    print(format_table(
        ["stage", "Tile-Size APE %", "Kendall tau"],
        [
            ["conv-only training", before.ape, before.kendall],
            ["after fine-tuning", after.ape, after.kendall],
        ],
        title=f"quality on unseen program '{target.name}'",
    ))
    print("\nFixing the analytical model for a new workload family means "
          "hand-tuning heuristics; fixing the learned model is one "
          "fine_tune() call (paper Sec. 7.1).")


if __name__ == "__main__":
    main()
