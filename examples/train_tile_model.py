"""Train the paper's best tile-size model on the corpus and evaluate it on
the held-out test programs of the random split (a miniature Table 2, left).

Run:  python examples/train_tile_model.py [--fast]
"""
import argparse

import numpy as np

from repro.data import build_tile_dataset
from repro.evaluation import evaluate_tile_task, format_table, summarize
from repro.models import ModelConfig, TrainConfig, predict_tile_scores, train_tile_model
from repro.tpu import AnalyticalModel
from repro.workloads import random_split


def main(fast: bool) -> None:
    split = random_split()
    train_programs = split.train[::6] if fast else split.train[::2]
    print(f"training on {len(train_programs)} programs, "
          f"evaluating on {len(split.test)} held-out test programs")

    train_ds = build_tile_dataset(train_programs, max_kernels_per_program=8,
                                  max_tiles_per_kernel=12, seed=0)
    test_ds = build_tile_dataset(split.test, max_kernels_per_program=6,
                                 max_tiles_per_kernel=12, seed=1)
    print(f"train: {train_ds.num_kernels} kernels / {train_ds.num_samples} samples")

    config = ModelConfig.paper_best_tile()  # GraphSAGE + LSTM + rank loss
    steps = 400 if fast else 1500
    result = train_tile_model(
        train_ds.records, config,
        TrainConfig(steps=steps, kernels_per_batch=6, tiles_per_kernel=6,
                    learning_rate=8e-4, log_every=max(steps // 8, 1)),
        verbose=True,
    )

    analytical = AnalyticalModel()
    rows = []
    by_prog = test_ds.by_program()
    for display, program in split.test_names.items():
        recs = by_prog.get(program.name, [])
        if not recs:
            continue
        truths = [r.runtimes for r in recs]
        learned = evaluate_tile_task(
            truths, [predict_tile_scores(result.model, result.scalers, r) for r in recs]
        )
        ana = evaluate_tile_task(
            truths,
            [np.array([analytical.estimate(r.kernel, t) for t in r.tiles]) for r in recs],
        )
        rows.append([display, learned.ape, ana.ape, learned.kendall, ana.kendall])
    means = [
        "Mean",
        summarize([r[1] for r in rows])["mean"],
        summarize([r[2] for r in rows])["mean"],
        summarize([r[3] for r in rows])["mean"],
        summarize([r[4] for r in rows])["mean"],
    ]
    print()
    print(format_table(
        ["Application", "APE learned", "APE analytical", "tau learned", "tau analytical"],
        rows + [means],
        title="tile-size selection on unseen programs (cf. paper Table 2)",
    ))


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true", help="smaller/faster run")
    main(parser.parse_args().fast)
