"""Layout assignment: another optimization axis from the paper's Fig. 1.

The autotuner's configuration space in the paper includes "layout
assignment" alongside fusion and tiling. Physical layout decides which
dimension is minor (fastest-varying), and the TPU's DMA engine and vector
lanes strongly prefer wide, lane-aligned minor dimensions. This example
sweeps output layouts for a skinny matmul kernel and shows the simulated
runtime spread, then picks the best layout with the library's layout pass.

Run:  python examples/layout_assignment.py
"""
from repro.compiler import (
    Kernel,
    best_output_layout,
    default_tile,
    enumerate_output_layouts,
    with_output_layout,
)
from repro.evaluation import bar_chart
from repro.hlo import GraphBuilder
from repro.tpu import TpuSimulator


def skinny_kernel() -> Kernel:
    """A [16, 8192] output: minor dim is either 8192 (wide) or 16 (narrow)."""
    b = GraphBuilder("skinny_matmul")
    x = b.parameter((16, 512), name="activations")
    w = b.constant((512, 8192), name="weights")
    y = b.dot(x, w)
    b.tanh(y)
    return Kernel(graph=b.build(), kind="fusion")


def main() -> None:
    kernel = skinny_kernel()
    sim = TpuSimulator(quirk_amplitude=0)

    labels, runtimes = [], []
    for layout in enumerate_output_layouts(kernel):
        variant = with_output_layout(kernel, layout)
        us = sim.run(variant, default_tile(variant)) * 1e6
        labels.append(f"minor_to_major={layout.minor_to_major}")
        runtimes.append(us)

    print(bar_chart(
        labels,
        {"runtime (us)": runtimes},
        title=f"output-layout sweep for {kernel.graph.name}",
        baseline=None,
        fmt="{:.1f}",
    ))

    best, cost = best_output_layout(
        kernel, lambda k: sim.run(k, default_tile(k))
    )
    print(f"\nbest layout: {best.minor_to_major} at {cost * 1e6:.1f} us "
          f"({max(runtimes) / (cost * 1e6):.2f}x faster than the worst)")
    print("Both cost models see layout through the kernel features (the "
          "layout block of the node feature vector), so a learned model can "
          "rank layouts the same way it ranks tile sizes.")


if __name__ == "__main__":
    main()
