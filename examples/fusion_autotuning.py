"""Fusion autotuning with a learned cost model when hardware is scarce.

Reproduces the paper's Sec. 7.3 workflow on one program: train a fusion
cost model, then compare simulated annealing driven by (a) hardware alone
under a small budget, and (b) the learned model with the same tiny hardware
budget used only for final verification.

Run:  python examples/fusion_autotuning.py
"""
from repro.autotuner import (
    HardwareEvaluator,
    LearnedEvaluator,
    hardware_fusion_autotune,
    model_fusion_autotune,
)
from repro.data import build_fusion_dataset
from repro.evaluation import format_table
from repro.models import ModelConfig, TrainConfig, train_fusion_model
from repro.tpu import TpuSimulator
from repro.workloads import sequence, tabular, vision


def main() -> None:
    # Train the cost model on related programs (not the tuning target).
    train_programs = [
        tabular.ranking(1), tabular.ranking(2),
        sequence.char2feats(0), vision.resnet_parallel(1),
    ]
    target = tabular.ranking(0)
    print(f"training fusion cost model on {len(train_programs)} programs")
    ds = build_fusion_dataset(train_programs, configs_per_program=4, seed=0)
    config = ModelConfig(
        task="fusion", gnn="graphsage", reduction="column-wise", loss="mse",
        hidden_dim=48, opcode_embedding_dim=16,
    )
    result = train_fusion_model(
        ds.records, config, TrainConfig(steps=1200, batch_size=24, log_every=300),
        verbose=True,
    )

    print(f"\nautotuning fusion for '{target.name}' "
          f"({len(target.graph)} ops)")
    sim = TpuSimulator()
    hardware_budget = 6  # whole-program hardware runs ('1 minute of TPU')

    hw = hardware_fusion_autotune(
        target, HardwareEvaluator(sim), budget=hardware_budget, seed=0
    )
    learned = LearnedEvaluator(result.model, result.scalers)
    cm = model_fusion_autotune(
        target, learned, HardwareEvaluator(sim),
        model_budget=300, hardware_budget=hardware_budget, seed=0,
    )

    print()
    print(format_table(
        ["strategy", "speedup over default", "HW program runs", "model evals"],
        [
            ["hardware only", hw.speedup, hw.hardware_program_evaluations, 0],
            ["cost model + hardware", cm.speedup,
             cm.hardware_program_evaluations, cm.model_evaluations],
        ],
        title="fusion autotuning under a scarce hardware budget",
        float_fmt="{:.3f}",
    ))
    print("\nThe learned model explores hundreds of configurations on CPU and "
          "spends the hardware budget only on verification (paper Fig. 5).")


if __name__ == "__main__":
    main()
