"""Quickstart: build a tensor program, compile it to kernels, train a small
learned cost model on it, and compare against the analytical baseline.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.compiler import enumerate_tile_sizes, fuse_program
from repro.data import build_tile_dataset
from repro.evaluation import evaluate_tile_task, format_table
from repro.hlo import GraphBuilder, Program
from repro.models import ModelConfig, TrainConfig, predict_tile_scores, train_tile_model
from repro.tpu import AnalyticalModel, TpuSimulator


def build_my_program() -> Program:
    """A small MLP classifier written against the graph-builder API."""
    b = GraphBuilder("my_mlp")
    x = b.parameter((32, 256), name="activations")
    h = b.dense(x, 512, activation="relu")
    h = b.dense(h, 512, activation="relu")
    logits = b.dense(h, 10, activation=None)
    probs = b.softmax(logits)
    return Program("my_mlp", b.build([probs]))


def main() -> None:
    program = build_my_program()
    print(f"program '{program.name}': {len(program.graph)} primitive ops")

    # 1. The compiler substrate: fusion decomposes the program into kernels.
    kernels = fuse_program(program.graph, program_name=program.name)
    print(f"default fusion -> {len(kernels)} kernels:")
    for k in kernels:
        tiles = enumerate_tile_sizes(k)
        print(f"  kernel {k.index}: kind={k.kind:12s} nodes={k.num_nodes:3d} "
              f"valid tile sizes={len(tiles)}")

    # 2. Ground truth: the TPU simulator executes (kernel, tile) pairs.
    sim = TpuSimulator()
    total = sim.run_program(kernels)
    print(f"simulated program runtime at default tiles: {total * 1e6:.1f} us")

    # 3. Train a small learned cost model on this program's tile sweeps.
    dataset = build_tile_dataset([program], max_kernels_per_program=8,
                                 max_tiles_per_kernel=16, seed=0)
    print(f"tile dataset: {dataset.num_kernels} kernels, "
          f"{dataset.num_samples} samples")
    config = ModelConfig(task="tile", gnn="graphsage", reduction="column-wise",
                         hidden_dim=32, opcode_embedding_dim=16, gnn_layers=2)
    result = train_tile_model(dataset.records, config,
                              TrainConfig(steps=300, log_every=100), verbose=True)

    # 4. Compare tile rankings: learned vs the hand-tuned analytical model.
    analytical = AnalyticalModel()
    truths = [r.runtimes for r in dataset.records]
    learned_scores = [predict_tile_scores(result.model, result.scalers, r)
                      for r in dataset.records]
    ana_scores = [np.array([analytical.estimate(r.kernel, t) for t in r.tiles])
                  for r in dataset.records]
    lm = evaluate_tile_task(truths, learned_scores)
    am = evaluate_tile_task(truths, ana_scores)
    print()
    print(format_table(
        ["model", "Tile-Size APE %", "Kendall tau"],
        [["learned", lm.ape, lm.kendall], ["analytical", am.ape, am.kendall]],
        title="tile-size selection quality on my_mlp",
    ))


if __name__ == "__main__":
    main()
