"""Compare model architectures (a miniature of the paper's Table 4).

Trains {no GNN, GraphSAGE} x {column-wise, LSTM} tile models on the same
data and reports test APE / Kendall's tau, illustrating the paper's Q1/Q2:
graphs beat sequences, and a sequence reduction on top of a GNN helps.

Run:  python examples/compare_architectures.py
"""
import numpy as np

from repro.data import build_tile_dataset
from repro.evaluation import evaluate_tile_task, format_table
from repro.models import ModelConfig, TrainConfig, predict_tile_scores, train_tile_model
from repro.workloads import random_split

VARIANTS = {
    "No GNN + column-wise": dict(gnn="none", reduction="column-wise"),
    "No GNN + LSTM": dict(gnn="none", reduction="lstm"),
    "GraphSAGE + column-wise": dict(gnn="graphsage", reduction="column-wise"),
    "GraphSAGE + LSTM": dict(gnn="graphsage", reduction="lstm"),
}


def main() -> None:
    split = random_split()
    train_ds = build_tile_dataset(split.train[::4], max_kernels_per_program=8,
                                  max_tiles_per_kernel=12, seed=0)
    test_ds = build_tile_dataset(split.test[:4], max_kernels_per_program=6,
                                 max_tiles_per_kernel=12, seed=1)
    print(f"train: {train_ds.num_samples} samples, test: {test_ds.num_samples}")

    rows = []
    for name, overrides in VARIANTS.items():
        config = ModelConfig(task="tile", loss="rank_hinge",
                             hidden_dim=48, opcode_embedding_dim=16, **overrides)
        result = train_tile_model(
            train_ds.records, config,
            TrainConfig(steps=800, kernels_per_batch=6, tiles_per_kernel=5,
                        learning_rate=8e-4, log_every=800),
        )
        truths = [r.runtimes for r in test_ds.records]
        scores = [predict_tile_scores(result.model, result.scalers, r)
                  for r in test_ds.records]
        m = evaluate_tile_task(truths, scores)
        rows.append([name, m.ape, m.kendall])
        print(f"  {name}: APE {m.ape:.1f}  tau {m.kendall:.2f}")

    print()
    print(format_table(
        ["architecture", "Tile-Size APE %", "Kendall tau"],
        rows,
        title="architecture comparison on unseen programs (cf. Table 4)",
    ))


if __name__ == "__main__":
    main()
