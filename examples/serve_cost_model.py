"""Serve one warm cost model to many concurrent autotuner clients.

Walkthrough of the three-layer serving stack: train a small tile model,
publish it to a versioned registry, stand up the micro-batched inference
service (scheduler core), run several tile autotuners concurrently against
it through the standard evaluator interface, hot-swap a fine-tuned
checkpoint mid-flight, attach a TCP socket frontend and query it like a
remote tuner would, spill the registry to disk, and read the service
metrics — including the per-shard executor breakdown.

Run:  PYTHONPATH=src python examples/serve_cost_model.py
"""
import tempfile
import threading

from repro.autotuner import HardwareEvaluator, model_tile_autotune
from repro.data import build_tile_dataset
from repro.models import ModelConfig, TrainConfig, fine_tune, train_tile_model
from repro.serving import (
    CostModelService,
    ModelRegistry,
    ServiceConfig,
    ServiceEvaluator,
    SocketEvaluator,
    SocketFrontend,
)
from repro.workloads import vision


def main() -> None:
    # 1. Train a first checkpoint offline (the paper's deployment mode:
    #    train once, query at compile time).
    programs = [vision.image_embed(0), vision.alexnet(0)]
    dataset = build_tile_dataset(
        programs, max_kernels_per_program=6, max_tiles_per_kernel=8, seed=0
    )
    config = ModelConfig(
        task="tile", reduction="column-wise",
        hidden_dim=32, opcode_embedding_dim=16, gnn_layers=2,
    )
    result = train_tile_model(dataset.records, config, TrainConfig(steps=60, log_every=30))

    # 2. Publish it. The registry stores sealed checkpoint blobs (magic +
    #    SHA-256, so corruption is caught before deserialization) — hot
    #    swaps are atomic reference flips.
    registry = ModelRegistry()
    v1 = registry.publish(result)
    print(f"published checkpoint {v1} ({len(registry.blob(v1)) // 1024} kB serialized)")

    # 3. Serve it. One scheduler core, one warm model, shared by every
    #    frontend; queued queries coalesce into shared batched forwards.
    #    The executor layer decides *where* forwards run: replicas=2 with
    #    the default "thread" executor shards in-process; executor=
    #    "process" would place each shard in its own worker subprocess
    #    (true parallel forwards — see benchmarks/bench_serving.py).
    service_config = ServiceConfig(
        max_batch_size=32, flush_interval_s=0.002, adaptive_flush=True, replicas=2
    )
    with CostModelService(registry, service_config) as service:
        # 4. Concurrent tuner clients — note: *unchanged* autotuner code,
        #    ServiceEvaluator speaks the standard evaluator protocol.
        results = {}

        def tune(name: str, program) -> None:
            from repro.compiler import fuse_program

            kernels = fuse_program(program.graph, program_name=program.name)[:4]
            evaluator = ServiceEvaluator(service)
            tuned = model_tile_autotune(kernels, evaluator, HardwareEvaluator(), top_k=1)
            results[name] = (tuned.speedup, evaluator.model_version)

        tuners = [
            threading.Thread(target=tune, args=(p.name + f"#{i}", p))
            for i, p in enumerate(programs * 2)
        ]
        for t in tuners[: len(programs)]:
            t.start()

        # 5. Hot-swap a fine-tuned checkpoint while tuners are in flight.
        #    In-flight micro-batches finish on v1; later ones use v2 —
        #    no response ever mixes the two.
        tuned_result = fine_tune(result, dataset.records, TrainConfig(steps=30, log_every=30))
        v2 = registry.publish(tuned_result)
        print(f"hot-swapped to {v2} mid-stream")
        for t in tuners[len(programs):]:
            t.start()
        for t in tuners:
            t.join()

        for name, (speedup, version) in sorted(results.items()):
            print(f"  tuner {name:16s} speedup {speedup:5.2f}x  (served by {version})")

        # 6. Remote ingress: a TCP socket frontend feeding the same
        #    scheduler core — a tuner in another process or machine would
        #    connect exactly like this and share the same micro-batches.
        with SocketFrontend(service) as frontend:
            host, port = frontend.address
            print(f"socket frontend listening on {host}:{port}")
            with SocketEvaluator(frontend.address) as remote:
                kernel = dataset.records[0].kernel
                runtime = remote.kernel_runtime(kernel)
                print(
                    f"  remote kernel_runtime over TCP: {runtime:.3e} s "
                    f"(served by {remote.model_version})"
                )
            print(f"  frontend traffic: {frontend.stats()}")

        # 7. Persistence: spill every version + the active marker to disk;
        #    a restarted service (or a fresh worker) recovers the exact
        #    active checkpoint bytes.
        with tempfile.TemporaryDirectory() as spill_dir:
            registry.spill(spill_dir)
            restored = ModelRegistry.load(spill_dir)
            assert restored.blob(v2) == registry.blob(v2)
            print(f"registry spilled + restored byte-identically (active {restored.active_version})")

        # 8. The service's operational story, in numbers — service-wide
        #    first, then the per-shard executor breakdown.
        metrics = service.metrics()
        print("service metrics:")
        for key in (
            "requests", "qps", "batches", "batch_occupancy",
            "requests_per_forward", "cache_hit_rate",
            "latency_p50_s", "latency_p99_s", "active_version", "executor",
        ):
            value = metrics[key]
            print(f"  {key:22s} {value:.4f}" if isinstance(value, float) else f"  {key:22s} {value}")
        print("per-shard breakdown:")
        for shard, entry in metrics["per_shard"].items():
            print(
                f"  shard {shard}: requests {entry['requests']:.0f}, "
                f"forwards {entry['forwards']:.0f}, "
                f"occupancy {entry['requests_per_forward']:.1f}, "
                f"p99 {entry['latency_p99_s'] * 1e3:.2f} ms"
            )


if __name__ == "__main__":
    main()
