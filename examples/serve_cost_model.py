"""Serve one warm cost model to many concurrent autotuner clients —
then run its deployment control plane end-to-end.

Walkthrough of the serving stack plus the control plane on top of it:
train a small tile model, publish it to a versioned registry, stand up
the micro-batched inference service (scheduler core), run several tile
autotuners concurrently against it through the standard evaluator
interface, then drive two rollouts the way production would:

* a **healthy rollout** — fine-tune on collected serving feedback, stage
  the checkpoint, and watch the controller walk it shadow → canary →
  promoted on live accuracy windows;
* an **injected regression** — stage a deliberately broken checkpoint
  (readout negated: ranking exactly reversed) and watch the canary
  auto-roll it back before it ever reaches full activation.

Afterwards: a TCP socket frontend queried like a remote tuner would,
registry spill/restore (staged marker included), the service metrics
with the per-shard and per-version breakdowns, and the observability
surface — a rendered end-to-end trace tree of one request and the
Prometheus ``/metrics`` exposition served over the HTTP ops gateway.
The finale is *active* observability: golden-kernel synthetic probes
with precomputed known answers sweep every live route, a silent
in-memory corruption of the serving-side model (the sealed checkpoint
blob stays pristine — exactly the failure checksums cannot catch) is
caught by the known-answer check before any client request errors, the
probe-integrity alert fires, and the incident reporter's top-ranked
cause names the breached route — served over ``/probes`` and
``/incidents``.

Every claimed outcome is checked; the script exits non-zero on any
failure, so CI runs it as a smoke test.

Run:  PYTHONPATH=src python examples/serve_cost_model.py
"""
import json
import sys
import tempfile
import threading
import urllib.request

from repro.autotuner import HardwareEvaluator, model_tile_autotune
from repro.compiler import enumerate_tile_sizes
from repro.data import build_tile_dataset
from repro.models import (
    ModelConfig,
    TrainConfig,
    fine_tune_on_feedback,
    train_tile_model,
)
from repro.serving import (
    CANARY,
    PROMOTED,
    ROLLED_BACK,
    SHADOW,
    AlertEngine,
    CostModelService,
    FeedbackCollector,
    FullActivation,
    GoldenProbe,
    IncidentReporter,
    MetricsGateway,
    ModelRegistry,
    PlacementConfig,
    PlacementController,
    RolloutConfig,
    RolloutController,
    ServiceConfig,
    ServiceEvaluator,
    SocketEvaluator,
    SocketFrontend,
    SyntheticProber,
    ThresholdRule,
    Tracer,
    regressed_checkpoint,
    request_key,
    tile_measurement,
)
from repro.serving.protocol import TileScoresRequest
from repro.tpu import TpuSimulator
from repro.workloads import vision


def _check(condition: bool, message: str) -> None:
    """Assert a demo outcome; exit non-zero so CI catches regressions."""
    if not condition:
        print(f"SMOKE CHECK FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def _drive_rollout(service, controller, feedback, simulator, stream, budget):
    """Serve ``stream`` requests, report measurements, step the controller.

    Returns (final_state, requests_used)."""
    client = ServiceEvaluator(service)
    for i, (kernel, tiles) in enumerate(stream[:budget]):
        client.score_tiles_batched(kernel, tiles)
        request = TileScoresRequest(kernel=kernel, tiles=tuple(tiles))
        feedback.record_measurement(
            request_key(request), tile_measurement(simulator, kernel, tiles)
        )
        state = controller.step()
        if state in (PROMOTED, ROLLED_BACK):
            return state, i + 1
    return controller.state, budget


def main() -> None:
    # 1. Train a first checkpoint offline (the paper's deployment mode:
    #    train once, query at compile time).
    programs = [vision.image_embed(0), vision.alexnet(0)]
    simulator = TpuSimulator()
    dataset = build_tile_dataset(
        programs, max_kernels_per_program=6, max_tiles_per_kernel=8, seed=0
    )
    config = ModelConfig(
        task="tile", reduction="column-wise",
        hidden_dim=32, opcode_embedding_dim=16, gnn_layers=2,
    )
    result = train_tile_model(dataset.records, config, TrainConfig(steps=60, log_every=30))

    # 2. Publish it. The registry stores sealed checkpoint blobs (magic +
    #    SHA-256, so corruption is caught before deserialization) — hot
    #    swaps are atomic reference flips, and `retain` bounds a
    #    continuously-learning registry's footprint (active and staged
    #    versions are never pruned).
    registry = ModelRegistry(retain=4)
    v1 = registry.publish(result)
    print(f"published checkpoint {v1} ({len(registry.blob(v1)) // 1024} kB serialized)")

    # 3. Serve it, with the control plane attached: a FeedbackCollector
    #    joins every served prediction with measured runtimes, and a
    #    RolloutController will stage/promote/abort checkpoints on that
    #    evidence. replicas=2 shards in-process; executor="process" would
    #    place each shard in a worker subprocess instead.
    feedback = FeedbackCollector()
    # result_cache_entries=0: the rollout phases re-serve one request
    # stream on purpose, and cached answers would bypass execution — and
    # with it the shadow scoring the demo is about.
    service_config = ServiceConfig(
        max_batch_size=32, flush_interval_s=0.002, adaptive_flush=True,
        replicas=2, result_cache_entries=0,
    )
    # sample_rate=1.0: a demo wants every request traced; production
    # would run a small fraction (the decision is a deterministic hash of
    # the trace id, so a request is traced everywhere or nowhere).
    tracer = Tracer(sample_rate=1.0)
    with CostModelService(
        registry, service_config, feedback=feedback, tracer=tracer
    ) as service:
        controller = RolloutController(
            service,
            feedback,
            RolloutConfig(
                canary_fraction=0.5,
                min_samples=10,
                max_samples_per_phase=120,
                promote_margin=0.15,
                abort_margin=0.35,
            ),
        )

        # 4. Concurrent tuner clients — note: *unchanged* autotuner code,
        #    ServiceEvaluator speaks the standard evaluator protocol.
        results = {}

        def tune(name: str, program) -> None:
            from repro.compiler import fuse_program

            kernels = fuse_program(program.graph, program_name=program.name)[:4]
            evaluator = ServiceEvaluator(service)
            tuned = model_tile_autotune(kernels, evaluator, HardwareEvaluator(), top_k=1)
            results[name] = (tuned.speedup, evaluator.model_version)

        tuners = [
            threading.Thread(target=tune, args=(p.name + f"#{i}", p))
            for i, p in enumerate(programs * 2)
        ]
        for t in tuners:
            t.start()
        for t in tuners:
            t.join()
        for name, (speedup, version) in sorted(results.items()):
            print(f"  tuner {name:16s} speedup {speedup:5.2f}x  (served by {version})")

        # The request stream the rollout phases serve: every kernel's
        # leading tile candidates, round-robin.
        stream = []
        for _ in range(40):
            for record in dataset.records:
                tiles = enumerate_tile_sizes(record.kernel)[:4]
                if len(tiles) == 4:
                    stream.append((record.kernel, tiles))

        # 5. Continuous learning, healthy path: collect feedback from
        #    live traffic, fine-tune on it, stage the checkpoint, and let
        #    the controller promote it through shadow and canary.
        warm_state, _ = _drive_rollout(  # pre-rollout traffic fills v1's window
            service, controller, feedback, simulator, stream, 30
        )
        tuned = fine_tune_on_feedback(result, feedback.samples(), TrainConfig(steps=30))
        _check(tuned is not None, "feedback buffer produced no tile records")
        v2 = controller.stage(tuned)
        print(f"staged fine-tuned checkpoint {v2}; rollout begins in shadow")
        state, used = _drive_rollout(service, controller, feedback, simulator, stream, 400)
        print(f"  rollout of {v2}: {state} after {used} requests")
        for t in controller.transitions:
            print(f"    -> {t.state:11s} ({t.reason}; staged samples {t.staged_samples})")
        _check(state == PROMOTED, f"healthy rollout ended {state}, expected promoted")
        _check(registry.active_version == v2, "promotion did not activate the staged version")
        _check(
            any(t.state == SHADOW for t in controller.transitions)
            and any(t.state == CANARY for t in controller.transitions),
            "promotion skipped the shadow or canary phase",
        )

        # 6. Continuous learning, regression path: stage a broken
        #    checkpoint straight into a canary (start_phase="canary" —
        #    shadow would already catch it, which is the point of shadow;
        #    the demo shows the canary net too). The canary serves it a
        #    deterministic slice of real traffic; its accuracy window
        #    collapses; the controller rolls it back before it ever
        #    reaches full activation.
        canary_controller = RolloutController(
            service,
            feedback,
            RolloutConfig(
                canary_fraction=0.5,
                min_samples=10,
                max_samples_per_phase=120,
                promote_margin=0.15,
                abort_margin=0.35,
                start_phase=CANARY,
            ),
        )
        bad = regressed_checkpoint(registry.blob(v2))
        v3 = canary_controller.stage(bad, version="regressed")
        state, used = _drive_rollout(
            service, canary_controller, feedback, simulator, stream, 400
        )
        print(f"  rollout of {v3}: {state} after {used} requests")
        _check(state == ROLLED_BACK, f"regressed rollout ended {state}, expected rolled_back")
        _check(registry.active_version == v2, "rollback disturbed the active version")
        _check(registry.staged_version is None, "rollback left a staged marker")
        _check(
            isinstance(service.get_rollout(), FullActivation),
            "rollback did not restore the full-activation policy",
        )
        probe = ServiceEvaluator(service)
        probe.score_tiles_batched(stream[0][0], stream[0][1])
        _check(probe.model_version == v2, "post-rollback traffic not served by active")
        print(f"  {v3} auto-rolled-back within {used} requests; {v2} still active")

        # 6b. Adaptive placement: route skewed traffic at the service and
        #     let the PlacementController rebalance the shard map live —
        #     same request, bitwise-same answer, before and after.
        placement = PlacementController(
            service,
            PlacementConfig(
                skew_threshold=1.2, hysteresis=2, cooldown_s=0.0,
                ewma_alpha=1.0, min_interval_requests=8, max_moves=64,
            ),
        )
        shard_map = service.shard_map
        hot = [
            (kernel, tiles)
            for kernel, tiles in stream
            if shard_map.table[shard_map.bucket_of(kernel.fingerprint())] == 0
        ]
        hot_buckets = {
            shard_map.bucket_of(kernel.fingerprint()) for kernel, _ in hot
        }
        _check(len(hot) >= 8, "corpus yielded too few shard-0 kernels for the demo")
        probe_kernel, probe_tiles = hot[0]
        before_scores = probe.score_tiles_batched(probe_kernel, probe_tiles)
        map_version_before = shard_map.version
        applied = None
        for _ in range(5):
            for kernel, tiles in hot:
                probe.score_tiles_batched(kernel, tiles)
            applied = placement.step() or applied
            if applied:
                break
        if len(hot_buckets) >= 2:
            _check(applied is not None, "placement controller never rebalanced the skew")
            _check(
                service.shard_map.version > map_version_before,
                "rebalance did not version the shard map",
            )
            _check(
                service.metrics()["placement_changes"] >= 1.0,
                "rebalance not accounted in serving stats",
            )
            print(
                f"placement rebalanced: {applied['reason']} -> map "
                f"v{service.shard_map.version:.0f}, {applied['moves']} buckets moved"
            )
        after_scores = probe.score_tiles_batched(probe_kernel, probe_tiles)
        _check(
            (before_scores == after_scores).all(),
            "rebalance changed response numerics",
        )
        print("  responses bitwise-identical across the migration")

        # 7. Remote ingress: a TCP socket frontend feeding the same
        #    scheduler core — a tuner in another process or machine would
        #    connect exactly like this and share the same micro-batches.
        with SocketFrontend(service) as frontend:
            host, port = frontend.address
            print(f"socket frontend listening on {host}:{port}")
            with SocketEvaluator(frontend.address) as remote:
                kernel = dataset.records[0].kernel
                runtime = remote.kernel_runtime(kernel)
                print(
                    f"  remote kernel_runtime over TCP: {runtime:.3e} s "
                    f"(served by {remote.model_version})"
                )
                _check(remote.model_version == v2, "socket traffic not on active version")
            print(f"  frontend traffic: {frontend.stats()}")

        # 8. Persistence: spill every version + the active/staged markers;
        #    a restarted service (or a fresh worker) recovers the exact
        #    active checkpoint bytes.
        with tempfile.TemporaryDirectory() as spill_dir:
            registry.spill(spill_dir)
            restored = ModelRegistry.load(spill_dir)
            _check(
                restored.blob(v2) == registry.blob(v2)
                and restored.active_version == v2,
                "spill/load did not round-trip the active checkpoint",
            )
            print(f"registry spilled + restored byte-identically (active {restored.active_version})")

        # 9. The service's operational story, in numbers — service-wide,
        #    then per shard, then the control plane's per-version view.
        metrics = service.metrics()
        print("service metrics:")
        for key in (
            "requests", "qps", "batches", "batch_occupancy",
            "requests_per_forward", "cache_hit_rate", "shadow_forwards",
            "latency_p50_s", "latency_p99_s", "active_version", "executor",
        ):
            value = metrics[key]
            print(f"  {key:22s} {value:.4f}" if isinstance(value, float) else f"  {key:22s} {value}")
        print("per-shard breakdown:")
        for shard, entry in metrics["per_shard"].items():
            print(
                f"  shard {shard}: requests {entry['requests']:.0f}, "
                f"forwards {entry['forwards']:.0f}, "
                f"occupancy {entry['requests_per_forward']:.1f}, "
                f"p99 {entry['latency_p99_s'] * 1e3:.2f} ms"
            )
        print("per-version breakdown:")
        for version, entry in metrics["per_version"].items():
            print(
                f"  {version}: served {entry['served']:.0f} "
                f"(canary {entry['canary']:.0f}), shadow {entry['shadow']:.0f}, "
                f"window error {entry.get('feedback_mean_error', 0.0):.3f} "
                f"over {entry.get('feedback_count', 0.0):.0f}"
            )
        _check(metrics["per_version"][v3]["canary"] > 0, "regressed canary saw no traffic")

        # 10. Observability: one request's end-to-end trace tree, then
        #     the same registry every number above came from, scraped
        #     over the HTTP ops gateway in Prometheus exposition format.
        recent = tracer.recent(1)
        _check(bool(recent), "fully-sampled demo retained no traces")
        tree = tracer.trace(recent[0]["trace_id"])
        _check(
            tree is not None and tree["span_count"] >= 2,
            "retained trace assembled no span tree",
        )
        print("one request, end to end:")
        for line in tracer.render(recent[0]["trace_id"]).splitlines():
            print(f"  {line}")

        with MetricsGateway(service) as gateway:
            host, port = gateway.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=10
            ) as resp:
                exposition = resp.read().decode()
            # Malformed exposition = broken scrape pipeline: every
            # non-comment line must be `name{labels} value` with a
            # float-parsable value, and the core series must be present.
            for line in exposition.strip().splitlines():
                if line.startswith("#"):
                    _check(
                        line.startswith("# TYPE "),
                        f"malformed comment line in exposition: {line!r}",
                    )
                    continue
                _, _, value_part = line.rpartition(" ")
                try:
                    float(value_part)
                except ValueError:
                    _check(False, f"malformed exposition line: {line!r}")
            for series in (
                "repro_requests_total",
                "repro_per_shard_requests",
                "repro_per_version_served",
                "repro_slo_burn_rate",
                "repro_spans_recorded_total",
            ):
                _check(series in exposition, f"exposition missing {series}")
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics?format=json", timeout=10
            ) as resp:
                snapshot = json.loads(resp.read())
            for key in ("requests", "per_shard", "per_version", "slo_burn_rate"):
                _check(key in snapshot, f"JSON snapshot missing {key}")
            _check(
                snapshot["requests"] == metrics["requests"]
                or snapshot["requests"] >= metrics["requests"],
                "gateway snapshot lost requests",
            )
            shown = exposition.strip().splitlines()
            print(f"/metrics exposition ({len(shown)} lines), first 12:")
            for line in shown[:12]:
                print(f"  {line}")

        # 11. Active probing + a forced incident. Golden probes carry
        #     precomputed known answers; a healthy sweep verifies every
        #     live route bitwise. Then the serving-side model object is
        #     corrupted *in memory* — the sealed checkpoint blob stays
        #     pristine, so the registry's SHA-256 can never catch it —
        #     and the probe known-answer check catches it instead,
        #     before any client request errors. The threshold alert on
        #     `prober_routes_failing` fires, and the incident reporter
        #     turns the firing into a ranked root-cause report.
        corpus = [
            GoldenProbe(kernel, tuple(tiles)) for kernel, tiles in stream[:3]
        ]
        prober = SyntheticProber(corpus)
        service.attach_prober(prober)
        reporter = IncidentReporter()
        service.attach_incidents(reporter)
        engine = AlertEngine(
            rules=[
                ThresholdRule(
                    name="probe_integrity",
                    metric="prober_routes_failing",
                    threshold=0.0,
                    severity="critical",
                )
            ]
        )
        service.attach_alerts(engine)

        summary = prober.sweep()
        _check(summary["failures"] == 0, "healthy sweep reported probe failures")
        _check(
            all(v["exact"] for v in prober.recent(summary["probes"])),
            "healthy probes were not bitwise-exact against their references",
        )
        print(
            f"probe sweep: {summary['probes']} probes, all known answers "
            f"bitwise-exact ({summary['routes_covered']} routes covered)"
        )

        errors_before = service.metrics()["errors"]
        param = registry.get(registry.active_version).model.parameters()[0].data
        original = param.flat[0]
        param.flat[0] = original + 100.0  # silent serving-side corruption
        summary = prober.sweep()
        _check(summary["failures"] >= 1, "probe sweep missed the corrupted model")
        failing = prober.failing_routes()
        _check(bool(failing), "probe failures recorded no failing route")
        _check(
            service.metrics()["errors"] == errors_before,
            "corruption produced client-visible errors before the probe caught it",
        )
        verdict = next(v for v in prober.recent(10) if v["outcome"] == "fail")
        print(
            f"corruption caught by probe on route {verdict['route']}: "
            f"{verdict['reason']} (no client request errored)"
        )

        for _ in range(5):
            if engine.state("probe_integrity") == "firing":
                break
            engine.evaluate()
        _check(
            engine.state("probe_integrity") == "firing",
            "probe-integrity alert did not fire",
        )
        incidents = reporter.reports()
        _check(bool(incidents), "firing alert opened no incident report")
        incident = reporter.report(incidents[0]["id"])
        top = incident["causes"][0]
        _check(
            top["kind"] == "probe_failure",
            f"incident top cause is {top['kind']!r}, expected probe_failure",
        )
        print(f"incident {incidents[0]['id']} (rule {incidents[0]['rule']}):")
        print(f"  top cause: {top['cause']}")

        with MetricsGateway(service) as gateway:
            host, port = gateway.address
            with urllib.request.urlopen(
                f"http://{host}:{port}/probes", timeout=10
            ) as resp:
                board = json.loads(resp.read())
            _check(
                board["failing_routes"] == sorted(failing),
                "/probes board disagrees with the prober",
            )
            with urllib.request.urlopen(
                f"http://{host}:{port}/incidents", timeout=10
            ) as resp:
                served = json.loads(resp.read())
            _check(
                served["incidents"]
                and served["incidents"][0]["id"] == incidents[0]["id"],
                "/incidents did not serve the open report",
            )
            print(
                f"gateway: /probes shows {len(board['failing_routes'])} failing "
                f"route(s), /incidents serves {len(served['incidents'])} report(s)"
            )

        param.flat[0] = original  # repair the model
        summary = prober.sweep()
        _check(
            summary["failures"] == 0 and prober.failing_routes() == {},
            "recovery sweep did not clear the failing routes",
        )
        print("model repaired; probe routes clear")
        print("all smoke checks passed")


if __name__ == "__main__":
    main()
