"""Serve one warm cost model to many concurrent autotuner clients.

Walkthrough of the serving layer: train a small tile model, publish it to
a versioned registry, stand up the micro-batched inference service, run
several tile autotuners concurrently against it through the standard
evaluator interface, hot-swap a fine-tuned checkpoint mid-flight, and read
the service metrics.

Run:  PYTHONPATH=src python examples/serve_cost_model.py
"""
import threading

from repro.autotuner import HardwareEvaluator, model_tile_autotune
from repro.data import build_tile_dataset
from repro.models import ModelConfig, TrainConfig, fine_tune, train_tile_model
from repro.serving import (
    CostModelService,
    ModelRegistry,
    ServiceConfig,
    ServiceEvaluator,
)
from repro.workloads import vision


def main() -> None:
    # 1. Train a first checkpoint offline (the paper's deployment mode:
    #    train once, query at compile time).
    programs = [vision.image_embed(0), vision.alexnet(0)]
    dataset = build_tile_dataset(
        programs, max_kernels_per_program=6, max_tiles_per_kernel=8, seed=0
    )
    config = ModelConfig(
        task="tile", reduction="column-wise",
        hidden_dim=32, opcode_embedding_dim=16, gnn_layers=2,
    )
    result = train_tile_model(dataset.records, config, TrainConfig(steps=60, log_every=30))

    # 2. Publish it. The registry stores serialized checkpoint bytes —
    #    no disk, and hot swaps are atomic reference flips.
    registry = ModelRegistry()
    v1 = registry.publish(result)
    print(f"published checkpoint {v1} ({len(registry.blob(v1)) // 1024} kB serialized)")

    # 3. Serve it. One service, one warm model, shared by every client;
    #    queued queries coalesce into shared batched forward passes.
    service_config = ServiceConfig(max_batch_size=32, flush_interval_s=0.002, replicas=2)
    with CostModelService(registry, service_config) as service:
        # 4. Concurrent tuner clients — note: *unchanged* autotuner code,
        #    ServiceEvaluator speaks the standard evaluator protocol.
        results = {}

        def tune(name: str, program) -> None:
            from repro.compiler import fuse_program

            kernels = fuse_program(program.graph, program_name=program.name)[:4]
            evaluator = ServiceEvaluator(service)
            tuned = model_tile_autotune(kernels, evaluator, HardwareEvaluator(), top_k=1)
            results[name] = (tuned.speedup, evaluator.model_version)

        tuners = [
            threading.Thread(target=tune, args=(p.name + f"#{i}", p))
            for i, p in enumerate(programs * 2)
        ]
        for t in tuners[: len(programs)]:
            t.start()

        # 5. Hot-swap a fine-tuned checkpoint while tuners are in flight.
        #    In-flight micro-batches finish on v1; later ones use v2 —
        #    no response ever mixes the two.
        tuned_result = fine_tune(result, dataset.records, TrainConfig(steps=30, log_every=30))
        v2 = registry.publish(tuned_result)
        print(f"hot-swapped to {v2} mid-stream")
        for t in tuners[len(programs):]:
            t.start()
        for t in tuners:
            t.join()

        for name, (speedup, version) in sorted(results.items()):
            print(f"  tuner {name:16s} speedup {speedup:5.2f}x  (served by {version})")

        # 6. The service's operational story, in numbers.
        metrics = service.metrics()
        print("service metrics:")
        for key in (
            "requests", "qps", "batches", "batch_occupancy",
            "requests_per_forward", "cache_hit_rate",
            "latency_p50_s", "latency_p99_s", "active_version",
        ):
            value = metrics[key]
            print(f"  {key:22s} {value:.4f}" if isinstance(value, float) else f"  {key:22s} {value}")


if __name__ == "__main__":
    main()
