"""Explore the synthetic 104-program corpus: families, graph sizes, kernel
statistics and simulated runtimes — the data the whole reproduction runs on.

Run:  python examples/explore_corpus.py
"""
import numpy as np

from repro.compiler import default_tile, enumerate_tile_sizes, fuse_program
from repro.evaluation import format_table
from repro.tpu import TPU_V2, TPU_V3, TpuSimulator
from repro.workloads import build_corpus, manual_split, random_split


def main() -> None:
    corpus = build_corpus()
    print(f"corpus: {len(corpus)} programs")

    by_family: dict[str, list] = {}
    for p in corpus:
        by_family.setdefault(p.family, []).append(p)

    sim_v2 = TpuSimulator(TPU_V2)
    sim_v3 = TpuSimulator(TPU_V3)
    rows = []
    for family in sorted(by_family):
        programs = by_family[family]
        p = programs[0]
        kernels = fuse_program(p.graph, program_name=p.name)
        tiles = [len(enumerate_tile_sizes(k)) for k in kernels if k.has_tile_options()]
        rt_v2 = sim_v2.run_program(kernels) * 1e6
        rt_v3 = sim_v3.run_program(kernels) * 1e6
        rows.append([
            family,
            len(programs),
            len(p.graph),
            len(kernels),
            float(np.mean(tiles)) if tiles else 0.0,
            rt_v2,
            rt_v3,
        ])
    print()
    print(format_table(
        ["family", "variants", "graph ops", "kernels", "avg tiles/kernel",
         "v2 us", "v3 us"],
        rows,
        title="per-family statistics (first variant of each family)",
        float_fmt="{:.1f}",
    ))

    rs, ms = random_split(corpus), manual_split(corpus)
    print(f"\nrandom split: {len(rs.train)}/{len(rs.validation)}/{len(rs.test)} "
          f"programs; test apps: {', '.join(rs.test_names)}")
    print(f"manual split: {len(ms.train)}/{len(ms.validation)}/{len(ms.test)} "
          f"programs; test apps: {', '.join(ms.test_names)}")
    print("\nNote: every program runs faster on TPU v3 than v2 (more MXUs and "
          "bandwidth), matching the hardware description in the paper.")


if __name__ == "__main__":
    main()
