"""Continuous learning: close the train -> serve -> measure -> retrain loop.

The paper's answer to workloads the model has never seen is re-training
or fine-tuning on similar benchmarks (Sec. 7.1). This example runs that
answer as a *production loop* rather than an offline step:

1. train a first checkpoint on one program family only;
2. serve live traffic that includes a **new, unseen family** — the
   :class:`FeedbackCollector` joins every served prediction with the
   (simulated) hardware's measured runtimes, so the model's blind spot
   shows up as a per-version accuracy window, not an anecdote;
3. fine-tune on the collected feedback samples
   (:func:`repro.models.fine_tune_on_feedback` — the trainer's
   continuous-learning hook), producing a candidate checkpoint;
4. hand the candidate to the :class:`RolloutController`, which stages it
   and walks it shadow -> canary -> promoted on live evidence — or rolls
   it back if fine-tuning made things worse;
5. repeat. Every promotion tightens the window; the registry's
   ``retain`` bound keeps the endless publish stream from growing
   memory.

The script checks its claimed outcomes and exits non-zero on failure.

Run:  PYTHONPATH=src python examples/continuous_learning.py
"""
import sys

from repro.compiler import enumerate_tile_sizes
from repro.data import build_tile_dataset
from repro.models import (
    ModelConfig,
    TrainConfig,
    fine_tune_on_feedback,
    train_tile_model,
)
from repro.serving import (
    PROMOTED,
    ROLLED_BACK,
    CostModelService,
    FeedbackCollector,
    ModelRegistry,
    RolloutConfig,
    RolloutController,
    ServiceConfig,
    ServiceEvaluator,
    request_key,
    tile_measurement,
)
from repro.serving.protocol import TileScoresRequest
from repro.tpu import TpuSimulator
from repro.workloads import vision

ROUNDS = 2
TRAFFIC_PER_ROUND = 400


def _check(condition: bool, message: str) -> None:
    if not condition:
        print(f"CHECK FAILED: {message}", file=sys.stderr)
        sys.exit(1)


def main() -> None:
    simulator = TpuSimulator()

    # Day 0: the model only ever saw image_embed kernels.
    known = build_tile_dataset(
        [vision.image_embed(0)], max_kernels_per_program=6, max_tiles_per_kernel=8, seed=0
    )
    config = ModelConfig(
        task="tile", reduction="column-wise",
        hidden_dim=32, opcode_embedding_dim=16, gnn_layers=2,
    )
    result = train_tile_model(known.records, config, TrainConfig(steps=60, log_every=60))

    # Day 1: traffic adds a family the checkpoint has never seen.
    unseen = build_tile_dataset(
        [vision.alexnet(0)], max_kernels_per_program=6, max_tiles_per_kernel=8, seed=1
    )
    stream = []
    for record in known.records + unseen.records:
        tiles = enumerate_tile_sizes(record.kernel)[:4]
        if len(tiles) == 4:
            stream.append((record.kernel, tiles))
    _check(len(stream) >= 8, "workload stream too small to be meaningful")

    registry = ModelRegistry(retain=4)
    active = registry.publish(result)
    feedback = FeedbackCollector(window=512, retain_samples=4096)
    service_config = ServiceConfig(
        max_batch_size=32, replicas=2, result_cache_entries=0
    )
    promotions = []
    with CostModelService(registry, service_config, feedback=feedback) as service:
        controller = RolloutController(
            service,
            feedback,
            RolloutConfig(
                canary_fraction=0.5,
                min_samples=12,
                max_samples_per_phase=200,
                promote_margin=0.10,
                abort_margin=0.35,
            ),
        )
        client = ServiceEvaluator(service)

        def serve_and_measure(budget: int, step_controller: bool) -> int:
            """Serve the stream round-robin, joining measurements; returns
            requests used (stops early once a rollout concludes)."""
            for i in range(budget):
                kernel, tiles = stream[i % len(stream)]
                client.score_tiles_batched(kernel, tiles)
                request = TileScoresRequest(kernel=kernel, tiles=tuple(tiles))
                feedback.record_measurement(
                    request_key(request), tile_measurement(simulator, kernel, tiles)
                )
                if step_controller and controller.step() in (PROMOTED, ROLLED_BACK):
                    return i + 1
            return budget

        for round_index in range(1, ROUNDS + 1):
            # Observe: the active window now reflects the mixed traffic.
            serve_and_measure(len(stream) * 2, step_controller=False)
            window = feedback.error_window(registry.active_version)
            print(
                f"round {round_index}: active {registry.active_version} window "
                f"error {window.mean_error:.3f} over {window.count} joined samples"
            )

            # Retrain on what serving actually measured, then stage it.
            candidate = fine_tune_on_feedback(
                result, feedback.drain_samples(), TrainConfig(steps=40)
            )
            _check(candidate is not None, "no tile feedback to fine-tune on")
            result = candidate
            staged = controller.stage(candidate)
            used = serve_and_measure(TRAFFIC_PER_ROUND, step_controller=True)
            print(
                f"  staged {staged}: {controller.state} after {used} requests"
            )
            for t in controller.transitions[-3:]:
                print(f"    -> {t.state:11s} ({t.reason})")
            if controller.state == PROMOTED:
                promotions.append(staged)
            _check(
                controller.state in (PROMOTED, ROLLED_BACK),
                f"rollout of {staged} never concluded",
            )

        metrics = service.metrics()
        print("per-version window errors after the loop:")
        for version, entry in metrics["per_version"].items():
            print(
                f"  {version}: served {entry['served']:.0f} "
                f"(canary {entry['canary']:.0f}, shadow {entry['shadow']:.0f}), "
                f"error {entry.get('feedback_mean_error', 0.0):.3f}"
            )
        _check(promotions, "no fine-tuned checkpoint was ever promoted")
        _check(
            registry.active_version == promotions[-1],
            "last promotion is not the active version",
        )
        _check(
            len(registry.versions) <= 4,
            "retention failed to bound the registry",
        )
        final = feedback.error_window(registry.active_version)
        print(
            f"continuous-learning loop done: active {registry.active_version}, "
            f"window error {final.mean_error:.3f}, "
            f"{len(registry.versions)} versions retained"
        )


if __name__ == "__main__":
    main()
