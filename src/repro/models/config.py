"""Model and training configuration (paper Sec. 3, Appendix B).

Every ablation axis of the paper is a field here:

* ``gnn``: GraphSAGE / GAT / none (Table 4 columns);
* ``reduction``: per-node / column-wise / LSTM / Transformer (Table 4 rows);
* ``directed``: separate aggregators per edge direction ('Undirected'
  ablation of Table 3);
* ``use_static_features`` + ``static_placement``: the optional static
  performance features, injected at node level or into the kernel
  embedding (Table 3);
* ``tile_placement``: tile size appended to node features (Fig. 3 option 1)
  or to the kernel embedding (option 2, the 'Move tile-size' ablation);
* ``loss``: pairwise rank (hinge/logistic) vs MSE (Table 3 'MSE loss').
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace

GNN_CHOICES = ("graphsage", "gat", "none")
REDUCTION_CHOICES = ("per-node", "column-wise", "lstm", "transformer")
LOSS_CHOICES = ("rank_hinge", "rank_logistic", "mse")
PLACEMENT_CHOICES = ("node", "kernel")


@dataclass(frozen=True)
class ModelConfig:
    """Architecture + objective configuration of the learned model.

    Defaults are a scaled-down analogue of the paper's fixed hyperparameters
    (App. B Table 5): the paper uses a 256-wide opcode embedding, 512/1024
    hidden units and 3 GNN layers on a V100; we default to widths that train
    in seconds on a CPU while preserving every structural choice.
    """

    task: str = "tile"  # "tile" | "fusion"
    gnn: str = "graphsage"
    reduction: str = "column-wise"
    loss: str = "rank_hinge"

    opcode_embedding_dim: int = 32
    hidden_dim: int = 64
    gnn_layers: int = 3
    node_final_layers: int = 2
    directed: bool = True
    neighbor_cap: int = 20

    use_static_features: bool = True
    static_placement: str = "node"
    tile_placement: str = "node"

    transformer_layers: int = 1
    transformer_heads: int = 4
    gat_heads: int = 2
    lstm_hidden: int = 64

    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.task not in ("tile", "fusion"):
            raise ValueError(f"unknown task {self.task!r}")
        if self.gnn not in GNN_CHOICES:
            raise ValueError(f"unknown gnn {self.gnn!r}")
        if self.reduction not in REDUCTION_CHOICES:
            raise ValueError(f"unknown reduction {self.reduction!r}")
        if self.loss not in LOSS_CHOICES:
            raise ValueError(f"unknown loss {self.loss!r}")
        if self.static_placement not in PLACEMENT_CHOICES:
            raise ValueError(f"bad static_placement {self.static_placement!r}")
        if self.tile_placement not in PLACEMENT_CHOICES:
            raise ValueError(f"bad tile_placement {self.tile_placement!r}")
        if self.task == "fusion" and self.loss == "mse":
            pass  # fusion always uses MSE in the paper; ranks also allowed
        if self.hidden_dim <= 0 or self.opcode_embedding_dim <= 0:
            raise ValueError("dims must be positive")

    def with_overrides(self, **kwargs) -> "ModelConfig":
        """Functional update (used heavily by the ablation benchmarks)."""
        return replace(self, **kwargs)

    @staticmethod
    def paper_best_tile() -> "ModelConfig":
        """Best tile-task model of Table 4: GraphSAGE + LSTM, rank loss."""
        return ModelConfig(task="tile", gnn="graphsage", reduction="lstm", loss="rank_hinge")

    @staticmethod
    def paper_best_fusion() -> "ModelConfig":
        """Best fusion-task model of Table 4: GraphSAGE + Transformer, MSE."""
        return ModelConfig(task="fusion", gnn="graphsage", reduction="transformer", loss="mse")

    @staticmethod
    def vanilla(task: str = "tile") -> "ModelConfig":
        """The Table 3 'vanilla' configuration: GraphSAGE + per-node, no
        static features, directed edges, rank loss (tile) / MSE (fusion)."""
        return ModelConfig(
            task=task,
            gnn="graphsage",
            reduction="per-node",
            loss="rank_hinge" if task == "tile" else "mse",
            use_static_features=False,
        )


@dataclass(frozen=True)
class TrainConfig:
    """Optimization settings (paper App. B training hyperparameters)."""

    steps: int = 1500
    learning_rate: float = 1e-3
    lr_decay: float = 0.98
    lr_decay_every: int = 500
    grad_clip: float | None = 5.0
    kernels_per_batch: int = 8
    tiles_per_kernel: int = 4
    batch_size: int = 32  # fusion task
    seed: int = 0
    log_every: int = 250
