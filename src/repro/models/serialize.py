"""Persistence for trained performance models.

A trained model is (config, parameters, feature scalers); all three are
saved into one ``.npz`` archive so a model trained once can be shipped to
the compiler/autotuner without retraining — the deployment mode the paper
targets (the model is trained offline and queried at compile time).
"""
from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np

from ..data.batching import Scalers
from ..data.features import FeatureScaler
from .config import ModelConfig
from .model import LearnedPerformanceModel
from .trainer import TrainResult


def save_model(path: str | Path, result: TrainResult) -> None:
    """Save a trained model + scalers to ``path`` (.npz).

    Args:
        path: destination file; parent directories must exist.
        result: the :class:`TrainResult` from training.
    """
    path = Path(path)
    payload: dict[str, np.ndarray] = {}
    for name, arr in result.model.state_dict().items():
        payload[f"param/{name}"] = arr
    for block in ("node", "tile", "static"):
        scaler: FeatureScaler = getattr(result.scalers, block)
        state = scaler.state()
        payload[f"scaler/{block}/lo"] = state["lo"]
        payload[f"scaler/{block}/hi"] = state["hi"]
    config_json = json.dumps(dataclasses.asdict(result.model.config))
    payload["config"] = np.frombuffer(config_json.encode(), dtype=np.uint8)
    np.savez_compressed(path, **payload)


def load_model(path: str | Path) -> TrainResult:
    """Load a model saved by :func:`save_model`.

    Returns:
        A :class:`TrainResult` with the restored model (in eval mode) and
        scalers; ``loss_history`` is empty.

    Raises:
        KeyError: if the archive is missing required entries.
    """
    path = Path(path)
    with np.load(path) as archive:
        config_json = bytes(archive["config"]).decode()
        config = ModelConfig(**json.loads(config_json))
        model = LearnedPerformanceModel(config)
        state = {
            name[len("param/"):]: archive[name]
            for name in archive.files
            if name.startswith("param/")
        }
        model.load_state_dict(state)
        scalers = Scalers(
            node=FeatureScaler.from_state(
                {"lo": archive["scaler/node/lo"], "hi": archive["scaler/node/hi"]}
            ),
            tile=FeatureScaler.from_state(
                {"lo": archive["scaler/tile/lo"], "hi": archive["scaler/tile/hi"]}
            ),
            static=FeatureScaler.from_state(
                {"lo": archive["scaler/static/lo"], "hi": archive["scaler/static/hi"]}
            ),
        )
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])
