"""Persistence for trained performance models.

A trained model is (config, parameters, feature scalers); all three are
saved into one ``.npz`` archive so a model trained once can be shipped to
the compiler/autotuner without retraining — the deployment mode the paper
targets (the model is trained offline and queried at compile time).

Two transports share one format: :func:`save_model` / :func:`load_model`
write and read files, :func:`save_model_bytes` / :func:`load_model_bytes`
round-trip the same archive through memory. The in-memory form is what the
serving layer's model registry uses to hold versioned checkpoints and
hot-swap them without touching disk.
"""
from __future__ import annotations

import dataclasses
import io
import json
from pathlib import Path

import numpy as np

from ..data.batching import Scalers
from ..data.features import FeatureScaler
from .config import ModelConfig
from .model import LearnedPerformanceModel
from .trainer import TrainResult


def _payload(result: TrainResult) -> dict[str, np.ndarray]:
    """Flatten (config, parameters, scalers) into one npz-able dict."""
    payload: dict[str, np.ndarray] = {}
    for name, arr in result.model.state_dict().items():
        payload[f"param/{name}"] = arr
    for block in ("node", "tile", "static"):
        scaler: FeatureScaler = getattr(result.scalers, block)
        state = scaler.state()
        payload[f"scaler/{block}/lo"] = state["lo"]
        payload[f"scaler/{block}/hi"] = state["hi"]
    config_json = json.dumps(dataclasses.asdict(result.model.config))
    payload["config"] = np.frombuffer(config_json.encode(), dtype=np.uint8)
    return payload


def _from_archive(archive) -> TrainResult:
    """Rebuild a :class:`TrainResult` from a loaded npz archive."""
    config_json = bytes(archive["config"]).decode()
    config = ModelConfig(**json.loads(config_json))
    model = LearnedPerformanceModel(config)
    state = {
        name[len("param/"):]: archive[name]
        for name in archive.files
        if name.startswith("param/")
    }
    model.load_state_dict(state)
    scalers = Scalers(
        node=FeatureScaler.from_state(
            {"lo": archive["scaler/node/lo"], "hi": archive["scaler/node/hi"]}
        ),
        tile=FeatureScaler.from_state(
            {"lo": archive["scaler/tile/lo"], "hi": archive["scaler/tile/hi"]}
        ),
        static=FeatureScaler.from_state(
            {"lo": archive["scaler/static/lo"], "hi": archive["scaler/static/hi"]}
        ),
    )
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


def save_model(path: str | Path, result: TrainResult) -> None:
    """Save a trained model + scalers to ``path`` (.npz).

    Args:
        path: destination file; parent directories must exist.
        result: the :class:`TrainResult` from training.
    """
    np.savez_compressed(Path(path), **_payload(result))


def load_model(path: str | Path) -> TrainResult:
    """Load a model saved by :func:`save_model`.

    Returns:
        A :class:`TrainResult` with the restored model (in eval mode) and
        scalers; ``loss_history`` is empty.

    Raises:
        KeyError: if the archive is missing required entries.
    """
    with np.load(Path(path)) as archive:
        return _from_archive(archive)


def save_model_bytes(result: TrainResult) -> bytes:
    """Serialize a trained model + scalers to npz bytes (no disk I/O)."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_payload(result))
    return buffer.getvalue()


def load_model_bytes(data: bytes) -> TrainResult:
    """Load a model serialized by :func:`save_model_bytes`."""
    with np.load(io.BytesIO(data)) as archive:
        return _from_archive(archive)
