"""Persistence for trained performance models.

A trained model is (config, parameters, feature scalers); all three are
saved into one ``.npz`` archive so a model trained once can be shipped to
the compiler/autotuner without retraining — the deployment mode the paper
targets (the model is trained offline and queried at compile time).

Two transports share one format: :func:`save_model` / :func:`load_model`
write and read files, :func:`save_model_bytes` / :func:`load_model_bytes`
round-trip the same archive through memory. The in-memory form is what the
serving layer's model registry uses to hold versioned checkpoints,
hot-swap them, spill them to disk, and ship them to worker processes and
remote nodes.

Because checkpoint blobs cross sockets, pipes and disk, the bytes form
carries an integrity envelope: a magic tag, the payload length, and a
SHA-256 digest. :func:`load_model_bytes` (and :func:`validate_model_blob`)
detect truncated or corrupted blobs up front and raise the typed
:class:`ModelBlobError` instead of failing deep inside npz deserialization.
Bare npz blobs from before the envelope still load.
"""
from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import struct
from pathlib import Path

import numpy as np

from ..data.batching import Scalers
from ..data.features import FeatureScaler
from .config import ModelConfig
from .model import LearnedPerformanceModel
from .trainer import TrainResult


#: Envelope tag of a checkpoint blob; the trailing byte is a format version.
BLOB_MAGIC = b"RPRMDL\x01"

#: Envelope layout after the magic: payload length (u64 BE) + SHA-256 digest.
_BLOB_HEADER = struct.Struct(">Q32s")


class ModelBlobError(ValueError):
    """Checkpoint bytes are not a valid model blob.

    Raised on a missing/unknown envelope, a truncated payload, a checksum
    mismatch, or an archive that fails to decode — the typed failure a
    registry, socket peer, or disk loader can catch without knowing npz
    internals.
    """


def _seal_blob(payload: bytes) -> bytes:
    """Wrap npz payload bytes in the magic + length + digest envelope."""
    digest = hashlib.sha256(payload).digest()
    return BLOB_MAGIC + _BLOB_HEADER.pack(len(payload), digest) + payload


def _unseal_blob(data: bytes) -> bytes:
    """Validate the envelope and return the npz payload.

    Accepts legacy bare npz bytes (``PK`` zip magic) unchecked, for blobs
    produced before the envelope existed.
    """
    if data[: len(BLOB_MAGIC)] == BLOB_MAGIC:
        offset = len(BLOB_MAGIC)
        if len(data) < offset + _BLOB_HEADER.size:
            raise ModelBlobError(
                f"truncated model blob: {len(data)} bytes is shorter than the envelope"
            )
        length, digest = _BLOB_HEADER.unpack_from(data, offset)
        payload = data[offset + _BLOB_HEADER.size:]
        if len(payload) != length:
            raise ModelBlobError(
                f"truncated model blob: envelope declares {length} payload bytes, "
                f"got {len(payload)}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise ModelBlobError("corrupt model blob: SHA-256 checksum mismatch")
        return payload
    if data[:2] == b"PK":  # legacy bare npz archive
        return data
    raise ModelBlobError(
        "not a model blob: missing checkpoint envelope and npz magic"
    )


def validate_model_blob(data: bytes) -> None:
    """Check blob integrity (envelope, length, checksum) without decoding.

    Raises:
        ModelBlobError: if the bytes cannot possibly hold a checkpoint.
    """
    _unseal_blob(bytes(data))


def _payload(result: TrainResult) -> dict[str, np.ndarray]:
    """Flatten (config, parameters, scalers) into one npz-able dict."""
    payload: dict[str, np.ndarray] = {}
    for name, arr in result.model.state_dict().items():
        payload[f"param/{name}"] = arr
    for block in ("node", "tile", "static"):
        scaler: FeatureScaler = getattr(result.scalers, block)
        state = scaler.state()
        payload[f"scaler/{block}/lo"] = state["lo"]
        payload[f"scaler/{block}/hi"] = state["hi"]
    config_json = json.dumps(dataclasses.asdict(result.model.config))
    payload["config"] = np.frombuffer(config_json.encode(), dtype=np.uint8)
    return payload


def _from_archive(archive) -> TrainResult:
    """Rebuild a :class:`TrainResult` from a loaded npz archive."""
    config_json = bytes(archive["config"]).decode()
    config = ModelConfig(**json.loads(config_json))
    model = LearnedPerformanceModel(config)
    state = {
        name[len("param/"):]: archive[name]
        for name in archive.files
        if name.startswith("param/")
    }
    model.load_state_dict(state)
    scalers = Scalers(
        node=FeatureScaler.from_state(
            {"lo": archive["scaler/node/lo"], "hi": archive["scaler/node/hi"]}
        ),
        tile=FeatureScaler.from_state(
            {"lo": archive["scaler/tile/lo"], "hi": archive["scaler/tile/hi"]}
        ),
        static=FeatureScaler.from_state(
            {"lo": archive["scaler/static/lo"], "hi": archive["scaler/static/hi"]}
        ),
    )
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=[])


def save_model(path: str | Path, result: TrainResult) -> None:
    """Save a trained model + scalers to ``path`` (.npz).

    Args:
        path: destination file; parent directories must exist.
        result: the :class:`TrainResult` from training.
    """
    np.savez_compressed(Path(path), **_payload(result))


def load_model(path: str | Path) -> TrainResult:
    """Load a model saved by :func:`save_model`.

    Returns:
        A :class:`TrainResult` with the restored model (in eval mode) and
        scalers; ``loss_history`` is empty.

    Raises:
        KeyError: if the archive is missing required entries.
    """
    path = Path(path)
    with path.open("rb") as handle:
        head = handle.read(len(BLOB_MAGIC))
    if head == BLOB_MAGIC:
        # A spilled checkpoint blob (envelope form) written straight to disk.
        return load_model_bytes(path.read_bytes())
    with np.load(path) as archive:
        return _from_archive(archive)


def save_model_bytes(result: TrainResult) -> bytes:
    """Serialize a trained model + scalers to checkpoint bytes (no disk I/O).

    The bytes are an npz archive sealed in the integrity envelope
    (:data:`BLOB_MAGIC` + length + SHA-256), so truncation or corruption in
    transit is caught at load time instead of surfacing as an opaque npz
    decode failure.
    """
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_payload(result))
    return _seal_blob(buffer.getvalue())


def load_model_bytes(data: bytes) -> TrainResult:
    """Load a model serialized by :func:`save_model_bytes`.

    Raises:
        ModelBlobError: on truncated, corrupted, or undecodable bytes.
    """
    payload = _unseal_blob(bytes(data))
    try:
        with np.load(io.BytesIO(payload)) as archive:
            return _from_archive(archive)
    except Exception as exc:
        raise ModelBlobError(f"undecodable model blob: {exc}") from exc
