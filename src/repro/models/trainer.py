"""Training loop for the learned performance model.

The hot loop runs off a *precompiled step plan*: all batch draws for the
run are materialized up front (cheap — item tuples hold references into the
record set), every unique kernel is precomputed once into a
:class:`~repro.data.batching.KernelCache`, and each step then composes its
batch by index arithmetic over cached blocks. Per-step cost is reduced to
the batch composition plus the model's sparse matmuls; numerics are
bitwise-identical to assembling each batch from scratch (the cache's
composition invariant).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.batching import (
    BatchItem,
    FusionBatchSampler,
    KernelCache,
    Scalers,
    TileBatchSampler,
)
from ..data.dataset import FusionRecord, TileRecord
from ..nn.losses import log_mse_loss, pairwise_rank_loss
from ..nn.optim import Adam, clip_global_norm
from ..nn.tensor import Tensor
from .config import ModelConfig, TrainConfig
from .model import LearnedPerformanceModel


@dataclass
class TrainResult:
    """Artifacts of one training run.

    Attributes:
        model: the trained model (in eval-ready state).
        scalers: feature scalers fitted on the training set (must be reused
            at evaluation time).
        loss_history: (step, loss) samples.
    """

    model: LearnedPerformanceModel
    scalers: Scalers
    loss_history: list[tuple[int, float]] = field(default_factory=list)


def _loss_fn(config: ModelConfig, pred: Tensor, targets: np.ndarray, groups: np.ndarray) -> Tensor:
    if config.loss == "mse":
        return log_mse_loss(pred, targets)
    phi = "hinge" if config.loss == "rank_hinge" else "logistic"
    return pairwise_rank_loss(pred, targets, groups, phi=phi)


def train_tile_model(
    records: list[TileRecord],
    config: ModelConfig | None = None,
    train: TrainConfig | None = None,
    verbose: bool = False,
) -> TrainResult:
    """Train a tile-size model on tile records.

    Args:
        records: training records (one per kernel, with tile sweeps).
        config: model configuration; defaults to the paper's best tile model.
        train: optimization settings.
        verbose: print loss every ``train.log_every`` steps.
    """
    config = config or ModelConfig.paper_best_tile()
    if config.task != "tile":
        raise ValueError("train_tile_model requires a task='tile' config")
    train = train or TrainConfig()
    scalers = Scalers.fit_tile(records)
    sampler = TileBatchSampler(
        records,
        kernels_per_batch=train.kernels_per_batch,
        tiles_per_kernel=train.tiles_per_kernel,
        seed=train.seed,
    )
    model = LearnedPerformanceModel(config, seed=train.seed)
    return _run_loop(model, config, train, scalers, sampler.draw_items, verbose)


def train_fusion_model(
    records: list[FusionRecord],
    config: ModelConfig | None = None,
    train: TrainConfig | None = None,
    verbose: bool = False,
) -> TrainResult:
    """Train a fusion (absolute runtime) model on fusion records."""
    config = config or ModelConfig.paper_best_fusion()
    if config.task != "fusion":
        raise ValueError("train_fusion_model requires a task='fusion' config")
    train = train or TrainConfig()
    scalers = Scalers.fit_fusion(records)
    sampler = FusionBatchSampler(records, batch_size=train.batch_size, seed=train.seed)
    model = LearnedPerformanceModel(config, seed=train.seed)
    return _run_loop(model, config, train, scalers, sampler.draw_items, verbose)


def compile_step_plan(draw_items, steps: int) -> list[list[BatchItem]]:
    """Materialize every batch draw of a run up front.

    Drawing consumes the sampler's rng in the same order as drawing inside
    the loop would, so the plan changes nothing numerically. The plan (item
    tuples hold references into the record set, not copies) lets
    ``warm_cache`` precompute every kernel the run will touch before step 0
    — per-step work then reduces to index-arithmetic batch composition plus
    the model's sparse matmuls, with no first-sight normalization spikes.
    """
    return [draw_items() for _ in range(steps)]


def warm_cache(cache: KernelCache, plan: list[list[BatchItem]]) -> None:
    """Precompute cache entries for every kernel appearing in ``plan``."""
    for items in plan:
        for features, _, _, _ in items:
            cache.entry(features)


def _run_loop(
    model: LearnedPerformanceModel,
    config: ModelConfig,
    train: TrainConfig,
    scalers: Scalers,
    draw_items,
    verbose: bool,
) -> TrainResult:
    opt = Adam(
        model.parameters(),
        lr=train.learning_rate,
        decay=train.lr_decay,
        decay_every=train.lr_decay_every,
    )
    history: list[tuple[int, float]] = []
    cache = KernelCache(scalers, neighbor_cap=config.neighbor_cap)
    plan = compile_step_plan(draw_items, train.steps)
    warm_cache(cache, plan)
    for step, items in enumerate(plan):
        batch = cache.assemble(items)
        pred = model(batch)
        loss = _loss_fn(config, pred, batch.targets, batch.group_ids)
        opt.zero_grad()
        loss.backward()
        if train.grad_clip is not None:
            clip_global_norm(opt.params, train.grad_clip)
        opt.step()
        if step % train.log_every == 0 or step == train.steps - 1:
            history.append((step, float(loss.item())))
            if verbose:
                print(f"  step {step:>6}  loss {loss.item():.4f}  lr {opt.lr:.2e}")
    model.eval()
    return TrainResult(model=model, scalers=scalers, loss_history=history)


def fine_tune(
    result: TrainResult,
    records: list[TileRecord] | list[FusionRecord],
    train: TrainConfig | None = None,
) -> TrainResult:
    """Continue training an existing model on additional records.

    The paper highlights this as a key advantage over the analytical model
    (Sec. 7.1): "if the learned model does not perform well on some
    benchmarks, we can re-train or fine-tune the model on similar
    benchmarks". The original feature scalers are kept (features must stay
    on the scale the network was trained with).

    Args:
        result: a previous :class:`TrainResult` (modified in place: the
            same model object keeps training).
        records: new tile or fusion records matching the model's task.
        train: optimization settings; defaults to a short schedule.
    """
    config = result.model.config
    train = train or TrainConfig(steps=300)
    if config.task == "tile":
        sampler = TileBatchSampler(
            records,  # type: ignore[arg-type]
            kernels_per_batch=train.kernels_per_batch,
            tiles_per_kernel=train.tiles_per_kernel,
            seed=train.seed,
        )
    else:
        sampler = FusionBatchSampler(
            records, batch_size=train.batch_size, seed=train.seed  # type: ignore[arg-type]
        )
    result.model.train()
    tuned = _run_loop(result.model, config, train, result.scalers, sampler.draw_items, False)
    return TrainResult(
        model=tuned.model,
        scalers=result.scalers,
        loss_history=result.loss_history + tuned.loss_history,
    )


# ------------------------------------------------- continuous learning
def feedback_to_tile_records(samples) -> list[TileRecord]:
    """Convert served-feedback samples into trainable tile records.

    ``samples`` are the joined (prediction, measurement) observations a
    :class:`~repro.serving.feedback.FeedbackCollector` retains: a tile
    sample carries the kernel, the candidate tiles the service priced,
    and the runtimes the (simulated) hardware measured for them. Samples
    of the same kernel are merged (last measurement wins per tile), so a
    kernel queried many times contributes one record with its union of
    measured tiles — exactly the shape :func:`fine_tune` consumes.

    Non-tile samples (kernel/program-runtime traffic) are skipped.
    """
    from ..compiler.tiling import TileConfig
    from ..data.dataset import TileRecord
    from ..data.features import extract_kernel_features, tile_features
    from ..serving.feedback import is_tile_sample

    by_kernel: dict[str, tuple] = {}
    for sample in samples:
        if not is_tile_sample(sample):
            continue
        request = sample.request
        measured = np.asarray(sample.measured, dtype=np.float64).reshape(-1)
        if measured.size != len(request.tiles):
            continue
        fingerprint = request.kernel.fingerprint()
        entry = by_kernel.get(fingerprint)
        if entry is None:
            entry = (request.kernel, {})
            by_kernel[fingerprint] = entry
        _, tile_runtimes = entry
        for tile, runtime in zip(request.tiles, measured):
            tile_runtimes[tile.dims] = float(runtime)

    records: list[TileRecord] = []
    for kernel, tile_runtimes in by_kernel.values():
        tiles = [TileConfig(dims=dims) for dims in tile_runtimes]
        records.append(
            TileRecord(
                kernel=kernel,
                features=extract_kernel_features(kernel),
                tiles=tiles,
                tile_feats=np.stack([tile_features(t) for t in tiles]),
                runtimes=np.asarray(list(tile_runtimes.values()), dtype=np.float64),
                program="feedback",
                family="feedback",
            )
        )
    return records


def fine_tune_on_feedback(
    result: TrainResult,
    samples,
    train: TrainConfig | None = None,
) -> TrainResult | None:
    """Fine-tune a tile model on the serving tier's collected feedback.

    The continuous-learning hook: the serving layer collects joined
    (prediction, measured-runtime) samples while it serves; this turns
    them into records and runs the standard :func:`fine_tune` short
    schedule. Returns ``None`` when the samples contain no usable tile
    observations (the caller then simply skips this retraining round).
    The resulting checkpoint is *not* published anywhere — the caller
    stages it through the rollout controller, which is the entire point
    of the control plane.
    """
    records = feedback_to_tile_records(samples)
    if not records:
        return None
    return fine_tune(result, records, train=train)


# --------------------------------------------------------------- prediction
def predict_tile_scores(
    model: LearnedPerformanceModel,
    scalers: Scalers,
    record: TileRecord,
    chunk: int = 64,
) -> np.ndarray:
    """Rank scores for every tile sample of one kernel (lower = faster)."""
    scores = []
    n = record.num_samples
    cache = KernelCache(scalers, neighbor_cap=model.config.neighbor_cap)
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        items = [
            (record.features, record.tile_feats[t], float(record.runtimes[t]), 0)
            for t in range(lo, hi)
        ]
        scores.append(model.predict(cache.assemble(items)))
    return np.concatenate(scores)


def predict_fusion_runtimes(
    model: LearnedPerformanceModel,
    scalers: Scalers,
    records: list[FusionRecord],
    chunk: int = 64,
) -> np.ndarray:
    """Absolute runtime predictions (seconds) for fusion records."""
    out = []
    cache = KernelCache(scalers, neighbor_cap=model.config.neighbor_cap)
    for lo in range(0, len(records), chunk):
        batch_records = records[lo : lo + chunk]
        items = [(r.features, None, r.runtime, i) for i, r in enumerate(batch_records)]
        out.append(model.predict_runtimes(cache.assemble(items)))
    return np.concatenate(out)
