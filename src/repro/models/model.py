"""The learned performance model (paper Fig. 3).

Pipeline: opcode embedding ⊕ node features (⊕ kernel features under
'option 1') → feedforward → GNN (GraphSAGE / GAT / none) → node final
layers → reduction to a kernel embedding (per-node / column-wise / LSTM /
Transformer) (⊕ kernel features under 'option 2') → linear head → scalar.

For the tile task the scalar is a *rank score* (higher = slower); for the
fusion task it is the predicted log-runtime (seconds), exposed in linear
units via :meth:`LearnedPerformanceModel.predict_runtimes`.
"""
from __future__ import annotations

import numpy as np

from ..data.batching import GraphBatch
from ..data.features import NODE_FEATURE_DIM, STATIC_FEATURE_DIM, TILE_FEATURE_DIM
from ..hlo.opcodes import NUM_OPCODES
from ..nn.attention import TransformerEncoder
from ..nn.graph_layers import GATLayer, GraphSAGELayer
from ..nn.layers import Dense, Dropout, Embedding, MLP, Module
from ..nn.rnn import LSTM
from ..nn.sparse import segment_sum, spmm
from ..nn.tensor import Tensor, no_grad
from .config import ModelConfig


class LearnedPerformanceModel(Module):
    """GNN-based kernel cost model.

    Args:
        config: architecture configuration.
        seed: parameter-initialization seed.
    """

    def __init__(self, config: ModelConfig, seed: int = 0) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(seed)
        h = config.hidden_dim

        self.opcode_embedding = Embedding(NUM_OPCODES, config.opcode_embedding_dim, rng=rng)

        node_in = config.opcode_embedding_dim + NODE_FEATURE_DIM
        if config.task == "tile" and config.tile_placement == "node":
            node_in += TILE_FEATURE_DIM
        if config.use_static_features and config.static_placement == "node":
            node_in += STATIC_FEATURE_DIM
        self.input_proj = Dense(node_in, h, activation="relu", rng=rng)

        if config.gnn == "graphsage":
            self.gnn_layers = [
                GraphSAGELayer(h, h, directed=config.directed, rng=rng)
                for _ in range(config.gnn_layers)
            ]
        elif config.gnn == "gat":
            self.gnn_layers = [
                GATLayer(h, h, heads=config.gat_heads, rng=rng)
                for _ in range(config.gnn_layers)
            ]
        else:
            self.gnn_layers = []

        self.node_final = MLP(
            [h] * (config.node_final_layers + 1), final_activation="relu", rng=rng
        )
        self.dropout = Dropout(config.dropout, rng=rng)

        kernel_extra = 0
        if config.task == "tile" and config.tile_placement == "kernel":
            kernel_extra += TILE_FEATURE_DIM
        if config.use_static_features and config.static_placement == "kernel":
            kernel_extra += STATIC_FEATURE_DIM
        self._kernel_extra = kernel_extra

        if config.reduction == "per-node":
            self.node_head = Dense(h, 1, rng=rng)
            self.kernel_correction = (
                Dense(kernel_extra, 1, rng=rng) if kernel_extra else None
            )
        else:
            if config.reduction == "column-wise":
                emb_dim = 2 * h  # concat of column-wise mean and max (App. B)
            elif config.reduction == "lstm":
                self.lstm = LSTM(h, config.lstm_hidden, rng=rng)
                emb_dim = config.lstm_hidden
            elif config.reduction == "transformer":
                self.encoder = TransformerEncoder(
                    h,
                    layers=config.transformer_layers,
                    heads=config.transformer_heads,
                    dropout=config.dropout,
                    rng=rng,
                )
                emb_dim = h
            else:  # pragma: no cover - guarded by ModelConfig
                raise AssertionError(config.reduction)
            self.head = Dense(emb_dim + kernel_extra, 1, rng=rng)

    # ---------------------------------------------------------------- pieces
    def _node_inputs(self, batch: GraphBatch) -> Tensor:
        """Assemble per-node input vectors (option-1 kernel features repeat
        across every node of their kernel)."""
        cfg = self.config
        parts = [
            self.opcode_embedding(batch.opcodes),
            Tensor(batch.node_feats),
        ]
        gids = batch.context.graph_ids
        if cfg.task == "tile" and cfg.tile_placement == "node":
            parts.append(Tensor(batch.tile_feats[gids]))
        if cfg.use_static_features and cfg.static_placement == "node":
            parts.append(Tensor(batch.static_feats[gids]))
        return Tensor.concat(parts, axis=-1)

    def _kernel_extras(self, batch: GraphBatch) -> Tensor | None:
        """Kernel-embedding-level feature block (option 2), if configured."""
        cfg = self.config
        parts = []
        if cfg.task == "tile" and cfg.tile_placement == "kernel":
            parts.append(Tensor(batch.tile_feats))
        if cfg.use_static_features and cfg.static_placement == "kernel":
            parts.append(Tensor(batch.static_feats))
        if not parts:
            return None
        return Tensor.concat(parts, axis=-1)

    def _run_gnn(self, x: Tensor, batch: GraphBatch) -> Tensor:
        cfg = self.config
        ctx = batch.context
        for layer in self.gnn_layers:
            if cfg.gnn == "graphsage":
                if cfg.directed:
                    x = layer(x, ctx.adj_in, ctx.adj_out)
                else:
                    x = layer(x, ctx.adj_sym, ctx.adj_sym)
            else:  # gat
                x = layer(x, ctx.edges, ctx.num_nodes)
        return x

    def _padded_view(self, nodes: Tensor, batch: GraphBatch) -> Tensor:
        """Gather node embeddings into [batch, max_nodes, h] (topological
        order within each kernel, as the paper's sequence reductions use)."""
        b, t = batch.pad_index.shape
        flat = nodes.take_rows(batch.pad_index.reshape(-1))
        return flat.reshape(b, t, nodes.shape[-1])

    # --------------------------------------------------------------- forward
    def forward(self, batch: GraphBatch) -> Tensor:
        """Predict one scalar per kernel in the batch: [batch]."""
        cfg = self.config
        x = self.input_proj(self._node_inputs(batch))
        x = self._run_gnn(x, batch)
        x = self.node_final(x)
        x = self.dropout(x)

        extras = self._kernel_extras(batch)
        gids = batch.context.graph_ids
        nb = batch.context.num_graphs

        if cfg.reduction == "per-node":
            per_node = self.node_head(x)  # [n, 1]
            pred = segment_sum(per_node, gids, nb).reshape(nb)
            if extras is not None and self.kernel_correction is not None:
                pred = pred + self.kernel_correction(extras).reshape(nb)
            return pred

        if cfg.reduction == "column-wise":
            counts = np.bincount(gids, minlength=nb).astype(np.float32)
            mean = segment_sum(x, gids, nb) * Tensor(1.0 / counts[:, None])
            padded = self._padded_view(x, batch)
            neg_inf = np.where(batch.pad_mask[:, :, None], 0.0, -1e30).astype(np.float32)
            mx = (padded + Tensor(neg_inf)).max(axis=1)
            kernel_emb = Tensor.concat([mean, mx], axis=-1)
        elif cfg.reduction == "lstm":
            padded = self._padded_view(x, batch)
            kernel_emb = self.lstm(padded, batch.pad_mask)
        else:  # transformer
            padded = self._padded_view(x, batch)
            kernel_emb = self.encoder(padded, batch.pad_mask)

        if extras is not None:
            kernel_emb = Tensor.concat([kernel_emb, extras], axis=-1)
        return self.head(kernel_emb).reshape(nb)

    # ------------------------------------------------------------- inference
    def predict(self, batch: GraphBatch) -> np.ndarray:
        """Raw scores without recording gradients."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.forward(batch).numpy().copy()
        finally:
            self.train(was_training)

    def predict_runtimes(self, batch: GraphBatch) -> np.ndarray:
        """Absolute runtimes in seconds (fusion task: exp of log output)."""
        scores = self.predict(batch)
        return np.exp(scores.astype(np.float64))
