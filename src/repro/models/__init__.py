"""The learned performance model: configuration, architecture, training."""
from .config import (
    GNN_CHOICES,
    LOSS_CHOICES,
    PLACEMENT_CHOICES,
    REDUCTION_CHOICES,
    ModelConfig,
    TrainConfig,
)
from .model import LearnedPerformanceModel
from .serialize import (
    ModelBlobError,
    load_model,
    load_model_bytes,
    save_model,
    save_model_bytes,
    validate_model_blob,
)
from .trainer import (
    TrainResult,
    feedback_to_tile_records,
    fine_tune,
    fine_tune_on_feedback,
    predict_fusion_runtimes,
    predict_tile_scores,
    train_fusion_model,
    train_tile_model,
)

__all__ = [
    "GNN_CHOICES",
    "LOSS_CHOICES",
    "PLACEMENT_CHOICES",
    "REDUCTION_CHOICES",
    "LearnedPerformanceModel",
    "ModelBlobError",
    "ModelConfig",
    "TrainConfig",
    "TrainResult",
    "feedback_to_tile_records",
    "fine_tune",
    "fine_tune_on_feedback",
    "load_model",
    "load_model_bytes",
    "predict_fusion_runtimes",
    "predict_tile_scores",
    "save_model",
    "save_model_bytes",
    "train_fusion_model",
    "train_tile_model",
    "validate_model_blob",
]
