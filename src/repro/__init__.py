"""repro: a reproduction of "A Learned Performance Model for Tensor
Processing Units" (Kaufman & Phothilimthana et al., MLSys 2021).

Subpackages
-----------
``repro.hlo``
    Tensor-program IR (opcodes, shapes, graphs, builder).
``repro.compiler``
    Fusion pass, kernel extraction, tile enumeration, static analyses,
    list scheduling.
``repro.tpu``
    TPU v2/v3 targets, the hand-tuned analytical cost model and the
    ground-truth performance simulator.
``repro.workloads``
    The 104-program synthetic corpus and its random/manual splits.
``repro.data``
    Feature extraction and the tile-size / fusion datasets.
``repro.nn``
    Pure-NumPy autodiff and neural-network layers (GraphSAGE, GAT, LSTM,
    Transformer).
``repro.models``
    The learned performance model and its trainer.
``repro.autotuner``
    Tile-size and fusion autotuners with hardware/analytical/learned
    evaluators.
``repro.evaluation``
    Tile-Size APE, MAPE, Kendall's tau, serving metrics, and table
    rendering.
``repro.serving``
    Micro-batched cost-model inference service: model registry,
    request coalescing, replica sharding, and the service-backed
    evaluator client.

Quickstart
----------
>>> from repro.workloads import random_split
>>> from repro.data import build_tile_dataset
>>> from repro.models import train_tile_model
>>> split = random_split()
>>> dataset = build_tile_dataset(split.train[:8])
>>> result = train_tile_model(dataset.records)
"""

__version__ = "1.0.0"

from . import (
    autotuner,
    compiler,
    data,
    evaluation,
    hlo,
    models,
    nn,
    serving,
    tpu,
    workloads,
)

__all__ = [
    "__version__",
    "autotuner",
    "compiler",
    "data",
    "evaluation",
    "hlo",
    "models",
    "nn",
    "serving",
    "tpu",
    "workloads",
]
