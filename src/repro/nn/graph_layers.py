"""Graph neural-network layers: GraphSAGE and GAT.

Both operate on a *batched* graph: node features of all graphs in a batch
are stacked into one [total_nodes, dim] matrix, and adjacency is a
block-diagonal sparse matrix, so a batch is processed with two sparse
matmuls per layer regardless of graph count.

GraphSAGE follows the paper's equation:

    eps_i^k = l2(f3^k(concat(eps_i^{k-1}, sum_{j in N(i)} f2^k(eps_j^{k-1}))))

with the aggregation direction(s) selectable: the paper's 'vanilla' model
distinguishes incoming from outgoing edges (separate feedforward nets per
direction), and the 'Undirected' ablation shares them.
"""
from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .layers import Dense, Module, l2_normalize
from .sparse import normalized_adjacency, segment_softmax, segment_sum, spmm, stack_csr
from .tensor import Tensor


class GraphOperators:
    """Pre-normalized structural operators of a *single* graph.

    Normalization (neighbor-cap truncation + degree scaling) is row-local,
    so the normalized operators of individual graphs compose exactly into
    the batch-level block-diagonal operators: stacking per-graph normalized
    blocks equals normalizing the stacked raw blocks, bitwise. This is the
    invariant :class:`repro.data.batching.KernelCache` relies on.

    Attributes:
        adj_in / adj_out / adj_sym: normalized single-graph CSR operators.
        edges: [e, 2] local (src, dst) pairs of raw forward edges, in the
            CSR row-major order ``block.tocoo()`` would produce.
        num_nodes: node count of this graph.
        neighbor_cap: the truncation the operators were built with.
    """

    __slots__ = ("adj_in", "adj_out", "adj_sym", "edges", "num_nodes", "neighbor_cap")

    def __init__(self, adjacency: sp.spmatrix, neighbor_cap: int | None = 20) -> None:
        a = sp.csr_matrix(adjacency)
        self.adj_in = normalized_adjacency(a, "in", cap=neighbor_cap)
        self.adj_out = normalized_adjacency(a, "out", cap=neighbor_cap)
        self.adj_sym = normalized_adjacency(a, "both", cap=neighbor_cap)
        coo = a.tocoo()
        self.edges = np.stack([coo.row, coo.col], axis=1).astype(np.int64)
        self.num_nodes = int(a.shape[0])
        self.neighbor_cap = neighbor_cap


class GraphSAGELayer(Module):
    """One GraphSAGE hop with mean aggregation.

    Args:
        in_dim / out_dim: embedding widths.
        directed: if True, incoming and outgoing neighborhoods get separate
            aggregator networks (the paper's edge-direction ablation knob).
        l2_norm: apply the L2 normalization of the GraphSAGE equation.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        directed: bool = True,
        l2_norm: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.directed = directed
        self.l2_norm = l2_norm
        self.agg_in = Dense(in_dim, in_dim, activation="relu", rng=rng)
        self.agg_out = (
            Dense(in_dim, in_dim, activation="relu", rng=rng) if directed else None
        )
        concat_dim = in_dim * (3 if directed else 2)
        self.update = Dense(concat_dim, out_dim, activation="relu", rng=rng)

    def forward(
        self, x: Tensor, adj_in: sp.spmatrix, adj_out: sp.spmatrix
    ) -> Tensor:
        """One message-passing hop.

        Args:
            x: [n, in_dim] node embeddings.
            adj_in: normalized aggregation operator over incoming edges.
            adj_out: same for outgoing edges (used when directed; the
                undirected variant receives the symmetrized operator in
                ``adj_in`` and ignores ``adj_out``).
        """
        if self.directed:
            msg_in = spmm(adj_in, self.agg_in(x))
            msg_out = spmm(adj_out, self.agg_out(x))
            h = Tensor.concat([x, msg_in, msg_out], axis=-1)
        else:
            msg = spmm(adj_in, self.agg_in(x))
            h = Tensor.concat([x, msg], axis=-1)
        h = self.update(h)
        if self.l2_norm:
            h = l2_normalize(h, axis=-1)
        return h


class GATLayer(Module):
    """Graph attention layer with multiple heads over the edge list.

    Attention coefficients are computed per edge and normalized with a
    per-destination segment softmax, then used to weight source features.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        heads: int = 2,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if out_dim % heads != 0:
            raise ValueError(f"out_dim {out_dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.heads = heads
        self.head_dim = out_dim // heads
        self.proj = Dense(in_dim, out_dim, rng=rng)
        self.attn_src = Dense(in_dim, heads, rng=rng)
        self.attn_dst = Dense(in_dim, heads, rng=rng)

    def forward(self, x: Tensor, edges: np.ndarray, num_nodes: int) -> Tensor:
        """One attention hop.

        Args:
            x: [n, in_dim] node embeddings.
            edges: [e, 2] int array of (src, dst) pairs (both directions
                should be present for undirected attention).
            num_nodes: n.

        Returns:
            [n, out_dim] embeddings (heads concatenated).
        """
        if len(edges) == 0:
            return self.proj(x).relu()
        src, dst = edges[:, 0], edges[:, 1]
        h = self.proj(x)  # [n, heads*hd]
        a_src = self.attn_src(x)  # [n, heads]
        a_dst = self.attn_dst(x)
        scores = a_src.take_rows(src) + a_dst.take_rows(dst)  # [e, heads]
        # LeakyReLU(0.2) as in the GAT paper.
        scores = scores.maximum(scores * 0.2)
        alpha = segment_softmax(scores, dst, num_nodes)  # [e, heads]
        src_h = h.take_rows(src).reshape(len(edges), self.heads, self.head_dim)
        weighted = src_h * alpha.reshape(len(edges), self.heads, 1)
        agg = segment_sum(
            weighted.reshape(len(edges), self.heads * self.head_dim), dst, num_nodes
        )
        return agg.relu()


class BatchedGraphContext:
    """Precomputed structural operators for a batch of graphs.

    Attributes:
        adj_in: block-diagonal normalized in-neighborhood operator.
        adj_out: same over outgoing edges.
        adj_sym: symmetrized operator (undirected ablation).
        edges: [e, 2] global-index edge list (src, dst), both directions
            included for GAT.
        graph_ids: [n] graph index of each node.
        num_graphs: batch size.
    """

    def __init__(
        self,
        adjacencies: list[sp.spmatrix],
        neighbor_cap: int | None = 20,
    ) -> None:
        if not adjacencies:
            raise ValueError("empty batch")
        block = sp.block_diag([a.tocsr() for a in adjacencies], format="csr")
        self.adj_in = normalized_adjacency(block, "in", cap=neighbor_cap)
        self.adj_out = normalized_adjacency(block, "out", cap=neighbor_cap)
        self.adj_sym = normalized_adjacency(block, "both", cap=neighbor_cap)
        coo = block.tocoo()
        fwd = np.stack([coo.row, coo.col], axis=1)
        rev = fwd[:, ::-1]
        self.edges = np.concatenate([fwd, rev], axis=0).astype(np.int64)
        sizes = [a.shape[0] for a in adjacencies]
        self.graph_ids = np.repeat(np.arange(len(sizes)), sizes)
        self.num_graphs = len(sizes)
        self.num_nodes = int(block.shape[0])
        self.sizes = sizes

    @classmethod
    def compose(cls, operators: list[GraphOperators]) -> "BatchedGraphContext":
        """Compose pre-normalized single-graph operators into a batch context.

        Zero-copy fast path: no ``sp.block_diag`` and no re-normalization —
        the batch operators are stacked from the per-graph normalized CSR
        blocks by direct ``indptr``/``indices`` arithmetic (normalization is
        row-local, so the result is bitwise-identical to normalizing the
        full block-diagonal matrix). The same :class:`GraphOperators` object
        may appear several times (e.g. one kernel scored under many tiles).
        """
        if not operators:
            raise ValueError("empty batch")
        ctx = cls.__new__(cls)
        ctx.adj_in = stack_csr([op.adj_in for op in operators])
        ctx.adj_out = stack_csr([op.adj_out for op in operators])
        ctx.adj_sym = stack_csr([op.adj_sym for op in operators])
        sizes = [op.num_nodes for op in operators]
        offsets = np.cumsum([0] + sizes[:-1])
        fwd = np.concatenate(
            [op.edges + off for op, off in zip(operators, offsets)], axis=0
        )
        rev = fwd[:, ::-1]
        ctx.edges = np.concatenate([fwd, rev], axis=0).astype(np.int64)
        ctx.graph_ids = np.repeat(np.arange(len(sizes)), sizes)
        ctx.num_graphs = len(sizes)
        ctx.num_nodes = int(sum(sizes))
        ctx.sizes = sizes
        return ctx
