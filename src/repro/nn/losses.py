"""Training objectives (paper Sec. 3.3).

Tile-size task: pairwise rank loss over samples of the same kernel

    L = sum_ij phi(y'_i - y'_j) * pos(y_i - y_j) / (n (n-1) / 2)

with phi either hinge ``(1 - z)+`` or logistic ``log(1 + exp(-z))``.

Fusion task: squared error on log-transformed runtimes (targets span
nanoseconds to a second, hence the log).
"""
from __future__ import annotations

import numpy as np

from .tensor import Tensor


def log_mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error with log-transformed targets.

    Args:
        pred: [n] model outputs interpreted as log-runtimes.
        target: [n] true runtimes in seconds (positive).
    """
    logt = Tensor(np.log(np.maximum(np.asarray(target, dtype=np.float64), 1e-12)))
    diff = pred - logt
    return (diff * diff).mean()


def pairwise_rank_loss(
    pred: Tensor,
    target: np.ndarray,
    group_ids: np.ndarray,
    phi: str = "hinge",
) -> Tensor:
    """Pairwise rank loss within groups (kernels).

    Only pairs from the same group are compared — the tile-size model ranks
    tile sizes *within* a kernel and never across kernels (paper Sec. 6.1).

    Args:
        pred: [n] predicted scores.
        target: [n] true runtimes.
        group_ids: [n] kernel id per sample; pairs with differing ids are
            excluded.
        phi: "hinge" or "logistic".

    Returns:
        Scalar loss, averaged over the number of ordered pairs considered.
    """
    target = np.asarray(target)
    group_ids = np.asarray(group_ids)
    n = len(target)
    # pos(y_i - y_j): sample i is truly slower than j.
    pos = (target[:, None] - target[None, :]) > 0
    same = group_ids[:, None] == group_ids[None, :]
    pair_mask = (pos & same).astype(np.float32)
    num_pairs = float(pair_mask.sum())
    if num_pairs == 0:
        return (pred * 0.0).sum()
    diff = pred.reshape(n, 1) - pred.reshape(1, n)  # y'_i - y'_j
    if phi == "hinge":
        margin = (1.0 - diff).relu()
    elif phi == "logistic":
        # log(1 + e^{-z}) computed stably as relu(-z) + log(1 + e^{-|z|}).
        nz = -diff
        margin = nz.maximum(0.0) + ((diff.abs() * -1.0).exp() + 1.0).log()
    else:
        raise ValueError(f"unknown phi {phi!r}")
    return (margin * Tensor(pair_mask)).sum() * (1.0 / num_pairs)
