"""From-scratch NumPy neural-network framework (autodiff, layers, optim)."""
from .attention import MultiHeadAttention, TransformerEncoder, TransformerEncoderLayer
from .graph_layers import BatchedGraphContext, GATLayer, GraphSAGELayer
from .layers import (
    MLP,
    Dense,
    Dropout,
    Embedding,
    LayerNorm,
    Module,
    glorot,
    l2_normalize,
)
from .losses import log_mse_loss, pairwise_rank_loss
from .optim import Adam, Optimizer, SGD, clip_global_norm
from .rnn import LSTM, LSTMCell
from .sparse import normalized_adjacency, segment_softmax, segment_sum, spmm
from .tensor import Tensor, no_grad, ones, zeros

__all__ = [
    "MLP",
    "Adam",
    "BatchedGraphContext",
    "Dense",
    "Dropout",
    "Embedding",
    "GATLayer",
    "GraphSAGELayer",
    "LSTM",
    "LSTMCell",
    "LayerNorm",
    "Module",
    "MultiHeadAttention",
    "Optimizer",
    "SGD",
    "Tensor",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "clip_global_norm",
    "glorot",
    "l2_normalize",
    "log_mse_loss",
    "no_grad",
    "normalized_adjacency",
    "ones",
    "pairwise_rank_loss",
    "segment_softmax",
    "segment_sum",
    "spmm",
    "zeros",
]
