"""Sparse adjacency support for graph neural networks.

Batched GNN layers multiply node-feature matrices by (block-diagonal)
adjacency matrices. Those matrices are constants of a batch — they carry no
gradient — so they are kept as ``scipy.sparse`` CSR matrices and wrapped in
a differentiable ``spmm`` whose backward multiplies by the transpose.
"""
from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Differentiable ``matrix @ x`` for a constant sparse ``matrix``.

    Args:
        matrix: [m, n] scipy sparse matrix (no gradient).
        x: [n, d] dense tensor.

    Returns:
        [m, d] tensor; gradient w.r.t. ``x`` is ``matrix.T @ grad``.
    """
    csr = matrix.tocsr()
    out = csr @ x.data
    csr_t = csr.T.tocsr()

    def backward(g: np.ndarray):
        return (csr_t @ g,)

    return x._make(np.asarray(out, dtype=np.float32), (x,), backward)


def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``x`` into ``num_segments`` buckets.

    Args:
        x: [n, d] values.
        segment_ids: [n] bucket index per row.
        num_segments: number of output rows.

    Returns:
        [num_segments, d]; gradient gathers back per row.
    """
    ids = np.asarray(segment_ids)
    out = np.zeros((num_segments,) + x.data.shape[1:], dtype=np.float32)
    np.add.at(out, ids, x.data)

    def backward(g: np.ndarray):
        return (g[ids],)

    return x._make(out, (x,), backward)


def segment_softmax(scores: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Softmax over variable-size segments (per-destination attention).

    Args:
        scores: [n] or [n, h] per-edge scores.
        segment_ids: [n] destination node of each edge.
        num_segments: node count.

    Returns:
        Normalized weights with the same shape as ``scores``.
    """
    ids = np.asarray(segment_ids)
    data = scores.data
    # Stabilize per segment.
    seg_max = np.full((num_segments,) + data.shape[1:], -np.inf, dtype=np.float32)
    np.maximum.at(seg_max, ids, data)
    shifted = data - seg_max[ids]
    e = np.exp(shifted)
    denom = np.zeros((num_segments,) + data.shape[1:], dtype=np.float32)
    np.add.at(denom, ids, e)
    out = e / np.maximum(denom[ids], 1e-30)

    def backward(g: np.ndarray):
        # d softmax: out * (g - sum_seg(g * out)).
        dot = np.zeros((num_segments,) + data.shape[1:], dtype=np.float32)
        np.add.at(dot, ids, g * out)
        return (out * (g - dot[ids]),)

    return scores._make(out, (scores,), backward)


def stack_csr(blocks: list[sp.csr_matrix]) -> sp.csr_matrix:
    """Block-diagonal stack of CSR matrices by direct index arithmetic.

    Equivalent to ``sp.block_diag(blocks, format="csr")`` but built from the
    blocks' ``data``/``indices``/``indptr`` arrays directly, with no
    intermediate COO conversion. Each block's per-row stored entry order is
    preserved verbatim (scipy products such as ``normalized_adjacency``'s
    ``d @ m`` emit *unsorted* per-row layouts — the flag is left for scipy
    to determine), so downstream ``@`` products traverse entries in the
    same order as the ``block_diag``-then-normalize path and produce
    bitwise-identical results. The result never aliases a block's arrays:
    callers may mutate it without corrupting cached inputs.
    """
    if not blocks:
        raise ValueError("stack_csr needs at least one block")
    if len(blocks) == 1:
        return blocks[0].copy()
    n_rows = sum(b.shape[0] for b in blocks)
    n_cols = sum(b.shape[1] for b in blocks)
    data = np.concatenate([b.data for b in blocks])
    col_offsets = np.cumsum([0] + [b.shape[1] for b in blocks[:-1]])
    indices = np.concatenate(
        [b.indices + off for b, off in zip(blocks, col_offsets)]
    )
    nnz_offsets = np.cumsum([0] + [b.nnz for b in blocks[:-1]])
    indptr = np.concatenate(
        [np.asarray([0], dtype=np.int64)]
        + [b.indptr[1:].astype(np.int64) + off for b, off in zip(blocks, nnz_offsets)]
    )
    return sp.csr_matrix((data, indices, indptr), shape=(n_rows, n_cols))


def normalized_adjacency(
    adjacency: sp.spmatrix, direction: str = "in", cap: int | None = 20
) -> sp.csr_matrix:
    """Mean-aggregation operator from a 0/1 adjacency matrix.

    Args:
        adjacency: [n, n] with ``A[i, j] = 1`` iff edge i -> j.
        direction: "in" aggregates from operands (incoming edges), "out"
            from users (outgoing edges), "both" from the union.
        cap: maximum neighbors per node (the paper truncates neighbor lists
            at 20); degree normalization uses the capped degree.

    Returns:
        CSR matrix ``M`` with ``(M @ H)[i]`` = mean over i's neighbors of H.
    """
    a = adjacency.tocsr().astype(np.float32)
    if direction == "in":
        m = a.T.tocsr()
    elif direction == "out":
        m = a
    elif direction == "both":
        m = (a + a.T).tocsr()
        m.data = np.minimum(m.data, 1.0)
    else:
        raise ValueError(f"unknown direction {direction!r}")
    m = m.tolil()
    if cap is not None:
        for i, row in enumerate(m.rows):
            if len(row) > cap:
                keep = row[:cap]  # deterministic truncation (paper App. B)
                vals = [1.0] * cap
                m.rows[i] = keep
                m.data[i] = vals
    m = m.tocsr()
    deg = np.asarray(m.sum(axis=1)).reshape(-1)
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1.0), 0.0)
    d = sp.diags(inv.astype(np.float32))
    return (d @ m).tocsr()
