"""Optimizers: SGD and Adam with learning-rate decay and gradient clipping.

The paper's training hyperparameters (App. B) include a learning rate, an
exponential learning-rate decay, an optional gradient-norm clip, and
dropout; the optimizer surface here mirrors those knobs.
"""
from __future__ import annotations

import numpy as np

from .tensor import Tensor


def clip_global_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns:
        The pre-clip global norm.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Tensor], lr: float, decay: float = 1.0, decay_every: int = 1000) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.base_lr = lr
        self.decay = decay
        self.decay_every = decay_every
        self.step_count = 0

    @property
    def lr(self) -> float:
        """Current learning rate after exponential decay."""
        return self.base_lr * self.decay ** (self.step_count // self.decay_every)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params, lr: float, momentum: float = 0.0, **kwargs) -> None:
        super().__init__(params, lr, **kwargs)
        self.momentum = momentum
        self.velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        lr = self.lr
        for p, v in zip(self.params, self.velocity):
            if p.grad is None:
                continue
            if self.momentum > 0:
                v *= self.momentum
                v += p.grad
                p.data = p.data - lr * v
            else:
                p.data = p.data - lr * p.grad
        self.step_count += 1


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        **kwargs,
    ) -> None:
        super().__init__(params, lr, **kwargs)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.step_count += 1
        t = self.step_count
        lr = self.lr
        b1, b2 = self.beta1, self.beta2
        correction = np.sqrt(1.0 - b2**t) / (1.0 - b1**t)
        for p, m, v in zip(self.params, self.m, self.v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            p.data = p.data - lr * correction * m / (np.sqrt(v) + self.eps)
