"""Neural-network modules: parameter containers and core layers."""
from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from .tensor import Tensor


class Module:
    """Base class: tracks parameters and sub-modules for optimizers/serialization."""

    def __init__(self) -> None:
        self._params: dict[str, Tensor] = {}
        self._modules: dict[str, Module] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_params", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        elif isinstance(value, (list, tuple)) and value and all(
            isinstance(v, Module) for v in value
        ):
            for i, v in enumerate(value):
                self.__dict__.setdefault("_modules", {})[f"{name}.{i}"] = v
        object.__setattr__(self, name, value)

    def parameters(self) -> list[Tensor]:
        """All trainable parameters, depth-first, deterministic order."""
        out = list(self._params.values())
        for m in self._modules.values():
            out.extend(m.parameters())
        return out

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Tensor]]:
        """(dotted name, parameter) pairs in :meth:`parameters` order."""
        out = [(f"{prefix}{k}", v) for k, v in self._params.items()]
        for name, m in self._modules.items():
            out.extend(m.named_parameters(prefix=f"{prefix}{name}."))
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Name -> array snapshot of all parameters."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict`.

        Raises:
            KeyError: if a parameter is missing from ``state``.
            ValueError: on shape mismatch.
        """
        for name, p in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            arr = np.asarray(state[name], dtype=np.float32)
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {arr.shape} vs {p.data.shape}"
                )
            p.data = arr.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def glorot(rng: np.random.Generator, fan_in: int, fan_out: int, shape=None) -> Tensor:
    """Glorot/Xavier-uniform initialized parameter."""
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    shape = shape or (fan_in, fan_out)
    return Tensor(rng.uniform(-limit, limit, size=shape), requires_grad=True)


class Dense(Module):
    """Affine layer ``x @ W + b`` with optional activation.

    Args:
        in_features / out_features: matrix dimensions.
        activation: None, "relu", "tanh" or "sigmoid".
        bias: include a bias vector (paper App. B uses no per-layer biases
            in the fixed hyperparameters; the default follows that).
        rng: parameter-initialization generator.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str | None = None,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = glorot(rng, in_features, out_features)
        self.bias = (
            Tensor(np.zeros(out_features, dtype=np.float32), requires_grad=True)
            if bias
            else None
        )
        if activation not in (None, "relu", "tanh", "sigmoid"):
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        y = x @ self.weight
        if self.bias is not None:
            y = y + self.bias
        if self.activation == "relu":
            y = y.relu()
        elif self.activation == "tanh":
            y = y.tanh()
        elif self.activation == "sigmoid":
            y = y.sigmoid()
        return y


class MLP(Module):
    """Stack of :class:`Dense` layers with ReLU between hidden layers.

    Args:
        widths: [in, hidden..., out] layer widths.
        final_activation: activation after the last layer (None = linear).
    """

    def __init__(
        self,
        widths: list[int],
        final_activation: str | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        layers = []
        for i in range(len(widths) - 1):
            act = "relu" if i < len(widths) - 2 else final_activation
            layers.append(Dense(widths[i], widths[i + 1], activation=act, rng=rng))
        self.layers = layers

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used for the opcode embedding (paper: opcode ids are mapped to a
    256-dimensional embedding vector learned jointly).
    """

    def __init__(
        self, num_embeddings: int, dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / math.sqrt(dim)
        self.table = Tensor(
            rng.normal(0.0, scale, size=(num_embeddings, dim)), requires_grad=True
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.table.take_rows(np.asarray(ids, dtype=np.int64))


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gain = Tensor(np.ones(dim, dtype=np.float32), requires_grad=True)
        self.shift = Tensor(np.zeros(dim, dtype=np.float32), requires_grad=True)
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        inv = (var + self.eps) ** -0.5
        return centered * inv * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate {rate} outside [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """L2-normalize along an axis (GraphSAGE's per-layer normalization)."""
    sq = (x * x).sum(axis=axis, keepdims=True)
    return x * ((sq + eps) ** -0.5)
