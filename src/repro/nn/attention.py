"""Multi-head attention and Transformer encoder (paper's global reduction)."""
from __future__ import annotations

import math

import numpy as np

from .layers import Dense, Dropout, LayerNorm, Module
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Masked multi-head self-attention.

    Args:
        dim: model width (split across heads).
        heads: attention head count (paper App. B fixes 4).
    """

    def __init__(self, dim: int, heads: int = 4, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.heads = heads
        self.head_dim = dim // heads
        self.wq = Dense(dim, dim, rng=rng)
        self.wk = Dense(dim, dim, rng=rng)
        self.wv = Dense(dim, dim, rng=rng)
        self.wo = Dense(dim, dim, rng=rng)

    def _split(self, x: Tensor, batch: int, time: int) -> Tensor:
        # [b, t, d] -> [b, h, t, hd]
        return x.reshape(batch, time, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Attend over padded node sequences.

        Args:
            x: [batch, time, dim].
            mask: [batch, time] boolean validity mask.
        """
        batch, time, _ = x.shape
        q = self._split(self.wq(x), batch, time)
        k = self._split(self.wk(x), batch, time)
        v = self._split(self.wv(x), batch, time)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        attn_mask = mask[:, None, None, :] & mask[:, None, :, None]
        attn = scores.softmax(axis=-1, mask=np.broadcast_to(attn_mask, scores.shape))
        ctx = attn @ v  # [b, h, t, hd]
        merged = ctx.transpose(0, 2, 1, 3).reshape(batch, time, self.dim)
        return self.wo(merged)


class TransformerEncoderLayer(Module):
    """Pre-norm Transformer encoder block."""

    def __init__(
        self,
        dim: int,
        heads: int = 4,
        ff_multiplier: int = 2,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, heads, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.ff1 = Dense(dim, dim * ff_multiplier, activation="relu", rng=rng)
        self.ff2 = Dense(dim * ff_multiplier, dim, rng=rng)
        self.drop = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        x = x + self.drop(self.attn(self.norm1(x), mask))
        return x + self.drop(self.ff2(self.ff1(self.norm2(x))))


class TransformerEncoder(Module):
    """Stack of encoder layers + masked-sum pooling.

    The paper's Transformer reduction applies an encoder to node embeddings
    and reduces with a sum (App. B: "Transformer reduction: sum"). A final
    LayerNorm stabilizes the pooled embedding — the raw sum's magnitude
    scales with the kernel's node count (1..~64 here), which otherwise
    dominates the prediction head's early training.
    """

    def __init__(
        self,
        dim: int,
        layers: int = 1,
        heads: int = 4,
        dropout: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.blocks = [
            TransformerEncoderLayer(dim, heads, dropout=dropout, rng=rng)
            for _ in range(layers)
        ]
        self.final_norm = LayerNorm(dim)

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Encode and pool: [batch, time, dim] -> [batch, dim]."""
        for block in self.blocks:
            x = block(x, mask)
        m = Tensor(mask[:, :, None].astype(np.float32))
        return self.final_norm((x * m).sum(axis=1))
