"""Reverse-mode automatic differentiation over NumPy arrays.

A :class:`Tensor` wraps an ``np.ndarray`` and records the operations applied
to it on a tape (the ``_parents`` / ``_backward`` fields); calling
:meth:`Tensor.backward` propagates gradients to every tensor with
``requires_grad=True``. The op set is exactly what the paper's models need:
dense algebra, elementwise nonlinearities, reductions, indexing/gather,
concatenation and masked softmax.

Broadcasting follows NumPy; gradients are un-broadcast by summing over the
broadcast axes.
"""
from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

# Thread-local so a serving thread running inference under no_grad() never
# turns off tape recording for a training loop on another thread (the
# train-while-serving flow of the hot-swap workflow).
_grad_state = threading.local()


def _grad_enabled() -> bool:
    return getattr(_grad_state, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference / evaluation).

    The flag is per-thread: disabling gradients on one thread leaves
    concurrent training on other threads unaffected.
    """
    prev = _grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were size-1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A differentiable array.

    Args:
        data: array or nested sequence; converted to float32 unless already
            an integer array (integer tensors are index carriers and never
            require gradients).
        requires_grad: whether to accumulate gradients into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")
    __array_priority__ = 100  # so np scalars defer to Tensor dunders

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.integer):
            arr = arr.astype(np.float32, copy=False)
        self.data: np.ndarray = arr
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------- plumbing
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Python scalar from a 1-element tensor."""
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if _grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float32), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------- backward
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: incoming gradient; defaults to ones (scalar outputs).
        """
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float32)
        # Topological order over the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float32)}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                node._accumulate(g)
                continue
            node._dispatch(g, grads)

    def _dispatch(self, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward fn, routing parent grads into ``grads``."""
        contributions = self._backward(grad)  # type: ignore[misc]
        for parent, contrib in zip(self._parents, contributions):
            if contrib is None or not parent.requires_grad:
                continue
            contrib = _unbroadcast(
                np.asarray(contrib, dtype=np.float32), parent.data.shape
            )
            if parent._backward is None:
                # Leaf: accumulate into .grad immediately.
                parent._accumulate(contrib)
                # Also allow multiple paths through the same leaf.
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contrib
            else:
                grads[key] = contrib

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data
        return self._make(out_data, (self, other), lambda g: (g, g))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)
        return self._make(self.data - other.data, (self, other), lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        a, b = self.data, other.data
        return self._make(a * b, (self, other), lambda g: (g * b, g * a))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        a, b = self.data, other.data
        return self._make(
            a / b, (self, other), lambda g: (g / b, -g * a / (b * b))
        )

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        a = self.data
        out = a**exponent
        return self._make(out, (self,), lambda g: (g * exponent * a ** (exponent - 1),))

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        a, b = self.data, other.data
        out = a @ b

        def backward(g: np.ndarray):
            if b.ndim == 1:
                ga = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                gb = a.T @ g if a.ndim == 2 else (a * g[..., None]).sum(0)
            elif a.ndim == 1:
                ga = g @ b.T if b.ndim == 2 else None
                gb = np.outer(a, g)
            else:
                ga = g @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ g
            return ga, gb

        return self._make(out, (self, other), backward)

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return self._make(out, (self,), lambda g: (g * out,))

    def log(self) -> "Tensor":
        a = self.data
        return self._make(np.log(a), (self,), lambda g: (g / a,))

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return self._make(out, (self,), lambda g: (g * (1.0 - out * out),))

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))
        return self._make(out, (self,), lambda g: (g * out * (1.0 - out),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return self._make(
            np.where(mask, self.data, 0.0), (self,), lambda g: (g * mask,)
        )

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return self._make(out, (self,), lambda g: (g * 0.5 / out,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return self._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)
        return self._make(
            np.clip(self.data, lo, hi), (self,), lambda g: (g * mask,)
        )

    def maximum(self, other) -> "Tensor":
        other = self._lift(other)
        a, b = self.data, other.data
        mask = a >= b
        return self._make(
            np.maximum(a, b), (self, other), lambda g: (g * mask, g * ~mask)
        )

    # ------------------------------------------------------------ reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def backward(g: np.ndarray):
            if axis is None:
                return (np.broadcast_to(g, shape).astype(np.float32),)
            gg = g
            if not keepdims:
                gg = np.expand_dims(g, axis)
            return (np.broadcast_to(gg, shape).astype(np.float32),)

        return self._make(out, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray):
            expanded = out if keepdims else np.expand_dims(out, axis)
            gg = g if keepdims else np.expand_dims(g, axis)
            mask = self.data == expanded
            # Split gradient among ties.
            counts = mask.sum(axis=axis, keepdims=True)
            return (gg * mask / counts,)

        return self._make(out, (self,), backward)

    # ------------------------------------------------------------- reshaping
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        orig = self.data.shape
        return self._make(
            self.data.reshape(shape), (self,), lambda g: (g.reshape(orig),)
        )

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(range(self.ndim))[::-1]
        inv = np.argsort(axes)
        return self._make(
            self.data.transpose(axes), (self,), lambda g: (g.transpose(inv),)
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, key) -> "Tensor":
        out = self.data[key]
        shape = self.data.shape

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=np.float32)
            np.add.at(full, key, g)
            return (full,)

        return self._make(out, (self,), backward)

    # --------------------------------------------------------- constructions
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        datas = [t.data for t in tensors]
        out = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]
        splits = np.cumsum(sizes)[:-1]

        def backward(g: np.ndarray):
            return tuple(np.split(g, splits, axis=axis))

        proto = tensors[0]
        return proto._make(out, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._lift(t) for t in tensors]
        out = np.stack([t.data for t in tensors], axis=axis)

        def backward(g: np.ndarray):
            slices = np.moveaxis(g, axis, 0)
            return tuple(slices[i] for i in range(len(tensors)))

        return tensors[0]._make(out, tuple(tensors), backward)

    # ------------------------------------------------------------- indexing
    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows (axis 0); gradient scatter-adds back (embeddings)."""
        idx = np.asarray(indices)
        out = self.data[idx]
        shape = self.data.shape

        def backward(g: np.ndarray):
            full = np.zeros(shape, dtype=np.float32)
            np.add.at(full, idx, g)
            return (full,)

        return self._make(out, (self,), backward)

    # -------------------------------------------------------------- softmax
    def softmax(self, axis: int = -1, mask: np.ndarray | None = None) -> "Tensor":
        """Softmax along ``axis``; positions where ``mask`` is False get 0."""
        x = self.data
        if mask is not None:
            x = np.where(mask, x, -1e30)
        x = x - x.max(axis=axis, keepdims=True)
        e = np.exp(x)
        if mask is not None:
            e = np.where(mask, e, 0.0)
        denom = e.sum(axis=axis, keepdims=True)
        out = e / np.maximum(denom, 1e-30)

        def backward(g: np.ndarray):
            dot = (g * out).sum(axis=axis, keepdims=True)
            return (out * (g - dot),)

        return self._make(out, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        x = self.data - self.data.max(axis=axis, keepdims=True)
        lse = np.log(np.exp(x).sum(axis=axis, keepdims=True))
        out = x - lse
        soft = np.exp(out)

        def backward(g: np.ndarray):
            return (g - soft * g.sum(axis=axis, keepdims=True),)

        return self._make(out, (self,), backward)


def zeros(shape: tuple[int, ...], requires_grad: bool = False) -> Tensor:
    """All-zeros tensor."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape: tuple[int, ...], requires_grad: bool = False) -> Tensor:
    """All-ones tensor."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)
