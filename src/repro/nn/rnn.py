"""LSTM sequence modules (kernel-embedding reduction option 2 in the paper)."""
from __future__ import annotations

import numpy as np

from .layers import Dense, Module
from .tensor import Tensor


class LSTMCell(Module):
    """Single LSTM step with fused gate projection."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.hidden_dim = hidden_dim
        self.gates = Dense(input_dim + hidden_dim, 4 * hidden_dim, rng=rng)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        z = self.gates(Tensor.concat([x, h], axis=-1))
        hd = self.hidden_dim
        i = z[:, 0 * hd : 1 * hd].sigmoid()
        f = (z[:, 1 * hd : 2 * hd] + 1.0).sigmoid()  # forget-gate bias of 1
        g = z[:, 2 * hd : 3 * hd].tanh()
        o = z[:, 3 * hd : 4 * hd].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Batched LSTM over padded sequences, returning the final state.

    The paper's LSTM reduction runs over topologically sorted node
    embeddings and keeps the final state as the kernel embedding; sequences
    in a batch have different lengths, so a boolean mask freezes (h, c)
    after each sequence's end.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: Tensor, mask: np.ndarray) -> Tensor:
        """Run over a padded batch.

        Args:
            x: [batch, time, dim] padded inputs.
            mask: [batch, time] boolean; True where a real element exists.

        Returns:
            [batch, hidden] final hidden state of each sequence.
        """
        batch, time, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_dim), dtype=np.float32))
        c = Tensor(np.zeros((batch, self.hidden_dim), dtype=np.float32))
        for t in range(time):
            xt = x[:, t, :]
            h_new, c_new = self.cell(xt, h, c)
            step = Tensor(mask[:, t : t + 1].astype(np.float32))
            h = h_new * step + h * (1.0 - step)
            c = c_new * step + c * (1.0 - step)
        return h
