"""Primitive tensor-operation opcodes and their static metadata.

This mirrors the XLA HLO instruction set at the granularity the paper uses:
a node in a computation graph is one primitive tensor operation, identified
by an integer-valued opcode (the first node feature fed to the model).

Each opcode carries metadata used by the compiler substrate and the static
analyses: arity class, whether it is elementwise, the number of floating
point operations per output element, and whether it executes on the special
transcendental functional unit (static performance feature #4 in the paper).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpCategory(enum.Enum):
    """Coarse functional grouping used by fusion heuristics and scheduling."""

    PARAMETER = "parameter"
    CONSTANT = "constant"
    ELEMENTWISE = "elementwise"
    DATA_MOVEMENT = "data_movement"
    REDUCTION = "reduction"
    CONTRACTION = "contraction"  # dot / convolution: runs on the MXU
    SCATTER_GATHER = "scatter_gather"


class Opcode(enum.IntEnum):
    """Integer opcode for every supported primitive operation.

    The integer values are stable; they are used directly as the categorical
    opcode feature of graph nodes (and embedded by the learned model).
    """

    PARAMETER = 0
    CONSTANT = 1
    IOTA = 2

    # Elementwise unary.
    NEGATE = 10
    ABS = 11
    SIGN = 12
    EXP = 13
    LOG = 14
    TANH = 15
    SQRT = 16
    RSQRT = 17
    LOGISTIC = 18
    FLOOR = 19
    CEIL = 20
    COS = 21
    SIN = 22
    NOT = 23
    CONVERT = 24

    # Elementwise binary.
    ADD = 30
    SUBTRACT = 31
    MULTIPLY = 32
    DIVIDE = 33
    MAXIMUM = 34
    MINIMUM = 35
    POWER = 36
    REMAINDER = 37
    COMPARE = 38
    AND = 39
    OR = 40

    # Elementwise ternary.
    SELECT = 50
    CLAMP = 51

    # Data movement / shaping.
    BROADCAST = 60
    RESHAPE = 61
    TRANSPOSE = 62
    SLICE = 63
    CONCATENATE = 64
    PAD = 65
    REVERSE = 66
    DYNAMIC_SLICE = 67
    DYNAMIC_UPDATE_SLICE = 68
    COPY = 69

    # Reductions and windows.
    REDUCE = 80
    REDUCE_WINDOW = 81
    ARGMAX = 82
    SOFTMAX_XENT = 83  # fused softmax-cross-entropy primitive (loss heads)

    # Contractions (MXU ops).
    DOT = 90
    CONVOLUTION = 91

    # Gather/scatter (embedding lookups etc.).
    GATHER = 100
    SCATTER = 101

    # Fusion wrapper: produced by the fusion pass, never by builders.
    FUSION = 120


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata describing one opcode.

    Attributes:
        category: coarse functional grouping.
        arity: number of operands; ``-1`` means variadic.
        flops_per_element: floating point operations per *output* element
            (contractions compute FLOPs from their own attributes instead).
        transcendental: whether the op occupies the special function unit.
        fusible: whether the fusion pass may place this op inside a kernel.
    """

    category: OpCategory
    arity: int
    flops_per_element: float = 0.0
    transcendental: bool = False
    fusible: bool = True


_E = OpCategory.ELEMENTWISE
_D = OpCategory.DATA_MOVEMENT
_R = OpCategory.REDUCTION
_C = OpCategory.CONTRACTION

OPCODE_INFO: dict[Opcode, OpcodeInfo] = {
    Opcode.PARAMETER: OpcodeInfo(OpCategory.PARAMETER, 0, fusible=False),
    Opcode.CONSTANT: OpcodeInfo(OpCategory.CONSTANT, 0),
    Opcode.IOTA: OpcodeInfo(OpCategory.CONSTANT, 0),
    Opcode.NEGATE: OpcodeInfo(_E, 1, 1.0),
    Opcode.ABS: OpcodeInfo(_E, 1, 1.0),
    Opcode.SIGN: OpcodeInfo(_E, 1, 1.0),
    Opcode.EXP: OpcodeInfo(_E, 1, 8.0, transcendental=True),
    Opcode.LOG: OpcodeInfo(_E, 1, 8.0, transcendental=True),
    Opcode.TANH: OpcodeInfo(_E, 1, 12.0, transcendental=True),
    Opcode.SQRT: OpcodeInfo(_E, 1, 6.0, transcendental=True),
    Opcode.RSQRT: OpcodeInfo(_E, 1, 6.0, transcendental=True),
    Opcode.LOGISTIC: OpcodeInfo(_E, 1, 10.0, transcendental=True),
    Opcode.FLOOR: OpcodeInfo(_E, 1, 1.0),
    Opcode.CEIL: OpcodeInfo(_E, 1, 1.0),
    Opcode.COS: OpcodeInfo(_E, 1, 10.0, transcendental=True),
    Opcode.SIN: OpcodeInfo(_E, 1, 10.0, transcendental=True),
    Opcode.NOT: OpcodeInfo(_E, 1, 1.0),
    Opcode.CONVERT: OpcodeInfo(_E, 1, 1.0),
    Opcode.ADD: OpcodeInfo(_E, 2, 1.0),
    Opcode.SUBTRACT: OpcodeInfo(_E, 2, 1.0),
    Opcode.MULTIPLY: OpcodeInfo(_E, 2, 1.0),
    Opcode.DIVIDE: OpcodeInfo(_E, 2, 4.0, transcendental=True),
    Opcode.MAXIMUM: OpcodeInfo(_E, 2, 1.0),
    Opcode.MINIMUM: OpcodeInfo(_E, 2, 1.0),
    Opcode.POWER: OpcodeInfo(_E, 2, 12.0, transcendental=True),
    Opcode.REMAINDER: OpcodeInfo(_E, 2, 4.0),
    Opcode.COMPARE: OpcodeInfo(_E, 2, 1.0),
    Opcode.AND: OpcodeInfo(_E, 2, 1.0),
    Opcode.OR: OpcodeInfo(_E, 2, 1.0),
    Opcode.SELECT: OpcodeInfo(_E, 3, 1.0),
    Opcode.CLAMP: OpcodeInfo(_E, 3, 2.0),
    Opcode.BROADCAST: OpcodeInfo(_D, 1),
    Opcode.RESHAPE: OpcodeInfo(_D, 1),
    Opcode.TRANSPOSE: OpcodeInfo(_D, 1),
    Opcode.SLICE: OpcodeInfo(_D, 1),
    Opcode.CONCATENATE: OpcodeInfo(_D, -1),
    Opcode.PAD: OpcodeInfo(_D, 2),
    Opcode.REVERSE: OpcodeInfo(_D, 1),
    Opcode.DYNAMIC_SLICE: OpcodeInfo(_D, 2),
    Opcode.DYNAMIC_UPDATE_SLICE: OpcodeInfo(_D, 3),
    Opcode.COPY: OpcodeInfo(_D, 1),
    Opcode.REDUCE: OpcodeInfo(_R, 1, 1.0),
    Opcode.REDUCE_WINDOW: OpcodeInfo(_R, 1, 1.0),
    Opcode.ARGMAX: OpcodeInfo(_R, 1, 1.0),
    Opcode.SOFTMAX_XENT: OpcodeInfo(_R, 2, 10.0, transcendental=True),
    Opcode.DOT: OpcodeInfo(_C, 2),
    Opcode.CONVOLUTION: OpcodeInfo(_C, 2),
    Opcode.GATHER: OpcodeInfo(OpCategory.SCATTER_GATHER, 2),
    Opcode.SCATTER: OpcodeInfo(OpCategory.SCATTER_GATHER, 3),
    Opcode.FUSION: OpcodeInfo(_E, -1, fusible=False),
}


def opcode_info(opcode: Opcode) -> OpcodeInfo:
    """Return static metadata for ``opcode``.

    Raises:
        KeyError: if the opcode has no registered metadata (should not happen
            for opcodes constructed through :class:`Opcode`).
    """
    return OPCODE_INFO[opcode]


def is_elementwise(opcode: Opcode) -> bool:
    """True if the op maps each output element from aligned input elements."""
    return OPCODE_INFO[opcode].category is OpCategory.ELEMENTWISE


def is_contraction(opcode: Opcode) -> bool:
    """True for MXU ops (dot / convolution)."""
    return OPCODE_INFO[opcode].category is OpCategory.CONTRACTION


def is_transcendental(opcode: Opcode) -> bool:
    """True if the op executes on the special (transcendental) function unit."""
    return OPCODE_INFO[opcode].transcendental


NUM_OPCODES: int = max(int(op) for op in Opcode) + 1
"""Size of the opcode id space (used to dimension opcode embedding tables)."""
