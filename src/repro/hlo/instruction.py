"""HLO instructions: one node of a tensor computation graph.

An instruction consumes the outputs of its operand instructions (tensors)
and produces exactly one output tensor, matching the paper's graph model
("a node ... processing one or more input tensors into a single output").
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .opcodes import Opcode, opcode_info
from .shapes import Shape


@dataclass
class Instruction:
    """A single primitive tensor operation inside a graph.

    Attributes:
        id: graph-unique non-negative integer id.
        opcode: the primitive operation performed.
        shape: shape of the (single) output tensor.
        operands: ids of producer instructions, in positional order.
        attrs: opcode-specific static attributes (e.g. convolution window,
            reduce dimensions, slice bounds). Keys are strings; values are
            JSON-serializable (ints, floats, tuples/lists of ints, strings).
        name: optional human-readable name (defaults to ``opcode%id``).
        is_root: whether this instruction's output escapes the computation
            (program output). Used as an extra node feature by the model.
    """

    id: int
    opcode: Opcode
    shape: Shape
    operands: tuple[int, ...] = ()
    attrs: dict[str, Any] = field(default_factory=dict)
    name: str = ""
    is_root: bool = False

    def __post_init__(self) -> None:
        self.operands = tuple(int(o) for o in self.operands)
        if not self.name:
            self.name = f"{self.opcode.name.lower()}.{self.id}"
        info = opcode_info(self.opcode)
        if info.arity >= 0 and len(self.operands) != info.arity:
            raise ValueError(
                f"{self.opcode.name} expects {info.arity} operands, "
                f"got {len(self.operands)}"
            )

    @property
    def arity(self) -> int:
        """Number of operands of this instruction instance."""
        return len(self.operands)

    def attr(self, key: str, default: Any = None) -> Any:
        """Fetch a static attribute with a default."""
        return self.attrs.get(key, default)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(f"%{o}" for o in self.operands)
        return f"%{self.id} = {self.shape} {self.opcode.name.lower()}({ops})"
