"""Human-readable renderers for graphs: pretty text and Graphviz dot.

``Graph.__str__`` gives a compact listing; :func:`to_dot` exports the DAG
for visualization (colored by functional category, like paper Fig. 2's
kernel blobs).
"""
from __future__ import annotations

from .graph import Graph
from .opcodes import OpCategory, opcode_info

_CATEGORY_COLORS = {
    OpCategory.PARAMETER: "lightblue",
    OpCategory.CONSTANT: "lightgrey",
    OpCategory.ELEMENTWISE: "white",
    OpCategory.DATA_MOVEMENT: "khaki",
    OpCategory.REDUCTION: "lightsalmon",
    OpCategory.CONTRACTION: "lightgreen",
    OpCategory.SCATTER_GATHER: "plum",
}


def to_dot(graph: Graph, groups: list[set[int]] | None = None) -> str:
    """Render a graph in Graphviz dot format.

    Args:
        graph: graph to render.
        groups: optional fusion groups; each non-trivial group becomes a
            dot cluster (the gray kernel blobs of the paper's Fig. 2).
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=TB;", "  node [style=filled];"]
    grouped: set[int] = set()
    if groups:
        for gi, group in enumerate(groups):
            execs = [i for i in group if i in graph.instructions]
            if len(execs) < 2:
                continue
            lines.append(f"  subgraph cluster_{gi} {{")
            lines.append('    style=filled; color=gray90; label="kernel %d";' % gi)
            for i in sorted(execs):
                lines.append(f"    n{i};")
                grouped.add(i)
            lines.append("  }")
    for inst in graph.topological_order():
        color = _CATEGORY_COLORS[opcode_info(inst.opcode).category]
        label = f"{inst.opcode.name.lower()}\\n{inst.shape}"
        shape = "doubleoctagon" if inst.is_root else "box"
        lines.append(
            f'  n{inst.id} [label="{label}", fillcolor={color}, shape={shape}];'
        )
    for inst in graph.topological_order():
        for op in inst.operands:
            lines.append(f"  n{op} -> n{inst.id};")
    lines.append("}")
    return "\n".join(lines)
