"""Tensor shapes, element dtypes and physical layouts.

A :class:`Shape` is the logical n-dimensional extent of a tensor plus its
element type and a physical :class:`Layout` (a minor-to-major dimension
order, as in XLA). Layout matters for performance: the analytical model and
the simulator both consult it when estimating transfer efficiency, and it is
part of the node features consumed by the learned model.
"""
from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field


class DType(enum.Enum):
    """Element type of a tensor."""

    F32 = "f32"
    BF16 = "bf16"
    S32 = "s32"
    PRED = "pred"

    @property
    def byte_size(self) -> int:
        """Bytes occupied by one element of this type."""
        return _DTYPE_BYTES[self]


_DTYPE_BYTES = {DType.F32: 4, DType.BF16: 2, DType.S32: 4, DType.PRED: 1}


@dataclass(frozen=True)
class Layout:
    """Physical layout as a minor-to-major permutation of dimension indices.

    ``minor_to_major[0]`` is the fastest-varying (innermost) dimension.
    The default layout for rank ``r`` is ``(r-1, ..., 1, 0)`` (row-major).
    """

    minor_to_major: tuple[int, ...]

    @staticmethod
    def default(rank: int) -> "Layout":
        """Row-major layout for a tensor of the given rank."""
        return Layout(tuple(range(rank - 1, -1, -1)))

    def is_default(self) -> bool:
        """True if this is the row-major layout for its rank."""
        return self.minor_to_major == tuple(range(len(self.minor_to_major) - 1, -1, -1))

    def validate(self, rank: int) -> None:
        """Check the permutation is valid for the given rank.

        Raises:
            ValueError: if the layout is not a permutation of ``range(rank)``.
        """
        if sorted(self.minor_to_major) != list(range(rank)):
            raise ValueError(
                f"layout {self.minor_to_major} is not a permutation of range({rank})"
            )


@dataclass(frozen=True)
class Shape:
    """Logical dimensions + dtype + physical layout of one tensor.

    Args:
        dims: extent of each logical dimension; may be empty (scalar).
        dtype: element type.
        layout: physical layout; defaults to row-major.
    """

    dims: tuple[int, ...]
    dtype: DType = DType.F32
    layout: Layout = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", tuple(int(d) for d in self.dims))
        if self.layout is None:
            object.__setattr__(self, "layout", Layout.default(self.rank))
        self.layout.validate(self.rank)
        for d in self.dims:
            if d < 0:
                raise ValueError(f"negative dimension in shape {self.dims}")

    @property
    def rank(self) -> int:
        """Number of logical dimensions."""
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        """Total element count (1 for scalars)."""
        return int(math.prod(self.dims)) if self.dims else 1

    @property
    def byte_size(self) -> int:
        """Total bytes occupied by the tensor."""
        return self.num_elements * self.dtype.byte_size

    def minor_dim(self) -> int | None:
        """Extent of the innermost (fastest-varying) dimension, if any."""
        if not self.dims:
            return None
        return self.dims[self.layout.minor_to_major[0]]

    def with_dtype(self, dtype: DType) -> "Shape":
        """Same dims/layout with a different element type."""
        return Shape(self.dims, dtype, self.layout)

    def with_layout(self, layout: Layout) -> "Shape":
        """Same dims/dtype with a different physical layout."""
        return Shape(self.dims, self.dtype, layout)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = ",".join(str(d) for d in self.dims)
        return f"{self.dtype.value}[{dims}]"


def scalar(dtype: DType = DType.F32) -> Shape:
    """Convenience constructor for a rank-0 shape."""
    return Shape((), dtype)


def broadcast_compatible(a: Shape, b: Shape) -> bool:
    """True if two shapes have identical dims (XLA requires explicit broadcast)."""
    return a.dims == b.dims
