"""Tensor-program intermediate representation (XLA HLO analogue).

Public surface: opcodes and their metadata, shapes/dtypes/layouts,
instructions, graphs/programs, the :class:`GraphBuilder` construction API,
and JSON serialization.
"""
from .builder import GraphBuilder
from .graph import Graph, GraphError, Program
from .instruction import Instruction
from .opcodes import (
    NUM_OPCODES,
    OpCategory,
    Opcode,
    OpcodeInfo,
    is_contraction,
    is_elementwise,
    is_transcendental,
    opcode_info,
)
from .printer import to_dot
from .serialize import (
    graph_from_dict,
    graph_to_dict,
    program_from_json,
    program_to_json,
)
from .shapes import DType, Layout, Shape, scalar

__all__ = [
    "NUM_OPCODES",
    "DType",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "Instruction",
    "Layout",
    "OpCategory",
    "Opcode",
    "OpcodeInfo",
    "Program",
    "Shape",
    "graph_from_dict",
    "graph_to_dict",
    "is_contraction",
    "is_elementwise",
    "is_transcendental",
    "opcode_info",
    "program_from_json",
    "program_to_json",
    "scalar",
    "to_dot",
]
