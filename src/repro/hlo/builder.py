"""Graph construction API with shape inference.

:class:`GraphBuilder` provides one method per primitive opcode (plus a few
composite helpers such as ``relu``/``softmax``/``layer_norm`` that expand
into primitives), performing full shape inference and attribute validation.
All workload generators are written against this builder.

Methods return instruction ids (ints), which are accepted wherever an
operand is expected.
"""
from __future__ import annotations

import math
from typing import Sequence

from .graph import Graph, GraphError
from .instruction import Instruction
from .opcodes import Opcode
from .shapes import DType, Layout, Shape


class GraphBuilder:
    """Incrementally builds a validated :class:`Graph`.

    Args:
        name: name of the graph under construction.
    """

    def __init__(self, name: str = "graph") -> None:
        self.graph = Graph(name)
        self._next_id = 0

    # ----------------------------------------------------------------- infra
    def _emit(
        self,
        opcode: Opcode,
        shape: Shape,
        operands: Sequence[int] = (),
        attrs: dict | None = None,
        name: str = "",
    ) -> int:
        inst = Instruction(
            id=self._next_id,
            opcode=opcode,
            shape=shape,
            operands=tuple(operands),
            attrs=attrs or {},
            name=name,
        )
        self.graph.add(inst)
        self._next_id += 1
        return inst.id

    def shape_of(self, inst_id: int) -> Shape:
        """Shape of an already-built instruction."""
        return self.graph.get(inst_id).shape

    def build(self, roots: Sequence[int] | None = None) -> Graph:
        """Finalize: mark roots, validate, and return the graph.

        Args:
            roots: ids to mark as program outputs; defaults to all sinks.
        """
        if roots:
            for r in roots:
                self.graph.get(r).is_root = True
        else:
            for inst in self.graph.roots():
                inst.is_root = True
        self.graph.validate()
        return self.graph

    # ------------------------------------------------------------- leaf nodes
    def parameter(self, dims: Sequence[int], dtype: DType = DType.F32, name: str = "") -> int:
        """A program input tensor."""
        return self._emit(Opcode.PARAMETER, Shape(tuple(dims), dtype), name=name)

    def constant(self, dims: Sequence[int], dtype: DType = DType.F32, name: str = "") -> int:
        """A compile-time constant tensor (weights, biases, scalars)."""
        return self._emit(Opcode.CONSTANT, Shape(tuple(dims), dtype), name=name)

    def iota(self, dims: Sequence[int], dim: int = 0, dtype: DType = DType.S32) -> int:
        """Tensor filled with indices along ``dim``."""
        return self._emit(Opcode.IOTA, Shape(tuple(dims), dtype), attrs={"iota_dim": dim})

    # ------------------------------------------------------------ elementwise
    def _unary(self, opcode: Opcode, x: int, dtype: DType | None = None) -> int:
        s = self.shape_of(x)
        out = s if dtype is None else s.with_dtype(dtype)
        return self._emit(opcode, out, [x])

    def _binary(self, opcode: Opcode, a: int, b: int, dtype: DType | None = None) -> int:
        sa, sb = self.shape_of(a), self.shape_of(b)
        if sa.dims != sb.dims:
            raise GraphError(
                f"{opcode.name}: operand shapes {sa.dims} vs {sb.dims} differ; "
                "insert an explicit broadcast"
            )
        out = sa if dtype is None else sa.with_dtype(dtype)
        return self._emit(opcode, out, [a, b])

    def negate(self, x: int) -> int:
        return self._unary(Opcode.NEGATE, x)

    def abs(self, x: int) -> int:
        return self._unary(Opcode.ABS, x)

    def sign(self, x: int) -> int:
        return self._unary(Opcode.SIGN, x)

    def exp(self, x: int) -> int:
        return self._unary(Opcode.EXP, x)

    def log(self, x: int) -> int:
        return self._unary(Opcode.LOG, x)

    def tanh(self, x: int) -> int:
        return self._unary(Opcode.TANH, x)

    def sqrt(self, x: int) -> int:
        return self._unary(Opcode.SQRT, x)

    def rsqrt(self, x: int) -> int:
        return self._unary(Opcode.RSQRT, x)

    def logistic(self, x: int) -> int:
        return self._unary(Opcode.LOGISTIC, x)

    def floor(self, x: int) -> int:
        return self._unary(Opcode.FLOOR, x)

    def cos(self, x: int) -> int:
        return self._unary(Opcode.COS, x)

    def sin(self, x: int) -> int:
        return self._unary(Opcode.SIN, x)

    def convert(self, x: int, dtype: DType) -> int:
        return self._unary(Opcode.CONVERT, x, dtype=dtype)

    def add(self, a: int, b: int) -> int:
        return self._binary(Opcode.ADD, a, b)

    def subtract(self, a: int, b: int) -> int:
        return self._binary(Opcode.SUBTRACT, a, b)

    def multiply(self, a: int, b: int) -> int:
        return self._binary(Opcode.MULTIPLY, a, b)

    def divide(self, a: int, b: int) -> int:
        return self._binary(Opcode.DIVIDE, a, b)

    def maximum(self, a: int, b: int) -> int:
        return self._binary(Opcode.MAXIMUM, a, b)

    def minimum(self, a: int, b: int) -> int:
        return self._binary(Opcode.MINIMUM, a, b)

    def power(self, a: int, b: int) -> int:
        return self._binary(Opcode.POWER, a, b)

    def compare(self, a: int, b: int, direction: str = "GT") -> int:
        s = self.shape_of(a)
        if s.dims != self.shape_of(b).dims:
            raise GraphError("compare: shape mismatch")
        return self._emit(
            Opcode.COMPARE,
            s.with_dtype(DType.PRED),
            [a, b],
            attrs={"direction": direction},
        )

    def select(self, pred: int, on_true: int, on_false: int) -> int:
        sp, st, sf = (self.shape_of(i) for i in (pred, on_true, on_false))
        if not (sp.dims == st.dims == sf.dims):
            raise GraphError("select: shape mismatch")
        return self._emit(Opcode.SELECT, st, [pred, on_true, on_false])

    def clamp(self, lo: int, x: int, hi: int) -> int:
        s = self.shape_of(x)
        return self._emit(Opcode.CLAMP, s, [lo, x, hi])

    # ---------------------------------------------------------- data movement
    def broadcast(self, x: int, dims: Sequence[int], broadcast_dims: Sequence[int] = ()) -> int:
        """Broadcast ``x`` into shape ``dims``.

        Args:
            x: operand id.
            dims: target dimensions.
            broadcast_dims: for each operand dimension, the index of the
                output dimension it maps to. Empty means operand is scalar.
        """
        s = self.shape_of(x)
        bdims = tuple(broadcast_dims)
        if len(bdims) != s.rank:
            raise GraphError(
                f"broadcast: got {len(bdims)} broadcast_dims for rank-{s.rank} operand"
            )
        for od, d in zip(bdims, s.dims):
            if od >= len(dims) or dims[od] != d:
                raise GraphError(
                    f"broadcast: operand dim {d} does not match output dim "
                    f"{od} of {tuple(dims)}"
                )
        return self._emit(
            Opcode.BROADCAST,
            Shape(tuple(dims), s.dtype),
            [x],
            attrs={"broadcast_dims": bdims},
        )

    def broadcast_scalar(self, x: int, dims: Sequence[int]) -> int:
        """Broadcast a rank-0 tensor to ``dims``."""
        return self.broadcast(x, dims, ())

    def broadcast_in_dim(self, x: int, dims: Sequence[int], axis: int) -> int:
        """Broadcast a rank-1 tensor along ``axis`` of an output of ``dims``."""
        return self.broadcast(x, dims, (axis,))

    def reshape(self, x: int, dims: Sequence[int]) -> int:
        s = self.shape_of(x)
        if math.prod(dims) != s.num_elements:
            raise GraphError(
                f"reshape: cannot reshape {s.dims} ({s.num_elements} elems) "
                f"to {tuple(dims)}"
            )
        return self._emit(Opcode.RESHAPE, Shape(tuple(dims), s.dtype), [x])

    def transpose(self, x: int, permutation: Sequence[int]) -> int:
        s = self.shape_of(x)
        perm = tuple(permutation)
        if sorted(perm) != list(range(s.rank)):
            raise GraphError(f"transpose: bad permutation {perm} for rank {s.rank}")
        dims = tuple(s.dims[p] for p in perm)
        return self._emit(
            Opcode.TRANSPOSE, Shape(dims, s.dtype), [x], attrs={"permutation": perm}
        )

    def slice(self, x: int, starts: Sequence[int], limits: Sequence[int]) -> int:
        s = self.shape_of(x)
        starts, limits = tuple(starts), tuple(limits)
        if len(starts) != s.rank or len(limits) != s.rank:
            raise GraphError("slice: starts/limits rank mismatch")
        dims = []
        for st, li, d in zip(starts, limits, s.dims):
            if not (0 <= st <= li <= d):
                raise GraphError(f"slice: bounds [{st}, {li}) invalid for dim {d}")
            dims.append(li - st)
        return self._emit(
            Opcode.SLICE,
            Shape(tuple(dims), s.dtype),
            [x],
            attrs={"starts": starts, "limits": limits},
        )

    def concatenate(self, xs: Sequence[int], dim: int) -> int:
        shapes = [self.shape_of(x) for x in xs]
        if not xs:
            raise GraphError("concatenate: needs at least one operand")
        base = shapes[0]
        total = 0
        for s in shapes:
            if s.rank != base.rank:
                raise GraphError("concatenate: rank mismatch")
            for i, (a, b) in enumerate(zip(s.dims, base.dims)):
                if i != dim and a != b:
                    raise GraphError("concatenate: non-concat dims must match")
            total += s.dims[dim]
        dims = list(base.dims)
        dims[dim] = total
        return self._emit(
            Opcode.CONCATENATE,
            Shape(tuple(dims), base.dtype),
            list(xs),
            attrs={"dim": dim},
        )

    def pad(self, x: int, pad_value: int, low: Sequence[int], high: Sequence[int]) -> int:
        s = self.shape_of(x)
        low, high = tuple(low), tuple(high)
        dims = tuple(d + l + h for d, l, h in zip(s.dims, low, high))
        return self._emit(
            Opcode.PAD,
            Shape(dims, s.dtype),
            [x, pad_value],
            attrs={"low": low, "high": high},
        )

    def reverse(self, x: int, dims: Sequence[int]) -> int:
        s = self.shape_of(x)
        return self._emit(Opcode.REVERSE, s, [x], attrs={"dims": tuple(dims)})

    def dynamic_slice(self, x: int, start_indices: int, sizes: Sequence[int]) -> int:
        s = self.shape_of(x)
        return self._emit(
            Opcode.DYNAMIC_SLICE,
            Shape(tuple(sizes), s.dtype),
            [x, start_indices],
            attrs={"sizes": tuple(sizes)},
        )

    def copy(self, x: int, layout: Layout | None = None) -> int:
        s = self.shape_of(x)
        out = s if layout is None else s.with_layout(layout)
        return self._emit(Opcode.COPY, out, [x])

    # -------------------------------------------------------------- reductions
    def reduce(self, x: int, dims: Sequence[int], kind: str = "sum") -> int:
        """Reduce over ``dims`` with ``kind`` in {sum, max, min, mean}."""
        s = self.shape_of(x)
        rdims = set(dims)
        out_dims = tuple(d for i, d in enumerate(s.dims) if i not in rdims)
        return self._emit(
            Opcode.REDUCE,
            Shape(out_dims, s.dtype),
            [x],
            attrs={"dims": tuple(sorted(rdims)), "kind": kind},
        )

    def reduce_window(
        self,
        x: int,
        window: Sequence[int],
        strides: Sequence[int],
        kind: str = "max",
        padding: str = "valid",
    ) -> int:
        """Sliding-window reduction (pooling) over all dimensions.

        ``window``/``strides`` have one entry per dimension; use 1 for
        batch/feature dimensions.
        """
        s = self.shape_of(x)
        if len(window) != s.rank or len(strides) != s.rank:
            raise GraphError("reduce_window: window/strides rank mismatch")
        dims = []
        for d, w, st in zip(s.dims, window, strides):
            if padding == "same":
                dims.append(-(-d // st))
            else:
                if w > d:
                    raise GraphError(f"reduce_window: window {w} > dim {d}")
                dims.append((d - w) // st + 1)
        return self._emit(
            Opcode.REDUCE_WINDOW,
            Shape(tuple(dims), s.dtype),
            [x],
            attrs={
                "window": tuple(window),
                "strides": tuple(strides),
                "kind": kind,
                "padding": padding,
            },
        )

    def argmax(self, x: int, dim: int) -> int:
        s = self.shape_of(x)
        out_dims = tuple(d for i, d in enumerate(s.dims) if i != dim)
        return self._emit(
            Opcode.ARGMAX, Shape(out_dims, DType.S32), [x], attrs={"dim": dim}
        )

    def softmax_xent(self, logits: int, labels: int) -> int:
        s = self.shape_of(logits)
        out_dims = s.dims[:-1]
        return self._emit(Opcode.SOFTMAX_XENT, Shape(out_dims, s.dtype), [logits, labels])

    # ------------------------------------------------------------ contractions
    def dot(self, a: int, b: int) -> int:
        """Matrix product contracting the last dim of ``a`` with the
        second-to-last (or only) dim of ``b``. Supports [m,k]x[k,n],
        [b,m,k]x[k,n] and [b,m,k]x[b,k,n].
        """
        sa, sb = self.shape_of(a), self.shape_of(b)
        if sa.rank == 2 and sb.rank == 2:
            m, k = sa.dims
            k2, n = sb.dims
            batch: tuple[int, ...] = ()
        elif sa.rank == 3 and sb.rank == 2:
            bdim, m, k = sa.dims
            k2, n = sb.dims
            batch = (bdim,)
        elif sa.rank == 3 and sb.rank == 3:
            bdim, m, k = sa.dims
            b2, k2, n = sb.dims
            if b2 != bdim:
                raise GraphError("dot: batch dims mismatch")
            batch = (bdim,)
        else:
            raise GraphError(f"dot: unsupported ranks {sa.rank}x{sb.rank}")
        if k != k2:
            raise GraphError(f"dot: contracting dims {k} vs {k2} differ")
        flops = 2.0 * math.prod(batch + (m, n)) * k
        return self._emit(
            Opcode.DOT,
            Shape(batch + (m, n), sa.dtype),
            [a, b],
            attrs={"contracting": k, "flops": flops},
        )

    def conv2d(
        self,
        x: int,
        kernel: int,
        strides: tuple[int, int] = (1, 1),
        padding: str = "same",
    ) -> int:
        """2-D convolution, NHWC input and HWIO kernel.

        Args:
            x: input of shape [n, h, w, c_in].
            kernel: filter of shape [kh, kw, c_in, c_out].
            strides: spatial strides.
            padding: "same" or "valid".
        """
        sx, sk = self.shape_of(x), self.shape_of(kernel)
        if sx.rank != 4 or sk.rank != 4:
            raise GraphError("conv2d: expects rank-4 input and kernel")
        n, h, w, cin = sx.dims
        kh, kw, kcin, cout = sk.dims
        if cin != kcin:
            raise GraphError(f"conv2d: input channels {cin} != kernel {kcin}")
        sh, sw = strides
        if padding == "same":
            oh, ow = -(-h // sh), -(-w // sw)
        elif padding == "valid":
            if kh > h or kw > w:
                raise GraphError("conv2d: kernel larger than input under valid padding")
            oh, ow = (h - kh) // sh + 1, (w - kw) // sw + 1
        else:
            raise GraphError(f"conv2d: unknown padding {padding!r}")
        flops = 2.0 * n * oh * ow * cout * kh * kw * cin
        return self._emit(
            Opcode.CONVOLUTION,
            Shape((n, oh, ow, cout), sx.dtype),
            [x, kernel],
            attrs={
                "window": (kh, kw),
                "strides": (sh, sw),
                "padding": padding,
                "flops": flops,
            },
        )

    def gather(self, table: int, indices: int) -> int:
        """Embedding-style gather: rows of ``table`` selected by ``indices``."""
        st, si = self.shape_of(table), self.shape_of(indices)
        if st.rank != 2:
            raise GraphError("gather: table must be rank 2 [vocab, dim]")
        out_dims = si.dims + (st.dims[1],)
        return self._emit(Opcode.GATHER, Shape(out_dims, st.dtype), [table, indices])

    def scatter(self, operand: int, indices: int, updates: int) -> int:
        s = self.shape_of(operand)
        return self._emit(Opcode.SCATTER, s, [operand, indices, updates])

    # ------------------------------------------------------ composite helpers
    def relu(self, x: int) -> int:
        """max(x, 0) expanded to constant + broadcast + maximum."""
        zero = self.constant((), self.shape_of(x).dtype, name="zero")
        zb = self.broadcast_scalar(zero, self.shape_of(x).dims)
        return self.maximum(x, zb)

    def add_bias(self, x: int, feature_dim: int = -1) -> int:
        """Add a learned bias vector along ``feature_dim``."""
        s = self.shape_of(x)
        dim = feature_dim % s.rank
        bias = self.constant((s.dims[dim],), s.dtype, name="bias")
        bb = self.broadcast_in_dim(bias, s.dims, dim)
        return self.add(x, bb)

    def scale_shift(self, x: int, feature_dim: int = -1) -> int:
        """Per-feature scale and shift (folded batch-norm / layer-norm tail)."""
        s = self.shape_of(x)
        dim = feature_dim % s.rank
        scale = self.constant((s.dims[dim],), s.dtype, name="scale")
        shift = self.constant((s.dims[dim],), s.dtype, name="shift")
        xs = self.multiply(x, self.broadcast_in_dim(scale, s.dims, dim))
        return self.add(xs, self.broadcast_in_dim(shift, s.dims, dim))

    def softmax(self, x: int, dim: int = -1) -> int:
        """Numerically-stable softmax expanded into primitives."""
        s = self.shape_of(x)
        dim = dim % s.rank
        mx = self.reduce(x, [dim], kind="max")
        mxb = self._rebroadcast(mx, s.dims, skip_dim=dim)
        shifted = self.subtract(x, mxb)
        ex = self.exp(shifted)
        denom = self.reduce(ex, [dim], kind="sum")
        denomb = self._rebroadcast(denom, s.dims, skip_dim=dim)
        return self.divide(ex, denomb)

    def layer_norm(self, x: int, dim: int = -1) -> int:
        """Layer normalization expanded into primitives."""
        s = self.shape_of(x)
        dim = dim % s.rank
        mean = self.reduce(x, [dim], kind="mean")
        meanb = self._rebroadcast(mean, s.dims, skip_dim=dim)
        centered = self.subtract(x, meanb)
        sq = self.multiply(centered, centered)
        var = self.reduce(sq, [dim], kind="mean")
        eps = self.constant((), s.dtype, name="eps")
        epsb = self.broadcast_scalar(eps, self.shape_of(var).dims)
        inv = self.rsqrt(self.add(var, epsb))
        invb = self._rebroadcast(inv, s.dims, skip_dim=dim)
        return self.scale_shift(self.multiply(centered, invb), dim)

    def _rebroadcast(self, x: int, dims: tuple[int, ...], skip_dim: int) -> int:
        """Broadcast a reduced tensor back to ``dims`` (inverse of reduce)."""
        bdims = tuple(i for i in range(len(dims)) if i != skip_dim)
        return self.broadcast(x, dims, bdims)

    def dense(self, x: int, out_features: int, activation: str | None = "relu") -> int:
        """Fully connected layer: dot + bias + optional activation."""
        s = self.shape_of(x)
        w = self.constant((s.dims[-1], out_features), s.dtype, name="weight")
        y = self.dot(x, w)
        y = self.add_bias(y)
        if activation == "relu":
            y = self.relu(y)
        elif activation == "tanh":
            y = self.tanh(y)
        elif activation == "sigmoid":
            y = self.logistic(y)
        elif activation is not None:
            raise GraphError(f"dense: unknown activation {activation!r}")
        return y
