"""Tensor computation graphs (directed acyclic dataflow graphs).

A :class:`Graph` holds instructions keyed by id; edges are implied by each
instruction's operand list (operand -> instruction is a dataflow edge).
Graphs are the unit the compiler substrate operates on, and — after the
fusion pass decomposes a program into kernels — also the model input unit.
"""
from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from .instruction import Instruction
from .opcodes import Opcode


class GraphError(ValueError):
    """Raised when a graph violates a structural invariant."""


@dataclass
class Graph:
    """A DAG of :class:`Instruction` nodes.

    Attributes:
        name: human-readable graph name.
        instructions: id -> instruction mapping. Ids need not be contiguous.
    """

    name: str = "graph"
    instructions: dict[int, Instruction] = field(default_factory=dict)

    # ------------------------------------------------------------------ core
    def add(self, instruction: Instruction) -> Instruction:
        """Insert an instruction; operands must already be present.

        Raises:
            GraphError: on duplicate id or missing operand.
        """
        if instruction.id in self.instructions:
            raise GraphError(f"duplicate instruction id {instruction.id}")
        for op in instruction.operands:
            if op not in self.instructions:
                raise GraphError(
                    f"instruction {instruction.id} references missing operand {op}"
                )
        self.instructions[instruction.id] = instruction
        return instruction

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions.values())

    def __contains__(self, inst_id: int) -> bool:
        return inst_id in self.instructions

    def get(self, inst_id: int) -> Instruction:
        """Fetch an instruction by id (KeyError if absent)."""
        return self.instructions[inst_id]

    def operands_of(self, inst_id: int) -> list[Instruction]:
        """Producer instructions of the given instruction."""
        return [self.instructions[o] for o in self.instructions[inst_id].operands]

    # ----------------------------------------------------------- derived maps
    def users(self) -> dict[int, list[int]]:
        """Map from instruction id to ids of instructions that consume it."""
        out: dict[int, list[int]] = {i: [] for i in self.instructions}
        for inst in self.instructions.values():
            for op in inst.operands:
                out[op].append(inst.id)
        return out

    def roots(self) -> list[Instruction]:
        """Instructions with no users, or explicitly marked ``is_root``."""
        users = self.users()
        out = [
            inst
            for inst in self.instructions.values()
            if not users[inst.id] or inst.is_root
        ]
        # Deduplicate while preserving order.
        seen: set[int] = set()
        result = []
        for inst in out:
            if inst.id not in seen:
                seen.add(inst.id)
                result.append(inst)
        return result

    def parameters(self) -> list[Instruction]:
        """All PARAMETER instructions in id order."""
        return sorted(
            (i for i in self.instructions.values() if i.opcode is Opcode.PARAMETER),
            key=lambda i: i.id,
        )

    # -------------------------------------------------------------- ordering
    def topological_order(self) -> list[Instruction]:
        """Kahn topological sort; stable with respect to instruction ids.

        Raises:
            GraphError: if the graph contains a cycle.
        """
        indegree = {i: len(inst.operands) for i, inst in self.instructions.items()}
        users = self.users()
        ready = sorted(i for i, d in indegree.items() if d == 0)
        queue: deque[int] = deque(ready)
        order: list[Instruction] = []
        while queue:
            nid = queue.popleft()
            order.append(self.instructions[nid])
            for user in users[nid]:
                indegree[user] -= 1
                if indegree[user] == 0:
                    queue.append(user)
        if len(order) != len(self.instructions):
            raise GraphError(f"graph '{self.name}' contains a cycle")
        return order

    def validate(self) -> None:
        """Check all structural invariants.

        Invariants: operand references resolve, the graph is acyclic, and
        ids are non-negative and match their dict keys.

        Raises:
            GraphError: on any violation.
        """
        for key, inst in self.instructions.items():
            if key != inst.id:
                raise GraphError(f"key {key} != instruction id {inst.id}")
            if inst.id < 0:
                raise GraphError(f"negative instruction id {inst.id}")
            for op in inst.operands:
                if op not in self.instructions:
                    raise GraphError(
                        f"instruction {inst.id} references missing operand {op}"
                    )
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------- structure
    def adjacency_matrix(self, order: list[Instruction] | None = None) -> np.ndarray:
        """Dense adjacency matrix ``A[i, j] = 1`` iff node i feeds node j.

        Args:
            order: node ordering defining matrix indices; defaults to
                topological order.
        """
        order = order or self.topological_order()
        index = {inst.id: k for k, inst in enumerate(order)}
        a = np.zeros((len(order), len(order)), dtype=np.float32)
        for inst in order:
            for op in inst.operands:
                if op in index:
                    a[index[op], index[inst.id]] = 1.0
        return a

    def subgraph(self, ids: Iterable[int], name: str | None = None) -> "Graph":
        """Extract the induced subgraph over ``ids``.

        Cross-boundary operands become fresh PARAMETER nodes, exactly like
        XLA kernel extraction ("kernel's inputs are expressed by nodes with
        the parameter opcode"). Node ids are renumbered densely in
        topological order; outputs (nodes whose users are all outside, or
        graph roots) get ``is_root=True``.
        """
        ids = set(ids)
        users = self.users()
        order = [i for i in self.topological_order() if i.id in ids]
        remap: dict[int, int] = {}
        sub = Graph(name or f"{self.name}.sub")
        next_id = 0
        for inst in order:
            new_operands = []
            for op in inst.operands:
                if op in ids:
                    new_operands.append(remap[op])
                else:
                    # Import as a parameter node carrying the producer shape.
                    key = -op - 1  # stable pseudo-id per external producer
                    if key not in remap:
                        param = Instruction(
                            id=next_id,
                            opcode=Opcode.PARAMETER,
                            shape=self.instructions[op].shape,
                            attrs={"imported_from": op},
                        )
                        sub.add(param)
                        remap[key] = next_id
                        next_id += 1
                    new_operands.append(remap[key])
            is_out = inst.is_root or any(u not in ids for u in users[inst.id]) or not users[inst.id]
            clone = Instruction(
                id=next_id,
                opcode=inst.opcode,
                shape=inst.shape,
                operands=tuple(new_operands),
                attrs=dict(inst.attrs),
                name=inst.name,
                is_root=is_out,
            )
            sub.add(clone)
            remap[inst.id] = next_id
            next_id += 1
        return sub

    def clone(self, name: str | None = None) -> "Graph":
        """Deep-enough copy (instructions are re-created; attrs copied)."""
        g = Graph(name or self.name)
        for inst in self.topological_order():
            g.add(
                Instruction(
                    id=inst.id,
                    opcode=inst.opcode,
                    shape=inst.shape,
                    operands=inst.operands,
                    attrs=dict(inst.attrs),
                    name=inst.name,
                    is_root=inst.is_root,
                )
            )
        return g

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"graph {self.name} {{"]
        for inst in self.topological_order():
            lines.append(f"  {inst}")
        lines.append("}")
        return "\n".join(lines)


@dataclass
class Program:
    """A named whole tensor program: one computation graph plus metadata.

    Attributes:
        name: program name (e.g. ``resnet_v1_50``).
        family: application family used for dataset balancing and splits
            (e.g. ``resnet``); many programs may share a family.
        graph: the (unfused) computation graph of primitive operations.
    """

    name: str
    graph: Graph
    family: str = ""

    def __post_init__(self) -> None:
        if not self.family:
            self.family = self.name
