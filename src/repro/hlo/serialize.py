"""JSON (de)serialization for graphs and programs.

The wire format is intentionally simple: a graph is a list of instruction
records in topological order. Attribute values survive a JSON round-trip as
lists, so tuples are normalized back on load.
"""
from __future__ import annotations

import json
from typing import Any

from .graph import Graph, Program
from .instruction import Instruction
from .opcodes import Opcode
from .shapes import DType, Layout, Shape


def _shape_to_dict(shape: Shape) -> dict[str, Any]:
    return {
        "dims": list(shape.dims),
        "dtype": shape.dtype.value,
        "layout": list(shape.layout.minor_to_major),
    }


def _shape_from_dict(d: dict[str, Any]) -> Shape:
    return Shape(
        tuple(d["dims"]),
        DType(d["dtype"]),
        Layout(tuple(d["layout"])),
    )


def _normalize_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Convert JSON lists back to tuples (our canonical attr container)."""
    out: dict[str, Any] = {}
    for k, v in attrs.items():
        out[k] = tuple(v) if isinstance(v, list) else v
    return out


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """Serialize a graph to a JSON-compatible dict."""
    return {
        "name": graph.name,
        "instructions": [
            {
                "id": inst.id,
                "opcode": int(inst.opcode),
                "shape": _shape_to_dict(inst.shape),
                "operands": list(inst.operands),
                "attrs": {
                    k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in inst.attrs.items()
                },
                "name": inst.name,
                "is_root": inst.is_root,
            }
            for inst in graph.topological_order()
        ],
    }


def graph_from_dict(d: dict[str, Any]) -> Graph:
    """Deserialize a graph produced by :func:`graph_to_dict`."""
    g = Graph(d["name"])
    for rec in d["instructions"]:
        g.add(
            Instruction(
                id=rec["id"],
                opcode=Opcode(rec["opcode"]),
                shape=_shape_from_dict(rec["shape"]),
                operands=tuple(rec["operands"]),
                attrs=_normalize_attrs(rec["attrs"]),
                name=rec["name"],
                is_root=rec["is_root"],
            )
        )
    g.validate()
    return g


def program_to_json(program: Program) -> str:
    """Serialize a program (graph + metadata) to a JSON string."""
    return json.dumps(
        {
            "name": program.name,
            "family": program.family,
            "graph": graph_to_dict(program.graph),
        }
    )


def program_from_json(text: str) -> Program:
    """Inverse of :func:`program_to_json`."""
    d = json.loads(text)
    return Program(name=d["name"], family=d["family"], graph=graph_from_dict(d["graph"]))
