"""Evaluation metrics and table rendering."""
from .metrics import (
    FusionTaskResult,
    TileTaskResult,
    evaluate_fusion_task,
    evaluate_tile_task,
    geometric_mean,
    kendall_tau,
    mape,
    summarize,
    tile_size_ape,
)
from .plots import bar_chart
from .reports import format_comparison, format_table
from .service import LatencySummary, ServingStats, latency_percentiles

__all__ = [
    "FusionTaskResult",
    "LatencySummary",
    "ServingStats",
    "bar_chart",
    "TileTaskResult",
    "evaluate_fusion_task",
    "evaluate_tile_task",
    "format_comparison",
    "format_table",
    "geometric_mean",
    "kendall_tau",
    "latency_percentiles",
    "mape",
    "summarize",
    "tile_size_ape",
]
