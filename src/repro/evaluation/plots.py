"""ASCII bar charts for figure-style benchmark output.

Figures 4 and 5 of the paper are grouped bar charts (speedup per program
per strategy); :func:`bar_chart` renders the same data in a terminal.
"""
from __future__ import annotations

from typing import Sequence


def bar_chart(
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
    baseline: float | None = 1.0,
    fmt: str = "{:.2f}",
) -> str:
    """Render grouped horizontal bars.

    Args:
        labels: one label per group (e.g. program names).
        series: series name -> one value per group (e.g. strategy -> speedups).
        width: character width of the longest bar.
        title: optional heading.
        baseline: draw a tick at this value (e.g. speedup 1.0); None to skip.
        fmt: value format.

    Raises:
        ValueError: if any series length differs from ``labels``.
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return title or ""
    vmax = max(max(all_values), baseline or 0.0, 1e-12)
    name_w = max(len(n) for n in series)
    label_w = max(len(l) for l in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    for gi, label in enumerate(labels):
        lines.append(f"{label}")
        for name, values in series.items():
            v = values[gi]
            n = max(0, int(round(v / vmax * width)))
            bar = "#" * n
            if baseline is not None and 0 < baseline <= vmax:
                tick = int(round(baseline / vmax * width))
                if tick < len(bar):
                    bar = bar[:tick] + "|" + bar[tick + 1 :]
                elif tick >= len(bar):
                    bar = bar + " " * (tick - len(bar)) + "|"
            lines.append(
                f"  {name.ljust(name_w)} {bar} {fmt.format(v)}"
            )
    return "\n".join(lines)
