"""Evaluation metrics (paper Sec. 5).

Tile-size task: *Tile-Size APE* (Eq. 2) — how much slower the program runs
with the model's chosen tiles than with the truly-best tiles — plus
Kendall's τ between predicted and true runtimes within each kernel,
averaged per program.

Fusion task: MAPE over kernels plus Kendall's τ across kernels, evaluated
per program; the paper reports over kernels with true runtime >= 5 µs
(small kernels contribute negligibly to program runtime).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


def kendall_tau(truth: np.ndarray, pred: np.ndarray) -> float:
    """Kendall rank correlation; 0.0 for degenerate (constant) inputs."""
    truth = np.asarray(truth, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    if len(truth) < 2 or np.all(truth == truth[0]) or np.all(pred == pred[0]):
        return 0.0
    tau = stats.kendalltau(truth, pred).statistic
    return float(tau) if np.isfinite(tau) else 0.0


def mape(truth: np.ndarray, pred: np.ndarray) -> float:
    """Mean absolute percentage error, in percent."""
    truth = np.asarray(truth, dtype=np.float64)
    pred = np.asarray(pred, dtype=np.float64)
    if len(truth) == 0:
        return 0.0
    return float(np.mean(np.abs(pred - truth) / np.maximum(truth, 1e-12)) * 100.0)


@dataclass(frozen=True)
class TileTaskResult:
    """Per-program tile-task metrics.

    Attributes:
        ape: Tile-Size APE (Eq. 2), percent.
        kendall: mean within-kernel Kendall's τ.
        num_kernels: kernels evaluated.
    """

    ape: float
    kendall: float
    num_kernels: int


def tile_size_ape(
    true_runtimes: list[np.ndarray],
    chosen_indices: list[int],
) -> float:
    """Tile-Size APE over one program (Eq. 2).

    Args:
        true_runtimes: per kernel, the true runtime of every candidate tile.
        chosen_indices: per kernel, the index the model predicts fastest.

    Returns:
        100 * sum_k (t[chosen] - t[best]) / sum_k t[best].
    """
    lost = 0.0
    best_total = 0.0
    for runtimes, chosen in zip(true_runtimes, chosen_indices):
        best = float(np.min(runtimes))
        lost += abs(float(runtimes[chosen]) - best)
        best_total += best
    if best_total <= 0:
        return 0.0
    return 100.0 * lost / best_total


def evaluate_tile_task(
    true_runtimes: list[np.ndarray],
    scores: list[np.ndarray],
) -> TileTaskResult:
    """Tile-task metrics for one program.

    Args:
        true_runtimes: per kernel, true runtimes of its candidate tiles.
        scores: per kernel, model scores aligned with the candidates
            (lower score = predicted faster).
    """
    chosen = [int(np.argmin(s)) for s in scores]
    ape = tile_size_ape(true_runtimes, chosen)
    taus = [kendall_tau(t, s) for t, s in zip(true_runtimes, scores)]
    return TileTaskResult(
        ape=ape,
        kendall=float(np.mean(taus)) if taus else 0.0,
        num_kernels=len(scores),
    )


@dataclass(frozen=True)
class FusionTaskResult:
    """Per-program fusion-task metrics.

    Attributes:
        mape: mean absolute percentage error over kernels, percent.
        kendall: Kendall's τ between predicted and true runtimes across
            the program's kernels.
        num_kernels: kernels evaluated.
    """

    mape: float
    kendall: float
    num_kernels: int


def evaluate_fusion_task(
    true_runtimes: np.ndarray,
    predicted_runtimes: np.ndarray,
    min_runtime: float = 5e-6,
) -> FusionTaskResult:
    """Fusion-task metrics for one program's kernels.

    Args:
        true_runtimes / predicted_runtimes: aligned arrays of seconds.
        min_runtime: kernels faster than this are excluded (paper uses
            5 µs; pass 0 to keep everything).
    """
    truth = np.asarray(true_runtimes, dtype=np.float64)
    pred = np.asarray(predicted_runtimes, dtype=np.float64)
    keep = truth >= min_runtime
    truth, pred = truth[keep], pred[keep]
    return FusionTaskResult(
        mape=mape(truth, pred),
        kendall=kendall_tau(truth, pred),
        num_kernels=int(keep.sum()),
    )


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (0s clamped to a tiny epsilon)."""
    arr = np.maximum(np.asarray(values, dtype=np.float64), 1e-9)
    return float(np.exp(np.mean(np.log(arr))))


def summarize(values: list[float]) -> dict[str, float]:
    """Median/mean summary rows used at the bottom of the paper's tables."""
    arr = np.asarray(values, dtype=np.float64)
    return {"median": float(np.median(arr)), "mean": float(np.mean(arr))}
