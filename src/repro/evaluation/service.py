"""Serving metrics: QPS, batch occupancy, cache hit rate, latency tails.

The compile-time serving tier is throughput infrastructure, so it is
evaluated like one: requests/sec, how full the micro-batches run
(occupancy is the batching win), how often the shared result cache
short-circuits a forward, and the latency distribution clients actually
see (tails, not means — a tuner blocked at p99 stalls its whole search
chain).

:class:`ServingStats` is the thread-safe accumulator the service feeds;
:func:`latency_percentiles` is the standalone helper for offline analysis
of recorded latencies.
"""
from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

#: Latency ring-buffer size: enough for stable p99 estimates, bounded so a
#: long-lived service never grows.
_LATENCY_WINDOW = 8192

#: Per-shard latency window: smaller than the global one (there are many
#: shards) but still enough for stable tail estimates.
_SHARD_LATENCY_WINDOW = 2048


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution snapshot, seconds.

    Attributes:
        count: samples summarized.
        mean / p50 / p90 / p99 / max: the usual suspects.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float


def latency_percentiles(samples) -> LatencySummary:
    """Summarize latency samples (empty input gives an all-zero summary).

    Percentiles are **nearest-rank** (the smallest sample with at least
    ``q%`` of the distribution at or below it), not interpolated: every
    reported tail is a latency some request actually paid, a single
    sample reports itself for every percentile, and p99 at small n is
    the max rather than an invented point beyond any observation.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
    arr.sort()
    n = int(arr.size)

    def rank(q: float) -> float:
        return float(arr[min(max(math.ceil(q / 100.0 * n) - 1, 0), n - 1)])

    return LatencySummary(
        count=n,
        mean=float(arr.mean()),
        p50=rank(50),
        p90=rank(90),
        p99=rank(99),
        max=float(arr[-1]),
    )


class _ShardStats:
    """Per-shard accumulator (occupancy, volume, latency tail samples)."""

    __slots__ = ("requests", "errors", "forwards", "latencies")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.forwards = 0
        self.latencies: deque[float] = deque(maxlen=_SHARD_LATENCY_WINDOW)


class _VersionStats:
    """Per-checkpoint routing accumulator (the rollout control plane's
    volume counters: response-path, canary slice, shadow scores)."""

    __slots__ = ("served", "canary", "shadow", "errors", "shadow_errors")

    def __init__(self) -> None:
        self.served = 0
        self.canary = 0
        self.shadow = 0
        self.errors = 0
        self.shadow_errors = 0


class ServingStats:
    """Thread-safe accumulator for the service's operational metrics.

    The service calls :meth:`record_response` once per resolved request
    (tagging the shard that executed it, when one did) and
    :meth:`record_batch` once per executed micro-batch;
    :meth:`record_shard` accounts each coalesced per-shard forward.
    :meth:`snapshot` renders the service-wide view into one flat dict for
    reports and benchmark JSON; :meth:`shard_snapshot` renders the
    per-shard breakdown that makes a sharded executor observable.
    """

    #: Smoothing weight of the response-latency EWMA (the SLO burn-rate
    #: gauges' low-cost trend signal; the deque still holds the window).
    _LATENCY_EWMA_ALPHA = 0.05

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self._latency_ewma: float | None = None
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.batches = 0
        self.batched_requests = 0
        self.model_forwards = 0
        self.shadow_forwards = 0
        self.cache_hit_shadows = 0
        self.placement_changes = 0
        self.placement_moves = 0
        self.degraded = 0
        self.deadline_expired = 0
        self.overload_rejections = 0
        self.abandoned = 0
        self.breaker_blocks = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._shards: dict[int, _ShardStats] = {}
        self._versions: dict[str, _VersionStats] = {}

    def _shard(self, shard: int) -> _ShardStats:
        stats = self._shards.get(shard)
        if stats is None:
            stats = self._shards[shard] = _ShardStats()
        return stats

    def _version(self, version: str) -> _VersionStats:
        stats = self._versions.get(version)
        if stats is None:
            stats = self._versions[version] = _VersionStats()
        return stats

    def record_response(
        self,
        latency_s: float,
        cache_hit: bool,
        error: bool = False,
        shard: int | None = None,
    ) -> None:
        """Account one resolved request (``shard`` = executing shard)."""
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.cache_hits += 1
            if error:
                self.errors += 1
            self._latencies.append(latency_s)
            if self._latency_ewma is None:
                self._latency_ewma = latency_s
            else:
                alpha = self._LATENCY_EWMA_ALPHA
                self._latency_ewma = (
                    (1.0 - alpha) * self._latency_ewma + alpha * latency_s
                )
            if shard is not None:
                stats = self._shard(shard)
                stats.requests += 1
                if error:
                    stats.errors += 1
                stats.latencies.append(latency_s)

    def record_batch(self, size: int, forwards: int = 1) -> None:
        """Account one executed micro-batch of ``size`` coalesced requests
        that cost ``forwards`` model forward passes."""
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.model_forwards += forwards

    def record_shard(self, shard: int, forwards: int = 1) -> None:
        """Account the forward passes one of ``shard``'s coalesced
        commands cost (per-shard request counts come from
        :meth:`record_response`)."""
        with self._lock:
            stats = self._shard(shard)
            stats.forwards += forwards

    def record_route(
        self,
        version: str | None,
        canary: bool = False,
        shadow: bool = False,
        error: bool = False,
    ) -> None:
        """Account one routing decision against ``version``.

        Response-path requests count as ``served`` (plus ``canary`` when
        a rollout policy routed them to the staged version); shadow
        scores count separately — they never produced a response.
        """
        if version is None:
            return
        with self._lock:
            stats = self._version(version)
            if shadow:
                if error:
                    stats.shadow_errors += 1
                else:
                    stats.shadow += 1
                return
            stats.served += 1
            if canary:
                stats.canary += 1
            if error:
                stats.errors += 1

    def record_shadow_forwards(self, forwards: int = 1) -> None:
        """Account forward passes spent on off-response-path shadow
        scoring (kept out of ``model_forwards`` so occupancy ratios keep
        describing the response path)."""
        with self._lock:
            self.shadow_forwards += forwards

    def record_cache_hit_shadow(self) -> None:
        """Account one result-cache hit sampled into a shadow batch (the
        rollout-aware cache: hits bypass execution, so a sampled fraction
        is re-scored off-path to keep staged evidence flowing)."""
        with self._lock:
            self.cache_hit_shadows += 1

    # ------------------------------------------------------------------ #
    # resilience
    # ------------------------------------------------------------------ #

    def record_degraded(self) -> None:
        """Account one response answered by the analytical fallback
        (tagged ``degraded=True`` on the wire — served, but not by a
        published checkpoint)."""
        with self._lock:
            self.degraded += 1

    def record_deadline_expired(self) -> None:
        """Account one request shed before dispatch because its deadline
        had already elapsed."""
        with self._lock:
            self.deadline_expired += 1

    def record_overload_rejection(self) -> None:
        """Account one submission shed by admission control (the
        scheduler queue was at its ``max_pending`` bound)."""
        with self._lock:
            self.overload_rejections += 1

    def record_abandoned(self) -> None:
        """Account one queued request whose future was already resolved
        at dispatch time (its client disconnected); no forward was spent
        on it."""
        with self._lock:
            self.abandoned += 1

    def record_breaker_block(self, requests: int = 1) -> None:
        """Account requests diverted by an open circuit breaker (they
        resolve via the degradation path, not the executor)."""
        with self._lock:
            self.breaker_blocks += requests

    # ------------------------------------------------------------------ #
    # placement transitions
    # ------------------------------------------------------------------ #

    def record_placement_change(self, moves: int = 0) -> None:
        """Account one applied rebalance plan (``moves`` buckets moved)."""
        with self._lock:
            self.placement_changes += 1
            self.placement_moves += moves

    def reset_shards(self, shards) -> None:
        """Drop the listed shards' accumulated counters and latency
        windows. A rebalance changed what these shards serve, so their
        history (volume, occupancy, tails) no longer describes the new
        assignment; fresh entries accumulate from the next response."""
        with self._lock:
            for shard in shards:
                self._shards.pop(int(shard), None)

    def relabel_shards(self, mapping: dict) -> None:
        """Merge each source shard's counters into its destination.

        The migration relabeling half of a shard-count shrink: a retired
        shard's heir (the survivor that inherited its buckets) absorbs
        its volume counters and latency samples, so service-lifetime
        totals are conserved across the migration. Sources disappear
        from the breakdown; destinations are created if absent. The
        whole merge happens under the stats lock, so concurrent readers
        see either the old labels or the new — never a torn mixture.
        """
        with self._lock:
            for source, dest in mapping.items():
                stats = self._shards.pop(int(source), None)
                if stats is None:
                    continue
                heir = self._shard(int(dest))
                heir.requests += stats.requests
                heir.errors += stats.errors
                heir.forwards += stats.forwards
                heir.latencies.extend(stats.latencies)

    @staticmethod
    def empty_version_entry() -> dict[str, float]:
        """A zeroed per-version entry (versions with no routed traffic)."""
        return {
            "served": 0.0,
            "canary": 0.0,
            "shadow": 0.0,
            "errors": 0.0,
            "shadow_errors": 0.0,
        }

    def version_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-version routing volume: ``served`` (response path),
        ``canary`` (staged-version slice of it), ``shadow`` (off-path
        scores), and their error counts."""
        with self._lock:
            return {
                version: {
                    "served": float(stats.served),
                    "canary": float(stats.canary),
                    "shadow": float(stats.shadow),
                    "errors": float(stats.errors),
                    "shadow_errors": float(stats.shadow_errors),
                }
                for version, stats in sorted(self._versions.items())
            }

    @staticmethod
    def empty_shard_entry() -> dict[str, float]:
        """A zeroed per-shard entry (shards that saw no traffic yet)."""
        return {
            "requests": 0.0,
            "errors": 0.0,
            "forwards": 0.0,
            "requests_per_forward": 0.0,
            "latency_p50_s": 0.0,
            "latency_p99_s": 0.0,
            "latency_max_s": 0.0,
        }

    def shard_snapshot(self) -> dict[str, dict[str, float]]:
        """Per-shard metrics: volume, occupancy, and latency tails.

        Keys are shard ids as strings (JSON-friendly); each value holds
        ``requests``, ``errors``, ``forwards``, ``requests_per_forward``
        (per-shard coalescing occupancy), and
        ``latency_{p50,p99,max}_s``.
        """
        with self._lock:
            out: dict[str, dict[str, float]] = {}
            for shard in sorted(self._shards):
                stats = self._shards[shard]
                latency = latency_percentiles(stats.latencies)
                out[str(shard)] = {
                    "requests": float(stats.requests),
                    "errors": float(stats.errors),
                    "forwards": float(stats.forwards),
                    "requests_per_forward": (
                        stats.requests / stats.forwards if stats.forwards else 0.0
                    ),
                    "latency_p50_s": latency.p50,
                    "latency_p99_s": latency.p99,
                    "latency_max_s": latency.max,
                }
            return out

    def slo_window(self, target_s: float) -> dict[str, float]:
        """The raw SLO inputs over the retained latency window.

        Returns the window size, the fraction of windowed responses
        slower than ``target_s``, and the latency EWMA. The burn-rate
        math itself lives with the telemetry registry — this layer only
        reports what it measured.
        """
        with self._lock:
            window = len(self._latencies)
            violations = sum(1 for v in self._latencies if v > target_s)
            return {
                "window": float(window),
                "violation_fraction": violations / window if window else 0.0,
                "latency_ewma_s": (
                    self._latency_ewma if self._latency_ewma is not None else 0.0
                ),
            }

    def register_into(self, registry) -> None:
        """Contribute the flat serving snapshot to a telemetry registry.

        Duck-typed (``register_collector`` / ``mark_counter``) so the
        evaluation layer keeps zero imports on the serving package. The
        resilience counters (``degraded``, ``deadline_expired``,
        ``overload_rejections``, ``breaker_blocks``) become first-class
        counter-typed series instead of dict entries consumers must dig
        out of nested snapshots.
        """
        registry.register_collector("serving_stats", self.snapshot)
        registry.mark_counter(
            "requests",
            "errors",
            "cache_hits",
            "batches",
            "model_forwards",
            "shadow_forwards",
            "cache_hit_shadows",
            "placement_changes",
            "placement_moves",
            "degraded",
            "deadline_expired",
            "overload_rejections",
            "abandoned",
            "breaker_blocks",
        )

    def snapshot(self) -> dict[str, float]:
        """Current metrics as a flat dict.

        Keys: ``requests``, ``errors``, ``qps`` (over the stats object's
        lifetime), ``cache_hit_rate``, ``batches``, ``batch_occupancy``
        (mean coalesced requests per micro-batch), ``model_forwards``,
        ``requests_per_forward``, and ``latency_{mean,p50,p90,p99,max}_s``.
        """
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            latency = latency_percentiles(self._latencies)
            return {
                "requests": float(self.requests),
                "errors": float(self.errors),
                "qps": self.requests / elapsed,
                "cache_hits": float(self.cache_hits),
                "cache_hit_rate": self.cache_hits / self.requests if self.requests else 0.0,
                "batches": float(self.batches),
                "batch_occupancy": self.batched_requests / self.batches if self.batches else 0.0,
                "model_forwards": float(self.model_forwards),
                "shadow_forwards": float(self.shadow_forwards),
                "cache_hit_shadows": float(self.cache_hit_shadows),
                "placement_changes": float(self.placement_changes),
                "placement_moves": float(self.placement_moves),
                "degraded": float(self.degraded),
                "deadline_expired": float(self.deadline_expired),
                "overload_rejections": float(self.overload_rejections),
                "abandoned": float(self.abandoned),
                "breaker_blocks": float(self.breaker_blocks),
                "requests_per_forward": (
                    self.batched_requests / self.model_forwards if self.model_forwards else 0.0
                ),
                "latency_mean_s": latency.mean,
                "latency_p50_s": latency.p50,
                "latency_p90_s": latency.p90,
                "latency_p99_s": latency.p99,
                "latency_max_s": latency.max,
            }
