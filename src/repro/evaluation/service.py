"""Serving metrics: QPS, batch occupancy, cache hit rate, latency tails.

The compile-time serving tier is throughput infrastructure, so it is
evaluated like one: requests/sec, how full the micro-batches run
(occupancy is the batching win), how often the shared result cache
short-circuits a forward, and the latency distribution clients actually
see (tails, not means — a tuner blocked at p99 stalls its whole search
chain).

:class:`ServingStats` is the thread-safe accumulator the service feeds;
:func:`latency_percentiles` is the standalone helper for offline analysis
of recorded latencies.
"""
from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

#: Latency ring-buffer size: enough for stable p99 estimates, bounded so a
#: long-lived service never grows.
_LATENCY_WINDOW = 8192


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution snapshot, seconds.

    Attributes:
        count: samples summarized.
        mean / p50 / p90 / p99 / max: the usual suspects.
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float


def latency_percentiles(samples) -> LatencySummary:
    """Summarize latency samples (empty input gives an all-zero summary)."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
    p50, p90, p99 = np.percentile(arr, [50, 90, 99])
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(p50),
        p90=float(p90),
        p99=float(p99),
        max=float(arr.max()),
    )


class ServingStats:
    """Thread-safe accumulator for the service's operational metrics.

    The service calls :meth:`record_response` once per resolved request
    and :meth:`record_batch` once per executed micro-batch;
    :meth:`snapshot` renders everything into one flat dict for reports and
    benchmark JSON.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.perf_counter()
        self.requests = 0
        self.errors = 0
        self.cache_hits = 0
        self.batches = 0
        self.batched_requests = 0
        self.model_forwards = 0
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)

    def record_response(self, latency_s: float, cache_hit: bool, error: bool = False) -> None:
        """Account one resolved request."""
        with self._lock:
            self.requests += 1
            if cache_hit:
                self.cache_hits += 1
            if error:
                self.errors += 1
            self._latencies.append(latency_s)

    def record_batch(self, size: int, forwards: int = 1) -> None:
        """Account one executed micro-batch of ``size`` coalesced requests
        that cost ``forwards`` model forward passes."""
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.model_forwards += forwards

    def snapshot(self) -> dict[str, float]:
        """Current metrics as a flat dict.

        Keys: ``requests``, ``errors``, ``qps`` (over the stats object's
        lifetime), ``cache_hit_rate``, ``batches``, ``batch_occupancy``
        (mean coalesced requests per micro-batch), ``model_forwards``,
        ``requests_per_forward``, and ``latency_{mean,p50,p90,p99,max}_s``.
        """
        with self._lock:
            elapsed = max(time.perf_counter() - self._started, 1e-9)
            latency = latency_percentiles(self._latencies)
            return {
                "requests": float(self.requests),
                "errors": float(self.errors),
                "qps": self.requests / elapsed,
                "cache_hit_rate": self.cache_hits / self.requests if self.requests else 0.0,
                "batches": float(self.batches),
                "batch_occupancy": self.batched_requests / self.batches if self.batches else 0.0,
                "model_forwards": float(self.model_forwards),
                "requests_per_forward": (
                    self.batched_requests / self.model_forwards if self.model_forwards else 0.0
                ),
                "latency_mean_s": latency.mean,
                "latency_p50_s": latency.p50,
                "latency_p90_s": latency.p90,
                "latency_p99_s": latency.p99,
                "latency_max_s": latency.max,
            }
