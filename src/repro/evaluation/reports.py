"""Plain-text table rendering for benchmark outputs.

The benchmark harness prints tables in the same row/column arrangement as
the paper so measured numbers can be compared side by side with published
ones; this module owns the formatting.
"""
from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render a monospace table.

    Args:
        headers: column names.
        rows: cell values; floats are formatted with ``float_fmt``.
        title: optional line above the table.
        float_fmt: format spec applied to float cells.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    title: str,
    paper_value: float,
    measured_value: float,
    unit: str = "",
) -> str:
    """One-line paper-vs-measured comparison."""
    return (
        f"{title}: paper={paper_value:g}{unit} measured={measured_value:.2f}{unit}"
    )
