"""Tile-size autotuner (paper Sec. 7.1-7.2, Figure 4).

Modes:

* **exhaustive** — evaluate every valid tile size of every kernel on
  hardware (the autotuner's default; expensive).
* **model top-k** — a cost model (learned or analytical) ranks candidates
  and only the top ``k`` per kernel run on hardware ('Learned model 10',
  'Analytical 10').
* **model top-1 / in-compiler** — the model's single best tile is used
  directly with no hardware at all ('Learned model 1', and the compiler's
  own behaviour with the analytical model).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig, TilingParams, default_tile, enumerate_tile_sizes
from .evaluators import HardwareEvaluator, TileScorer


@dataclass
class TileTuningResult:
    """Outcome of tuning one program's kernels.

    Attributes:
        tiles: chosen tile per kernel.
        program_runtime: true total runtime under the chosen tiles.
        default_runtime: true total runtime under the compiler-default
            tiles (speedup denominator in Fig. 4).
        hardware_evaluations: kernel executions spent.
    """

    tiles: list[TileConfig]
    program_runtime: float
    default_runtime: float
    hardware_evaluations: int

    @property
    def speedup(self) -> float:
        """Speedup over the default tile configuration."""
        return self.default_runtime / max(self.program_runtime, 1e-30)


def _default_runtime(kernels: list[Kernel], hardware: HardwareEvaluator) -> float:
    """True runtime under default tiles — measured outside the budget."""
    sim = hardware.simulator
    return sum(sim.run(k, default_tile(k)) for k in kernels)


def exhaustive_tile_autotune(
    kernels: list[Kernel],
    hardware: HardwareEvaluator,
    tiling: TilingParams | None = None,
) -> TileTuningResult:
    """Evaluate all candidate tiles of every kernel on hardware."""
    chosen: list[TileConfig] = []
    total = 0.0
    for kernel in kernels:
        candidates = enumerate_tile_sizes(kernel, tiling)
        runtimes = [hardware.kernel_runtime(kernel, t) for t in candidates]
        best = int(np.argmin(runtimes))
        chosen.append(candidates[best])
        total += hardware.simulator.run(kernel, candidates[best])
    return TileTuningResult(
        tiles=chosen,
        program_runtime=total,
        default_runtime=_default_runtime(kernels, hardware),
        hardware_evaluations=hardware.evaluations,
    )


def model_tile_autotune(
    kernels: list[Kernel],
    model: TileScorer,
    hardware: HardwareEvaluator,
    top_k: int = 10,
    tiling: TilingParams | None = None,
) -> TileTuningResult:
    """Model-guided tuning: the model ranks, hardware verifies the top k.

    With ``top_k=1`` this is direct compiler integration: the model's
    choice is used as-is and zero hardware evaluations are spent.

    ``model`` is any :class:`~repro.autotuner.evaluators.TileScorer` —
    learned, analytical, or a serving-layer ``ServiceEvaluator`` sharing
    one warm model across many tuner processes.
    """
    chosen: list[TileConfig] = []
    total = 0.0
    # Population-level scoring: one model forward per kernel's candidate set
    # (and cached graph features for learned evaluators).
    for kernel in kernels:
        candidates = enumerate_tile_sizes(kernel, tiling)
        scorer = getattr(model, "score_tiles_batched", model.tile_scores)
        scores = np.asarray(scorer(kernel, candidates))
        order = np.argsort(scores, kind="stable")[: max(top_k, 1)]
        if top_k <= 1:
            pick = candidates[int(order[0])]
        else:
            runtimes = [hardware.kernel_runtime(kernel, candidates[int(i)]) for i in order]
            pick = candidates[int(order[int(np.argmin(runtimes))])]
        chosen.append(pick)
        total += hardware.simulator.run(kernel, pick)
    return TileTuningResult(
        tiles=chosen,
        program_runtime=total,
        default_runtime=_default_runtime(kernels, hardware),
        hardware_evaluations=hardware.evaluations,
    )
