"""Fusion autotuner (paper Sec. 7.3, Figure 5).

Searches the per-edge fusion-decision space with simulated annealing.
Two operating modes:

* **hardware-only** ('HW m'): every candidate configuration is compiled
  and run on the (simulated) TPU, under a budget of program evaluations —
  the analogue of "evaluates fusion configurations on real hardware for
  m minutes".
* **cost model + hardware** ('Cost model + HW m'): simulated annealing
  runs against the learned model (cheap, large budget — "on a CPU for an
  hour"), then the most promising distinct configurations are verified on
  hardware in predicted-cost order under a small hardware budget.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.fusion import FusionConfig, FusionParams, default_fusion, fuse_program, fusible_edges
from ..hlo.graph import Graph, Program
from .evaluators import HardwareEvaluator, ProgramCostModel
from .search import (
    SearchResult,
    genetic_search,
    parallel_annealing,
    random_search,
    simulated_annealing,
)


@dataclass
class FusionTuningResult:
    """Outcome of tuning one program's fusion configuration.

    Attributes:
        config: best configuration found.
        runtime: its true program runtime (seconds).
        default_runtime: true runtime of the compiler's default fusion.
        hardware_program_evaluations: whole-program hardware runs spent.
        model_evaluations: cost-model program evaluations spent (0 for the
            hardware-only tuner).
    """

    config: FusionConfig
    runtime: float
    default_runtime: float
    hardware_program_evaluations: int
    model_evaluations: int

    @property
    def speedup(self) -> float:
        """Speedup over the compiler's default fusion configuration."""
        return self.default_runtime / max(self.runtime, 1e-30)


def _true_runtime(program: Program, config: FusionConfig | None, hardware: HardwareEvaluator, params: FusionParams) -> float:
    kernels = fuse_program(program.graph, config=config, params=params, program_name=program.name)
    return hardware.simulator.run_program(kernels)


def _neighbor(config: FusionConfig, rng: np.random.Generator) -> FusionConfig:
    """SA proposal: flip 1-3 random edge decisions."""
    return config.mutate(rng, num_flips=int(rng.integers(1, 4)))


def _crossover(a: FusionConfig, b: FusionConfig, rng: np.random.Generator) -> FusionConfig:
    """Uniform crossover: each edge decision drawn from either parent."""
    mask = rng.random(len(a.decisions)) < 0.5
    return FusionConfig(
        tuple(da if m else db for da, db, m in zip(a.decisions, b.decisions, mask))
    )


def hardware_fusion_autotune(
    program: Program,
    hardware: HardwareEvaluator,
    budget: int = 50,
    params: FusionParams | None = None,
    seed: int = 0,
    start: FusionConfig | None = None,
) -> FusionTuningResult:
    """Hardware-only simulated annealing ('HW m' bars of Fig. 5).

    Args:
        program: program to tune.
        hardware: metered hardware evaluator.
        budget: number of whole-program hardware evaluations allowed.
        params: fusion legality knobs.
        seed: SA randomness.
        start: starting configuration; default = compiler heuristic (the
            paper also reports starts from a random configuration).
    """
    params = params or FusionParams()
    rng = np.random.default_rng(seed)
    initial = start if start is not None else default_fusion(program.graph, params)
    evaluations = 0

    def cost(config: FusionConfig) -> float:
        nonlocal evaluations
        evaluations += 1
        kernels = fuse_program(program.graph, config=config, params=params, program_name=program.name)
        return hardware.program_runtime(kernels)

    result = simulated_annealing(initial, cost, _neighbor, steps=budget - 1, rng=rng)
    default_rt = _true_runtime(program, None, hardware, params)
    best_rt = _true_runtime(program, result.best_state, hardware, params)
    return FusionTuningResult(
        config=result.best_state,
        runtime=best_rt,
        default_runtime=default_rt,
        hardware_program_evaluations=evaluations,
        model_evaluations=0,
    )


def model_fusion_autotune(
    program: Program,
    learned: ProgramCostModel,
    hardware: HardwareEvaluator,
    model_budget: int = 400,
    hardware_budget: int = 5,
    params: FusionParams | None = None,
    seed: int = 0,
    start: FusionConfig | None = None,
    chains: int = 1,
    strategy: str = "annealing",
) -> FusionTuningResult:
    """Learned-model-guided tuning ('Cost model + HW m' bars of Fig. 5).

    A search strategy explores ``model_budget`` configurations priced by
    the learned model; the distinct configurations are then verified on
    hardware in predicted-cost order, spending ``hardware_budget``
    whole-program runs; the best verified configuration wins.

    ``strategy`` selects the explorer (paper Fig. 1 lists all three):

    * ``"annealing"`` (default) — simulated annealing from the compiler
      default. With ``chains > 1`` the budget is spent by
      :func:`repro.autotuner.search.parallel_annealing`: independent
      chains step in lockstep and every step's proposals are priced in a
      single batched model call.
    * ``"genetic"`` — elitist genetic search over edge decisions, each
      generation's offspring priced in one batched call.
    * ``"random"`` — independent random configurations, priced in one
      batched call.

    All batched paths go through
    :meth:`LearnedEvaluator.program_runtimes_batched`, which dedupes
    shared kernels across the population — much higher model-query
    throughput for the same total budget.
    """
    params = params or FusionParams()
    rng = np.random.default_rng(seed)
    initial = start if start is not None else default_fusion(program.graph, params)
    model_evals = 0

    def _fused(config: FusionConfig):
        return fuse_program(program.graph, config=config, params=params, program_name=program.name)

    def model_cost(config: FusionConfig) -> float:
        nonlocal model_evals
        model_evals += 1
        return learned.program_runtime(_fused(config))

    def model_cost_batch(configs: list[FusionConfig]) -> np.ndarray:
        nonlocal model_evals
        model_evals += len(configs)
        return learned.program_runtimes_batched([_fused(c) for c in configs])

    if strategy == "random" or (strategy == "genetic" and model_budget < 2):
        # A genetic population needs at least two members; below that the
        # budget only buys independent samples anyway.
        num_edges = len(initial.decisions)
        search = random_search(
            lambda r: FusionConfig.random(num_edges, r),
            model_cost,
            steps=model_budget,
            rng=rng,
            batch_cost_fn=model_cost_batch,
        )
    elif strategy == "genetic":
        # Spend at most model_budget evaluations: the initial population
        # costs `population`, every later generation `population - elite`.
        population = min(16, max(model_budget, 2))
        elite = max(population // 4, 1)
        num_edges = len(initial.decisions)
        generations = max((model_budget - population) // (population - elite), 0)
        search = genetic_search(
            lambda r: FusionConfig.random(num_edges, r),
            model_cost,
            _crossover,
            _neighbor,
            rng=rng,
            population=population,
            generations=generations,
            elite=elite,
            batch_cost_fn=model_cost_batch,
        )
    elif strategy != "annealing":
        raise ValueError(f"unknown strategy {strategy!r}")
    elif chains > 1:
        # Never overspend the metered budget: each chain costs one initial
        # evaluation plus one per step, so cap the chain count at the budget
        # and round the remaining budget down to a whole number of steps
        # (with chains > 1 up to chains-1 evaluations of a non-divisible
        # budget go unspent; model_evaluations reports the exact spend).
        n_chains = min(chains, max(model_budget, 1))
        initials = [initial] + [_neighbor(initial, rng) for _ in range(n_chains - 1)]
        steps = max(model_budget // n_chains - 1, 0)
        search = parallel_annealing(
            initials, model_cost_batch, _neighbor, steps=steps, rng=rng
        )
    else:
        search = simulated_annealing(initial, model_cost, _neighbor, steps=model_budget - 1, rng=rng)

    # Rank distinct visited configs by predicted cost; verify top ones on HW.
    seen: dict[tuple[bool, ...], float] = {}
    for config, cost in search.visited:
        key = config.decisions
        if key not in seen or cost < seen[key]:
            seen[key] = cost
    ranked = sorted(seen.items(), key=lambda kv: kv[1])[:hardware_budget]
    hw_evals = 0
    best_config = initial
    best_rt = float("inf")
    for decisions, _ in ranked:
        config = FusionConfig(decisions)
        kernels = fuse_program(program.graph, config=config, params=params, program_name=program.name)
        rt = hardware.program_runtime(kernels)
        hw_evals += 1
        if rt < best_rt:
            best_rt, best_config = rt, config
    default_rt = _true_runtime(program, None, hardware, params)
    # Never return a configuration verified to be worse than the starting
    # point — strategies seeded away from the compiler default ("random",
    # "genetic") can otherwise hand back a regression when the model
    # misranks and the hardware budget is small.
    start_rt = default_rt if start is None else _true_runtime(program, start, hardware, params)
    if start_rt < best_rt:
        best_config, best_rt = initial, start_rt
    return FusionTuningResult(
        config=best_config,
        runtime=_true_runtime(program, best_config, hardware, params),
        default_runtime=default_rt,
        hardware_program_evaluations=hw_evals,
        model_evaluations=model_evals,
    )
