"""Compiler autotuner: evaluators, search strategies, tile & fusion tuners."""
from .evaluators import (
    AnalyticalEvaluator,
    HardwareEvaluator,
    LearnedEvaluator,
    ProgramCostModel,
    TileScorer,
)
from .fusion_tuner import (
    FusionTuningResult,
    hardware_fusion_autotune,
    model_fusion_autotune,
)
from .search import (
    SearchResult,
    genetic_search,
    parallel_annealing,
    random_search,
    simulated_annealing,
)
from .tile import TileTuningResult, exhaustive_tile_autotune, model_tile_autotune

__all__ = [
    "AnalyticalEvaluator",
    "FusionTuningResult",
    "HardwareEvaluator",
    "LearnedEvaluator",
    "ProgramCostModel",
    "SearchResult",
    "TileScorer",
    "TileTuningResult",
    "exhaustive_tile_autotune",
    "genetic_search",
    "hardware_fusion_autotune",
    "model_fusion_autotune",
    "model_tile_autotune",
    "parallel_annealing",
    "random_search",
    "simulated_annealing",
]
