"""Cost evaluators the autotuner can plug in (paper Fig. 1).

Three ways to price a candidate configuration: run it on the (simulated)
hardware, ask the hand-tuned analytical model, or ask the learned model.
The hardware evaluator meters its use — the entire point of the paper's
Sec. 7 experiments is trading scarce hardware evaluations for cheap model
evaluations.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig, default_tile
from ..data.batching import Scalers, assemble_batch
from ..data.features import extract_kernel_features, tile_features
from ..models.model import LearnedPerformanceModel
from ..tpu.analytical import AnalyticalModel, CalibratedAnalyticalModel
from ..tpu.simulator import TpuSimulator


class HardwareEvaluator:
    """Executes (kernel, tile) pairs on the simulated TPU, with metering.

    Attributes:
        evaluations: number of kernel executions performed so far — the
            scarce-resource budget of Figures 4 and 5.
    """

    def __init__(self, simulator: TpuSimulator | None = None, rng: np.random.Generator | None = None) -> None:
        self.simulator = simulator or TpuSimulator()
        self.rng = rng
        self.evaluations = 0

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Measure one kernel (counts against the budget)."""
        self.evaluations += 1
        if self.rng is not None:
            return self.simulator.measure(kernel, tile, rng=self.rng)
        return self.simulator.run(kernel, tile)

    def program_runtime(self, kernels: list[Kernel], tiles: list[TileConfig] | None = None) -> float:
        """Measure a whole program (counts one evaluation per kernel)."""
        if tiles is None:
            tiles = [default_tile(k) for k in kernels]
        return sum(self.kernel_runtime(k, t) for k, t in zip(kernels, tiles))


class AnalyticalEvaluator:
    """Prices tiles with the hand-tuned analytical model (free, no meter)."""

    def __init__(self, model: AnalyticalModel | CalibratedAnalyticalModel | None = None) -> None:
        self.model = model or AnalyticalModel()

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Estimated runtimes (ranking scores) for candidate tiles."""
        return np.asarray([self.model.estimate(kernel, t) for t in tiles])

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Absolute estimate (only meaningful for a calibrated model)."""
        tile = tile or default_tile(kernel)
        return float(self.model.estimate(kernel, tile))


@dataclass
class LearnedEvaluator:
    """Prices kernels/tiles with a trained learned model.

    Args:
        model: trained :class:`LearnedPerformanceModel`.
        scalers: the feature scalers fitted at training time.
        cache: memoize per-kernel predictions by fingerprint (the fusion
            autotuner re-visits the same kernels across configurations
            constantly).
    """

    model: LearnedPerformanceModel
    scalers: Scalers
    cache: bool = True

    def __post_init__(self) -> None:
        self._memo: dict[str, float] = {}

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Rank scores for candidate tiles of one kernel (lower = faster)."""
        features = extract_kernel_features(kernel)
        items = [(features, tile_features(t), 0.0, 0) for t in tiles]
        batch = assemble_batch(items, self.scalers, neighbor_cap=self.model.config.neighbor_cap)
        return self.model.predict(batch)

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Predicted absolute runtime in seconds (fusion-task models)."""
        fp = kernel.fingerprint() if self.cache else None
        if fp is not None and fp in self._memo:
            return self._memo[fp]
        features = extract_kernel_features(kernel)
        items = [(features, None, 0.0, 0)]
        batch = assemble_batch(items, self.scalers, neighbor_cap=self.model.config.neighbor_cap)
        value = float(self.model.predict_runtimes(batch)[0])
        if fp is not None:
            self._memo[fp] = value
        return value

    def program_runtime(self, kernels: list[Kernel]) -> float:
        """Predicted program runtime: sum of kernel predictions (batched)."""
        if not self.cache:
            items = [(extract_kernel_features(k), None, 0.0, i) for i, k in enumerate(kernels)]
            batch = assemble_batch(items, self.scalers, neighbor_cap=self.model.config.neighbor_cap)
            return float(self.model.predict_runtimes(batch).sum())
        missing = [k for k in kernels if k.fingerprint() not in self._memo]
        if missing:
            items = [(extract_kernel_features(k), None, 0.0, i) for i, k in enumerate(missing)]
            batch = assemble_batch(items, self.scalers, neighbor_cap=self.model.config.neighbor_cap)
            preds = self.model.predict_runtimes(batch)
            for k, p in zip(missing, preds):
                self._memo[k.fingerprint()] = float(p)
        return sum(self._memo[k.fingerprint()] for k in kernels)
