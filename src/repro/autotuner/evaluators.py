"""Cost evaluators the autotuner can plug in (paper Fig. 1).

Three ways to price a candidate configuration: run it on the (simulated)
hardware, ask the hand-tuned analytical model, or ask the learned model.
The hardware evaluator meters its use — the entire point of the paper's
Sec. 7 experiments is trading scarce hardware evaluations for cheap model
evaluations.
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig, default_tile
from ..data.batching import BatchItem, GraphBatch, KernelCache, Scalers, assemble_batch
from ..data.features import KernelFeatures, extract_kernel_features, tile_features
from ..models.model import LearnedPerformanceModel
from ..tpu.analytical import AnalyticalModel, CalibratedAnalyticalModel
from ..tpu.simulator import TpuSimulator


@runtime_checkable
class TileScorer(Protocol):
    """Anything that can rank candidate tiles of one kernel.

    The tuners dispatch on this shape (``model_tile_autotune`` prefers
    :meth:`score_tiles_batched` when present) — satisfied by
    :class:`LearnedEvaluator`, :class:`AnalyticalEvaluator`, and the
    serving layer's ``ServiceEvaluator``.
    """

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray: ...


@runtime_checkable
class ProgramCostModel(Protocol):
    """Anything that can price whole programs (lists of kernels).

    ``model_fusion_autotune`` consumes this shape; batched strategies call
    :meth:`program_runtimes_batched` with whole candidate populations.
    """

    def program_runtime(self, kernels: list[Kernel]) -> float: ...

    def program_runtimes_batched(self, programs: list[list[Kernel]]) -> np.ndarray: ...


class HardwareEvaluator:
    """Executes (kernel, tile) pairs on the simulated TPU, with metering.

    Attributes:
        evaluations: number of kernel executions performed so far — the
            scarce-resource budget of Figures 4 and 5.
    """

    def __init__(self, simulator: TpuSimulator | None = None, rng: np.random.Generator | None = None) -> None:
        self.simulator = simulator or TpuSimulator()
        self.rng = rng
        self.evaluations = 0

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Measure one kernel (counts against the budget)."""
        self.evaluations += 1
        if self.rng is not None:
            return self.simulator.measure(kernel, tile, rng=self.rng)
        return self.simulator.run(kernel, tile)

    def program_runtime(self, kernels: list[Kernel], tiles: list[TileConfig] | None = None) -> float:
        """Measure a whole program (counts one evaluation per kernel)."""
        if tiles is None:
            tiles = [default_tile(k) for k in kernels]
        return sum(self.kernel_runtime(k, t) for k, t in zip(kernels, tiles))


class AnalyticalEvaluator:
    """Prices tiles with the hand-tuned analytical model (free, no meter)."""

    def __init__(self, model: AnalyticalModel | CalibratedAnalyticalModel | None = None) -> None:
        self.model = model or AnalyticalModel()

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Estimated runtimes (ranking scores) for candidate tiles."""
        return np.asarray([self.model.estimate(kernel, t) for t in tiles])

    def score_tiles_batched(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Population-level scoring hook (same result as :meth:`tile_scores`)."""
        return self.tile_scores(kernel, tiles)

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Absolute estimate (only meaningful for a calibrated model)."""
        tile = tile or default_tile(kernel)
        return float(self.model.estimate(kernel, tile))


@dataclass
class LearnedEvaluator:
    """Prices kernels/tiles with a trained learned model.

    Args:
        model: trained :class:`LearnedPerformanceModel`.
        scalers: the feature scalers fitted at training time.
        cache: memoize per-kernel predictions by fingerprint (the fusion
            autotuner re-visits the same kernels across configurations
            constantly). Also enables the fingerprint-keyed feature memo
            and the :class:`~repro.data.batching.KernelCache` fast path —
            scaled features and normalized adjacencies are computed once
            per distinct kernel, not once per query batch.

    Cache-hit metering (for the Fig. 4/5 budget accounting — model queries
    are "free" relative to hardware runs, but cached queries are *freer*):
    ``feature_cache_hits`` / ``feature_cache_misses`` count fingerprint-memo
    lookups; ``batch_cache`` exposes the kernel-precompute cache with its
    own ``hits`` / ``misses`` counters.
    """

    model: LearnedPerformanceModel
    scalers: Scalers
    cache: bool = True
    #: Bound on cached per-kernel precomputes/features. The fusion tuner
    #: feeds an open-ended stream of distinct fused kernels, so unbounded
    #: caches would grow with the search budget; LRU-evicted kernels are
    #: recomputed on next sight.
    max_cached_kernels: int = 1024
    #: Bound on the fingerprint -> predicted-runtime memo; ``None`` means
    #: 16x ``max_cached_kernels`` (entries are tiny relative to precompute
    #: entries, but re-pricing an evicted kernel costs a model forward).
    max_cached_predictions: int | None = None
    #: Externally shared :class:`~repro.data.batching.KernelCache`; ``None``
    #: builds a private one. Sharing lets several evaluators (e.g. serving
    #: replicas over one checkpoint) reuse each other's per-kernel
    #: precomputes — the cache must have been built with these ``scalers``
    #: and this model's ``neighbor_cap``.
    batch_cache: KernelCache | None = None

    def __post_init__(self) -> None:
        # Prediction memo: entries are tiny (fingerprint -> float) but the
        # kernel stream is open-ended, so bound it too — at a multiple of
        # the precompute caches since re-pricing costs a model forward.
        self._memo: "OrderedDict[str, float]" = OrderedDict()
        if self.max_cached_predictions is None:
            self.max_cached_predictions = 16 * self.max_cached_kernels
        self._memo_cap = self.max_cached_predictions
        self._features_memo: "OrderedDict[str, KernelFeatures]" = OrderedDict()
        if self.batch_cache is None:
            self.batch_cache = KernelCache(
                self.scalers,
                neighbor_cap=self.model.config.neighbor_cap,
                max_entries=self.max_cached_kernels,
            )
        self.feature_cache_hits = 0
        self.feature_cache_misses = 0
        self.feature_cache_evictions = 0
        self.prediction_memo_hits = 0
        self.prediction_memo_misses = 0
        self.prediction_memo_evictions = 0

    @classmethod
    def from_checkpoint_bytes(cls, blob: bytes, **kwargs) -> "LearnedEvaluator":
        """Build a warm evaluator straight from checkpoint blob bytes.

        ``blob`` is the sealed form produced by
        :func:`repro.models.serialize.save_model_bytes` — exactly what a
        :class:`~repro.serving.ModelRegistry` ships to executor worker
        processes and remote nodes. Integrity failures raise the typed
        ``ModelBlobError`` before any model state is touched.
        """
        from ..models.serialize import load_model_bytes

        result = load_model_bytes(blob)
        return cls(result.model, result.scalers, **kwargs)

    def stats(self) -> dict[str, int]:
        """Cache counter snapshot (the serving metrics layer reads this).

        Keys: ``feature_*`` cover the fingerprint -> features memo,
        ``prediction_*`` the fingerprint -> runtime memo, and ``batch_*``
        the per-kernel precompute cache (hits/misses/evictions each, plus
        current sizes).
        """
        batch = self.batch_cache.stats()
        return {
            "feature_entries": len(self._features_memo),
            "feature_hits": self.feature_cache_hits,
            "feature_misses": self.feature_cache_misses,
            "feature_evictions": self.feature_cache_evictions,
            "prediction_entries": len(self._memo),
            "prediction_hits": self.prediction_memo_hits,
            "prediction_misses": self.prediction_memo_misses,
            "prediction_evictions": self.prediction_memo_evictions,
            **{f"batch_{k}": v for k, v in batch.items()},
        }

    def _features(self, kernel: Kernel) -> KernelFeatures:
        """Extract kernel features, deduped by fingerprint when caching."""
        if not self.cache:
            return extract_kernel_features(kernel)
        fp = kernel.fingerprint()
        features = self._features_memo.get(fp)
        if features is not None:
            self.feature_cache_hits += 1
            self._features_memo.move_to_end(fp)
            return features
        self.feature_cache_misses += 1
        features = extract_kernel_features(kernel)
        self._features_memo[fp] = features
        while len(self._features_memo) > self.max_cached_kernels:
            self._features_memo.popitem(last=False)
            self.feature_cache_evictions += 1
        return features

    def _remember(self, fingerprint: str, value: float) -> None:
        """Record a per-kernel prediction, evicting oldest beyond the cap."""
        self._memo[fingerprint] = value
        while len(self._memo) > self._memo_cap:
            self._memo.popitem(last=False)
            self.prediction_memo_evictions += 1

    def _assemble(self, items: list[BatchItem]) -> GraphBatch:
        """Compose a batch via the kernel cache (or cold when disabled)."""
        if self.cache:
            return self.batch_cache.assemble(items)
        return assemble_batch(items, self.scalers, neighbor_cap=self.model.config.neighbor_cap)

    def tile_scores(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Rank scores for candidate tiles of one kernel (lower = faster)."""
        features = self._features(kernel)
        items = [(features, tile_features(t), 0.0, 0) for t in tiles]
        return self.model.predict(self._assemble(items))

    def score_tiles_batched(self, kernel: Kernel, tiles: list[TileConfig]) -> np.ndarray:
        """Population-level tile scoring entry point (empty-safe).

        Delegates to :meth:`tile_scores`, which already implements the
        batched path — graph features extracted/scaled/normalized once per
        kernel via the caches, all candidate tiles in one forward pass
        sharing the cached adjacency blocks. This name is the stable
        protocol hook search strategies dispatch on (see
        ``model_tile_autotune``) and additionally accepts an empty
        candidate list.
        """
        if not tiles:
            return np.zeros(0, dtype=np.float32)
        return self.tile_scores(kernel, tiles)

    def score_tile_groups(
        self, groups: list[tuple[Kernel, list[TileConfig]]]
    ) -> list[np.ndarray]:
        """Score several kernels' candidate tiles in **one** forward pass.

        The cross-kernel analogue of :meth:`score_tiles_batched`: every
        (kernel, tile) pair becomes one batch item — the same multi-kernel
        assembly the trainer and :meth:`program_runtimes_batched` use — so
        N kernels' populations cost one forward instead of N. Returns one
        score array per group, in order. With a single group this is
        bitwise-identical to :meth:`score_tiles_batched`; multiple groups
        change the batch shape, which moves scores only at float32 BLAS
        rounding level (the serving layer's sharded executor exploits
        this to amortize per-forward fixed costs).
        """
        items: list[BatchItem] = []
        counts: list[int] = []
        for group_index, (kernel, tiles) in enumerate(groups):
            features = self._features(kernel)
            items.extend(
                (features, tile_features(t), 0.0, group_index) for t in tiles
            )
            counts.append(len(tiles))
        if not items:
            return [np.zeros(0, dtype=np.float32) for _ in groups]
        scores = self.model.predict(self._assemble(items))
        out: list[np.ndarray] = []
        offset = 0
        for n in counts:
            out.append(np.asarray(scores[offset:offset + n]))
            offset += n
        return out

    def kernel_runtime(self, kernel: Kernel, tile: TileConfig | None = None) -> float:
        """Predicted absolute runtime in seconds (fusion-task models)."""
        fp = kernel.fingerprint() if self.cache else None
        if fp is not None and fp in self._memo:
            self.prediction_memo_hits += 1
            return self._memo[fp]
        items = [(self._features(kernel), None, 0.0, 0)]
        value = float(self.model.predict_runtimes(self._assemble(items))[0])
        if fp is not None:
            self.prediction_memo_misses += 1
            self._remember(fp, value)
        return value

    def _price_kernels(self, kernels: list[Kernel]) -> dict[str, float]:
        """Predicted runtime per unique kernel fingerprint.

        Reads through the prediction memo, prices all still-unpriced
        kernels in one batched forward, and returns a *local* price map —
        robust to memo eviction mid-call (the memo is LRU-bounded).
        """
        prices: dict[str, float] = {}
        unique: dict[str, Kernel] = {}
        for k in kernels:
            fp = k.fingerprint()
            if fp in prices or fp in unique:
                continue
            cached = self._memo.get(fp) if self.cache else None
            if cached is not None:
                self.prediction_memo_hits += 1
                prices[fp] = cached
            else:
                if self.cache:
                    self.prediction_memo_misses += 1
                unique[fp] = k
        if unique:
            missing = list(unique.values())
            items = [(self._features(k), None, 0.0, i) for i, k in enumerate(missing)]
            preds = self.model.predict_runtimes(self._assemble(items))
            for k, p in zip(missing, preds):
                prices[k.fingerprint()] = float(p)
                if self.cache:
                    self._remember(k.fingerprint(), float(p))
        return prices

    def program_runtime(self, kernels: list[Kernel]) -> float:
        """Predicted program runtime: sum of kernel predictions (batched)."""
        prices = self._price_kernels(kernels)
        return sum(prices[k.fingerprint()] for k in kernels)

    def program_runtimes_batched(self, programs: list[list[Kernel]]) -> np.ndarray:
        """Predicted runtimes for many candidate programs in one forward.

        Deduplicates kernels by fingerprint across the whole population
        (fusion configurations overwhelmingly share kernels), prices every
        still-unpriced kernel in a single batched forward pass, then sums
        per program. With ``cache=True`` the per-kernel prices persist in
        the prediction memo across calls.
        """
        if not programs:
            return np.zeros(0, dtype=np.float64)
        prices = self._price_kernels([k for kernels in programs for k in kernels])
        return np.asarray(
            [sum(prices[k.fingerprint()] for k in kernels) for kernels in programs],
            dtype=np.float64,
        )
