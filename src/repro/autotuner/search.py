"""Generic search strategies for the autotuner (paper Fig. 1 lists random,
genetic, simulated annealing...; the fusion autotuner uses simulated
annealing, the dataset generator uses random search)."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

import numpy as np

S = TypeVar("S")


@dataclass
class SearchResult(Generic[S]):
    """Outcome of a search run.

    Attributes:
        best_state: lowest-cost state visited.
        best_cost: its cost.
        history: (step, cost of current state) trace.
        visited: every (state, cost) pair evaluated, in order — the hybrid
            autotuner re-ranks these for hardware verification.
    """

    best_state: S
    best_cost: float
    history: list[tuple[int, float]] = field(default_factory=list)
    visited: list[tuple[S, float]] = field(default_factory=list)


def random_search(
    sample: Callable[[np.random.Generator], S],
    cost_fn: Callable[[S], float],
    steps: int,
    rng: np.random.Generator,
) -> SearchResult[S]:
    """Independent random sampling."""
    best_state: S | None = None
    best_cost = float("inf")
    result: SearchResult[S] = SearchResult(best_state, best_cost)  # type: ignore[arg-type]
    for step in range(steps):
        state = sample(rng)
        cost = cost_fn(state)
        result.visited.append((state, cost))
        if cost < best_cost:
            best_state, best_cost = state, cost
            result.history.append((step, cost))
    result.best_state = best_state  # type: ignore[assignment]
    result.best_cost = best_cost
    return result


def simulated_annealing(
    initial: S,
    cost_fn: Callable[[S], float],
    neighbor_fn: Callable[[S, np.random.Generator], S],
    steps: int,
    rng: np.random.Generator,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
) -> SearchResult[S]:
    """Simulated annealing with geometric cooling.

    Costs are normalized by the initial cost so temperatures are scale-free.

    Args:
        initial: starting state (the compiler default or a random config).
        cost_fn: state -> cost (lower is better).
        neighbor_fn: proposal distribution.
        steps: proposal count (evaluation budget).
        rng: randomness source.
        initial_temperature / final_temperature: cooling endpoints.
    """
    current = initial
    current_cost = cost_fn(current)
    scale = max(abs(current_cost), 1e-30)
    best_state, best_cost = current, current_cost
    result: SearchResult[S] = SearchResult(best_state, best_cost)
    result.visited.append((current, current_cost))
    if steps <= 0:
        return result
    alpha = (final_temperature / initial_temperature) ** (1.0 / steps)
    temp = initial_temperature
    for step in range(steps):
        candidate = neighbor_fn(current, rng)
        cost = cost_fn(candidate)
        result.visited.append((candidate, cost))
        delta = (cost - current_cost) / scale
        if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-12)):
            current, current_cost = candidate, cost
            result.history.append((step, cost))
        if cost < best_cost:
            best_state, best_cost = candidate, cost
        temp *= alpha
    result.best_state = best_state
    result.best_cost = best_cost
    return result


def genetic_search(
    sample: Callable[[np.random.Generator], S],
    cost_fn: Callable[[S], float],
    crossover: Callable[[S, S, np.random.Generator], S],
    mutate: Callable[[S, np.random.Generator], S],
    rng: np.random.Generator,
    population: int = 16,
    generations: int = 10,
    elite: int = 4,
) -> SearchResult[S]:
    """Simple elitist genetic algorithm."""
    pop = [(s := sample(rng), cost_fn(s)) for _ in range(population)]
    result: SearchResult[S] = SearchResult(pop[0][0], pop[0][1])
    result.visited.extend(pop)
    for gen in range(generations):
        pop.sort(key=lambda t: t[1])
        result.history.append((gen, pop[0][1]))
        parents = pop[:elite]
        children = list(parents)
        while len(children) < population:
            a = parents[rng.integers(0, elite)][0]
            b = parents[rng.integers(0, elite)][0]
            child = mutate(crossover(a, b, rng), rng)
            cost = cost_fn(child)
            children.append((child, cost))
            result.visited.append((child, cost))
        pop = children
    pop.sort(key=lambda t: t[1])
    result.best_state, result.best_cost = pop[0]
    return result
