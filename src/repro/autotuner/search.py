"""Generic search strategies for the autotuner (paper Fig. 1 lists random,
genetic, simulated annealing...; the fusion autotuner uses simulated
annealing, the dataset generator uses random search).

All strategies support *population-level batched scoring*: pass
``batch_cost_fn`` (a ``list[state] -> sequence[float]`` callable) and
candidates are priced in bulk — one model forward per population instead
of one per candidate — which is how a learned cost model amortizes batch
assembly (see :meth:`repro.autotuner.LearnedEvaluator.score_tiles_batched`
/ ``program_runtimes_batched``). Because ``cost_fn`` never consumes the
rng, batched runs visit the exact same states and return the exact same
results as sequential runs. Simulated annealing is inherently sequential
(each acceptance gates the next proposal), so its batched counterpart is
:func:`parallel_annealing` — independent chains stepped in lockstep with
one batched scoring call per step.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generic, Sequence, TypeVar

import numpy as np

S = TypeVar("S")

#: Bulk scorer: prices a population of states in one call.
BatchCostFn = Callable[[list[S]], "Sequence[float] | np.ndarray"]


@dataclass
class SearchResult(Generic[S]):
    """Outcome of a search run.

    Attributes:
        best_state: lowest-cost state visited.
        best_cost: its cost.
        history: (step, cost of current state) trace.
        visited: every (state, cost) pair evaluated, in order — the hybrid
            autotuner re-ranks these for hardware verification.
    """

    best_state: S
    best_cost: float
    history: list[tuple[int, float]] = field(default_factory=list)
    visited: list[tuple[S, float]] = field(default_factory=list)


def random_search(
    sample: Callable[[np.random.Generator], S],
    cost_fn: Callable[[S], float],
    steps: int,
    rng: np.random.Generator,
    batch_cost_fn: BatchCostFn | None = None,
) -> SearchResult[S]:
    """Independent random sampling.

    With ``batch_cost_fn`` all states are drawn first and priced in one
    call; results are identical to the sequential path (``cost_fn`` does
    not consume the rng, so the draw sequence is unchanged).
    """
    best_state: S | None = None
    best_cost = float("inf")
    result: SearchResult[S] = SearchResult(best_state, best_cost)  # type: ignore[arg-type]
    if batch_cost_fn is not None:
        states = [sample(rng) for _ in range(steps)]
        costs = [float(c) for c in batch_cost_fn(states)]
    else:
        states, costs = [], []
        for _ in range(steps):
            state = sample(rng)
            states.append(state)
            costs.append(cost_fn(state))
    for step, (state, cost) in enumerate(zip(states, costs)):
        result.visited.append((state, cost))
        if cost < best_cost:
            best_state, best_cost = state, cost
            result.history.append((step, cost))
    result.best_state = best_state  # type: ignore[assignment]
    result.best_cost = best_cost
    return result


def simulated_annealing(
    initial: S,
    cost_fn: Callable[[S], float],
    neighbor_fn: Callable[[S, np.random.Generator], S],
    steps: int,
    rng: np.random.Generator,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
) -> SearchResult[S]:
    """Simulated annealing with geometric cooling.

    Costs are normalized by the initial cost so temperatures are scale-free.

    Args:
        initial: starting state (the compiler default or a random config).
        cost_fn: state -> cost (lower is better).
        neighbor_fn: proposal distribution.
        steps: proposal count (evaluation budget).
        rng: randomness source.
        initial_temperature / final_temperature: cooling endpoints.
    """
    current = initial
    current_cost = cost_fn(current)
    scale = max(abs(current_cost), 1e-30)
    best_state, best_cost = current, current_cost
    result: SearchResult[S] = SearchResult(best_state, best_cost)
    result.visited.append((current, current_cost))
    if steps <= 0:
        return result
    alpha = (final_temperature / initial_temperature) ** (1.0 / steps)
    temp = initial_temperature
    for step in range(steps):
        candidate = neighbor_fn(current, rng)
        cost = cost_fn(candidate)
        result.visited.append((candidate, cost))
        delta = (cost - current_cost) / scale
        if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-12)):
            current, current_cost = candidate, cost
            result.history.append((step, cost))
        if cost < best_cost:
            best_state, best_cost = candidate, cost
        temp *= alpha
    result.best_state = best_state
    result.best_cost = best_cost
    return result


def parallel_annealing(
    initials: list[S],
    batch_cost_fn: BatchCostFn,
    neighbor_fn: Callable[[S, np.random.Generator], S],
    steps: int,
    rng: np.random.Generator,
    initial_temperature: float = 1.0,
    final_temperature: float = 1e-3,
) -> SearchResult[S]:
    """Batched simulated annealing: independent chains in lockstep.

    Sequential annealing cannot batch within a chain (each acceptance
    gates the next proposal), so this runs ``len(initials)`` independent
    chains and prices all per-step proposals with **one**
    ``batch_cost_fn`` call — with a learned evaluator that is one model
    forward per step for the whole population. Each chain normalizes
    costs by its own initial cost and follows the same geometric cooling
    as :func:`simulated_annealing`.

    Args:
        initials: starting state per chain (diversify for coverage).
        batch_cost_fn: bulk scorer over a population of states.
        neighbor_fn: proposal distribution.
        steps: proposals *per chain*.
        rng: randomness source (shared; consumed chain-by-chain per step).
        initial_temperature / final_temperature: cooling endpoints.
    """
    if not initials:
        raise ValueError("parallel_annealing needs at least one chain")
    current = list(initials)
    current_costs = [float(c) for c in batch_cost_fn(current)]
    scales = [max(abs(c), 1e-30) for c in current_costs]
    best = int(np.argmin(current_costs))
    result: SearchResult[S] = SearchResult(current[best], current_costs[best])
    result.visited.extend(zip(current, current_costs))
    if steps <= 0:
        return result
    alpha = (final_temperature / initial_temperature) ** (1.0 / steps)
    temp = initial_temperature
    for step in range(steps):
        proposals = [neighbor_fn(s, rng) for s in current]
        costs = [float(c) for c in batch_cost_fn(proposals)]
        result.visited.extend(zip(proposals, costs))
        for i, (candidate, cost) in enumerate(zip(proposals, costs)):
            delta = (cost - current_costs[i]) / scales[i]
            if delta <= 0 or rng.random() < np.exp(-delta / max(temp, 1e-12)):
                current[i], current_costs[i] = candidate, cost
                result.history.append((step, cost))
            if cost < result.best_cost:
                result.best_state, result.best_cost = candidate, cost
        temp *= alpha
    return result


def genetic_search(
    sample: Callable[[np.random.Generator], S],
    cost_fn: Callable[[S], float],
    crossover: Callable[[S, S, np.random.Generator], S],
    mutate: Callable[[S, np.random.Generator], S],
    rng: np.random.Generator,
    population: int = 16,
    generations: int = 10,
    elite: int = 4,
    batch_cost_fn: BatchCostFn | None = None,
) -> SearchResult[S]:
    """Simple elitist genetic algorithm.

    With ``batch_cost_fn`` the initial population and each generation's
    offspring are priced in one call per generation instead of one per
    individual; selection/crossover/mutation draw from the rng in the same
    order either way, so the search trajectory is identical.
    """

    def score(states: list[S]) -> list[float]:
        if batch_cost_fn is not None:
            return [float(c) for c in batch_cost_fn(states)]
        return [cost_fn(s) for s in states]

    seeds = [sample(rng) for _ in range(population)]
    pop = list(zip(seeds, score(seeds)))
    result: SearchResult[S] = SearchResult(pop[0][0], pop[0][1])
    result.visited.extend(pop)
    for gen in range(generations):
        pop.sort(key=lambda t: t[1])
        result.history.append((gen, pop[0][1]))
        parents = pop[:elite]
        children = list(parents)
        offspring: list[S] = []
        while len(children) + len(offspring) < population:
            a = parents[rng.integers(0, elite)][0]
            b = parents[rng.integers(0, elite)][0]
            offspring.append(mutate(crossover(a, b, rng), rng))
        scored = list(zip(offspring, score(offspring)))
        children.extend(scored)
        result.visited.extend(scored)
        pop = children
    pop.sort(key=lambda t: t[1])
    result.best_state, result.best_cost = pop[0]
    return result
