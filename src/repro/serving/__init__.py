"""Cost-model serving stack: transport / scheduling / execution layers.

The paper's deployment mode — a performance model trained offline and
queried at compile time — becomes a three-layer service boundary here:

* **transport frontends** (:class:`InProcessFrontend`,
  :class:`SocketFrontend`) own request ingress; both feed the same
  scheduler, so in-process and remote traffic coalesce into shared
  micro-batches;
* the **scheduler core** (:class:`CostModelService`) owns micro-batching,
  per-batch checkpoint-version snapshots over a versioned
  :class:`ModelRegistry` (with disk spill/load), the shared
  version-scoped result cache, and serving stats;
* **execution backends** (:class:`InThreadExecutor`,
  :class:`ProcessShardExecutor`) own where the coalesced forwards run —
  in-process fingerprint-sharded replicas, or per-shard worker
  subprocesses with true parallel forwards and checkpoint shipping.

Clients (:class:`ServiceEvaluator` in-process, :class:`SocketEvaluator`
remote) speak the existing evaluator protocol, so the autotuners run
against the service unchanged.
"""
from .client import EvaluatorClient, ServiceEvaluator, SocketEvaluator
from .executors import (
    CommandResult,
    Executor,
    InThreadExecutor,
    ProcessShardExecutor,
    ProgramCommand,
    TileCommand,
    WorkerDiedError,
)
from .frontend import Frontend, InProcessFrontend, SocketFrontend
from .protocol import (
    NEED_KERNEL_PREFIX,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
    UnknownKernelError,
    WireError,
    decode_request,
    encode_request,
    kernel_interner,
    recv_frame,
    send_frame,
)
from .registry import ModelRegistry
from .replica import ReplicaPool, ResultCache, shard_of
from .scheduler import MicroBatcher, PendingRequest
from .service import EXECUTOR_CHOICES, CostModelService, ServiceConfig

__all__ = [
    "EXECUTOR_CHOICES",
    "NEED_KERNEL_PREFIX",
    "CommandResult",
    "CostModelService",
    "EvaluatorClient",
    "Executor",
    "Frontend",
    "InProcessFrontend",
    "InThreadExecutor",
    "KernelRuntimeRequest",
    "MicroBatcher",
    "ModelRegistry",
    "PendingRequest",
    "ProcessShardExecutor",
    "ProgramCommand",
    "ProgramRuntimesRequest",
    "ReplicaPool",
    "Request",
    "Response",
    "ResultCache",
    "ServiceConfig",
    "ServiceEvaluator",
    "SocketEvaluator",
    "SocketFrontend",
    "TileCommand",
    "TileScoresRequest",
    "UnknownKernelError",
    "WireError",
    "WorkerDiedError",
    "decode_request",
    "encode_request",
    "kernel_interner",
    "recv_frame",
    "send_frame",
    "shard_of",
]
