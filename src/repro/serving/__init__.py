"""Cost-model serving layer (in-process-first).

The paper's deployment mode — a performance model trained offline and
queried at compile time — becomes a service boundary here: a versioned
model registry, a micro-batching scheduler that coalesces queries from
many concurrent clients into shared forward passes, a fingerprint-sharded
replica pool with a shared result cache, and a client
(:class:`ServiceEvaluator`) that speaks the existing evaluator protocol so
the autotuners run against the service unchanged.
"""
from .client import ServiceEvaluator
from .protocol import (
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
)
from .registry import ModelRegistry
from .replica import ReplicaPool, ResultCache
from .scheduler import MicroBatcher, PendingRequest
from .service import CostModelService, ServiceConfig

__all__ = [
    "CostModelService",
    "KernelRuntimeRequest",
    "MicroBatcher",
    "ModelRegistry",
    "PendingRequest",
    "ProgramRuntimesRequest",
    "ReplicaPool",
    "Request",
    "Response",
    "ResultCache",
    "ServiceConfig",
    "ServiceEvaluator",
    "TileScoresRequest",
]
