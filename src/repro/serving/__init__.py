"""Cost-model serving stack: transport / scheduling / execution layers.

The paper's deployment mode — a performance model trained offline and
queried at compile time — becomes a three-layer service boundary here:

* **transport frontends** (:class:`InProcessFrontend`,
  :class:`SocketFrontend`) own request ingress; both feed the same
  scheduler, so in-process and remote traffic coalesce into shared
  micro-batches;
* the **scheduler core** (:class:`CostModelService`) owns micro-batching,
  per-batch checkpoint-version snapshots over a versioned
  :class:`ModelRegistry` (with disk spill/load), the shared
  version-scoped result cache, and serving stats;
* **execution backends** (:class:`InThreadExecutor`,
  :class:`ProcessShardExecutor`) own where the coalesced forwards run —
  in-process fingerprint-sharded replicas, or per-shard worker
  subprocesses with true parallel forwards and checkpoint shipping.

Clients (:class:`ServiceEvaluator` in-process, :class:`SocketEvaluator`
remote) speak the existing evaluator protocol, so the autotuners run
against the service unchanged.

On top of the serving path sits the **deployment control plane**
(:mod:`repro.serving.rollout` + :mod:`repro.serving.feedback`): rollout
policies (:class:`FullActivation`, :class:`CanaryFraction`,
:class:`ShadowScore`) choose a version per request in front of the
per-batch snapshot, a :class:`FeedbackCollector` joins served
predictions with measured runtimes into per-version accuracy windows,
and the :class:`RolloutController` promotes or rolls back staged
checkpoints from that evidence — the continuous-learning loop's
actuator.
"""
from .client import EvaluatorClient, ServiceEvaluator, SocketEvaluator
from .feedback import (
    FeedbackCollector,
    FeedbackSample,
    WindowSnapshot,
    prediction_error,
    request_key,
    tile_measurement,
)
from .executors import (
    CommandResult,
    Executor,
    InThreadExecutor,
    ProcessShardExecutor,
    ProgramCommand,
    TileCommand,
    WorkerDiedError,
)
from .frontend import Frontend, InProcessFrontend, SocketFrontend
from .placement import (
    DEFAULT_BUCKETS,
    BucketMove,
    PlacementConfig,
    PlacementController,
    RebalancePlan,
    ShardMap,
)
from .protocol import (
    NEED_KERNEL_PREFIX,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
    UnknownKernelError,
    WireError,
    decode_request,
    encode_request,
    kernel_interner,
    recv_frame,
    send_frame,
)
from .registry import ModelRegistry
from .replica import ReplicaPool, ResultCache, shard_of
from .rollout import (
    CANARY,
    IDLE,
    PROMOTED,
    ROLLED_BACK,
    ROLLOUT_STATES,
    SHADOW,
    CanaryFraction,
    FullActivation,
    RolloutConfig,
    RolloutController,
    RolloutPolicy,
    RolloutTransition,
    ShadowScore,
    regressed_checkpoint,
    request_unit_hash,
)
from .scheduler import MicroBatcher, PendingRequest
from .service import EXECUTOR_CHOICES, CostModelService, ServiceConfig

__all__ = [
    "CANARY",
    "DEFAULT_BUCKETS",
    "EXECUTOR_CHOICES",
    "IDLE",
    "NEED_KERNEL_PREFIX",
    "PROMOTED",
    "ROLLED_BACK",
    "ROLLOUT_STATES",
    "SHADOW",
    "BucketMove",
    "CanaryFraction",
    "CommandResult",
    "CostModelService",
    "EvaluatorClient",
    "Executor",
    "FeedbackCollector",
    "FeedbackSample",
    "Frontend",
    "FullActivation",
    "InProcessFrontend",
    "InThreadExecutor",
    "KernelRuntimeRequest",
    "MicroBatcher",
    "ModelRegistry",
    "PendingRequest",
    "PlacementConfig",
    "PlacementController",
    "ProcessShardExecutor",
    "ProgramCommand",
    "ProgramRuntimesRequest",
    "RebalancePlan",
    "ReplicaPool",
    "Request",
    "Response",
    "ResultCache",
    "RolloutConfig",
    "ShardMap",
    "RolloutController",
    "RolloutPolicy",
    "RolloutTransition",
    "ServiceConfig",
    "ServiceEvaluator",
    "ShadowScore",
    "SocketEvaluator",
    "SocketFrontend",
    "TileCommand",
    "TileScoresRequest",
    "UnknownKernelError",
    "WindowSnapshot",
    "WireError",
    "WorkerDiedError",
    "decode_request",
    "encode_request",
    "kernel_interner",
    "prediction_error",
    "recv_frame",
    "regressed_checkpoint",
    "request_key",
    "request_unit_hash",
    "send_frame",
    "shard_of",
    "tile_measurement",
]
