"""Cost-model serving stack: transport / scheduling / execution layers.

The paper's deployment mode — a performance model trained offline and
queried at compile time — becomes a three-layer service boundary here:

* **transport frontends** (:class:`InProcessFrontend`,
  :class:`SocketFrontend`) own request ingress; both feed the same
  scheduler, so in-process and remote traffic coalesce into shared
  micro-batches;
* the **scheduler core** (:class:`CostModelService`) owns micro-batching,
  per-batch checkpoint-version snapshots over a versioned
  :class:`ModelRegistry` (with disk spill/load), the shared
  version-scoped result cache, and serving stats;
* **execution backends** (:class:`InThreadExecutor`,
  :class:`ProcessShardExecutor`) own where the coalesced forwards run —
  in-process fingerprint-sharded replicas, or per-shard worker
  subprocesses with true parallel forwards and checkpoint shipping.

Clients (:class:`ServiceEvaluator` in-process, :class:`SocketEvaluator`
remote) speak the existing evaluator protocol, so the autotuners run
against the service unchanged.

On top of the serving path sits the **deployment control plane**
(:mod:`repro.serving.rollout` + :mod:`repro.serving.feedback`): rollout
policies (:class:`FullActivation`, :class:`CanaryFraction`,
:class:`ShadowScore`) choose a version per request in front of the
per-batch snapshot, a :class:`FeedbackCollector` joins served
predictions with measured runtimes into per-version accuracy windows,
and the :class:`RolloutController` promotes or rolls back staged
checkpoints from that evidence — the continuous-learning loop's
actuator.

Resilience (:mod:`repro.serving.faults` + :mod:`repro.serving.resilience`)
hardens all three layers: a deterministic fault-injection harness
(:class:`FaultPlan` / :class:`FaultInjector`), per-request deadlines,
client retries (:class:`RetryPolicy`), per-shard circuit breakers
(:class:`CircuitBreaker`), crash-loop respawn backoff, and graceful
degradation to the analytical TPU model (:class:`AnalyticalFallback`) —
the serving contract being that every request resolves within its
deadline as an answer, a typed error, or a ``degraded`` analytical
answer, never a hang.

Observability (:mod:`repro.serving.telemetry` +
:mod:`repro.serving.http_gateway`) makes the whole stack inspectable:
a :class:`Tracer` records per-request spans across every layer boundary
(frontend → scheduler → executor → worker subprocess) with
deterministic hash sampling and zero overhead when disabled, a
:class:`TelemetryRegistry` merges every component's counters into one
lock-consistent snapshot with Prometheus text exposition and SLO
burn-rate gauges, and the read-only :class:`MetricsGateway` serves
``/metrics``, ``/traces/<id>``, ``/traces/recent``, and ``/healthz``
over HTTP.

The *active* observability layer (:mod:`repro.serving.profiler` +
:mod:`repro.serving.alerts` + :mod:`repro.serving.journal`) turns that
visibility into action: a :class:`ContinuousProfiler` attributes
wall-time per pipeline stage into exemplar-linked histograms (served at
``/profile``), an :class:`AlertEngine` evaluates threshold / SLO
burn-rate / anomaly rules against registry snapshots through a
pending → firing → resolved state machine (``/alerts``), and an
:class:`OpsJournal` durably records every lifecycle event — hot-swaps,
rollout transitions, rebalances, respawns, breaker trips, degradations,
alert transitions — as crash-safe append-only JSONL (``/events/recent``).

Active probing (:mod:`repro.serving.prober` +
:mod:`repro.serving.incidents`) closes the loop from the outside in: a
:class:`SyntheticProber` drives golden-kernel requests with precomputed
known answers through every live route (frontend × shard × live
version, tagged ``synthetic=True`` on the wire and excluded from
business stats/SLO/feedback) and verifies the responses bitwise
(``/probes``), while an :class:`IncidentReporter` turns every alert
firing into a ranked, journaled root-cause report assembled from the
journal window, profiler exemplars, per-shard z-scores, and probe
verdicts (``/incidents``).
"""
from .alerts import (
    Alert,
    AlertEngine,
    AnomalyRule,
    BurnRateRule,
    ThresholdRule,
)
from .client import EvaluatorClient, ServiceEvaluator, SocketEvaluator
from .faults import (
    FAULT_HOOKS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    corrupt_bytes,
)
from .feedback import (
    FeedbackCollector,
    FeedbackSample,
    WindowSnapshot,
    prediction_error,
    request_key,
    tile_measurement,
)
from .executors import (
    CommandResult,
    Executor,
    InThreadExecutor,
    ProcessShardExecutor,
    ProgramCommand,
    TileCommand,
    WorkerDiedError,
)
from .frontend import Frontend, InProcessFrontend, SocketFrontend
from .http_gateway import PROMETHEUS_CONTENT_TYPE, MetricsGateway
from .incidents import IncidentReporter
from .journal import OpsJournal
from .placement import (
    DEFAULT_BUCKETS,
    BucketMove,
    PlacementConfig,
    PlacementController,
    RebalancePlan,
    ShardMap,
)
from .protocol import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_DISCONNECTED,
    ERROR_OVERLOADED,
    ERROR_UNAVAILABLE,
    ERROR_WORKER_FAILURE,
    NEED_KERNEL_PREFIX,
    KernelRuntimeRequest,
    ProgramRuntimesRequest,
    Request,
    Response,
    TileScoresRequest,
    UnknownKernelError,
    WireError,
    decode_request,
    encode_request,
    kernel_interner,
    recv_frame,
    send_frame,
)
from .prober import GoldenProbe, SyntheticProber
from .profiler import ContinuousProfiler
from .registry import ModelRegistry
from .replica import ReplicaPool, ResultCache, shard_of
from .resilience import (
    ANALYTICAL_VERSION,
    AnalyticalFallback,
    CircuitBreaker,
    ConnectionLost,
    CrashLoopBackoff,
    DeadlineExceeded,
    Overloaded,
    RetryPolicy,
    ServiceUnavailable,
    ServingFault,
    WorkerFailure,
    fault_for,
    idempotency_key,
    raise_for,
)
from .rollout import (
    CANARY,
    IDLE,
    PROMOTED,
    ROLLED_BACK,
    ROLLOUT_STATES,
    SHADOW,
    CanaryFraction,
    FullActivation,
    RolloutConfig,
    RolloutController,
    RolloutPolicy,
    RolloutTransition,
    ShadowScore,
    regressed_checkpoint,
    request_unit_hash,
)
from .scheduler import MicroBatcher, PendingRequest
from .service import EXECUTOR_CHOICES, CostModelService, ServiceConfig
from .telemetry import (
    Counter,
    Gauge,
    Histogram,
    Span,
    TelemetryRegistry,
    TraceContext,
    Tracer,
    slo_burn_rate,
    trace_unit_hash,
)

__all__ = [
    "ANALYTICAL_VERSION",
    "CANARY",
    "DEFAULT_BUCKETS",
    "ERROR_DEADLINE_EXCEEDED",
    "ERROR_DISCONNECTED",
    "ERROR_OVERLOADED",
    "ERROR_UNAVAILABLE",
    "ERROR_WORKER_FAILURE",
    "EXECUTOR_CHOICES",
    "FAULT_HOOKS",
    "FAULT_KINDS",
    "IDLE",
    "NEED_KERNEL_PREFIX",
    "PROMETHEUS_CONTENT_TYPE",
    "PROMOTED",
    "ROLLED_BACK",
    "ROLLOUT_STATES",
    "SHADOW",
    "Alert",
    "AlertEngine",
    "AnalyticalFallback",
    "AnomalyRule",
    "BucketMove",
    "BurnRateRule",
    "CanaryFraction",
    "CircuitBreaker",
    "CommandResult",
    "ConnectionLost",
    "ContinuousProfiler",
    "CostModelService",
    "Counter",
    "CrashLoopBackoff",
    "DeadlineExceeded",
    "EvaluatorClient",
    "Executor",
    "Gauge",
    "Histogram",
    "IncidentReporter",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FeedbackCollector",
    "FeedbackSample",
    "Frontend",
    "FullActivation",
    "GoldenProbe",
    "InProcessFrontend",
    "InThreadExecutor",
    "KernelRuntimeRequest",
    "MetricsGateway",
    "MicroBatcher",
    "ModelRegistry",
    "OpsJournal",
    "Overloaded",
    "PendingRequest",
    "PlacementConfig",
    "PlacementController",
    "ProcessShardExecutor",
    "ProgramCommand",
    "ProgramRuntimesRequest",
    "RebalancePlan",
    "ReplicaPool",
    "Request",
    "Response",
    "ResultCache",
    "RetryPolicy",
    "RolloutConfig",
    "ShardMap",
    "RolloutController",
    "RolloutPolicy",
    "RolloutTransition",
    "ServiceConfig",
    "ServiceEvaluator",
    "ServiceUnavailable",
    "ServingFault",
    "ShadowScore",
    "SocketEvaluator",
    "SocketFrontend",
    "Span",
    "SyntheticProber",
    "TelemetryRegistry",
    "ThresholdRule",
    "TileCommand",
    "TileScoresRequest",
    "TraceContext",
    "Tracer",
    "UnknownKernelError",
    "WindowSnapshot",
    "WireError",
    "WorkerDiedError",
    "WorkerFailure",
    "corrupt_bytes",
    "decode_request",
    "encode_request",
    "fault_for",
    "idempotency_key",
    "kernel_interner",
    "prediction_error",
    "raise_for",
    "recv_frame",
    "regressed_checkpoint",
    "request_key",
    "request_unit_hash",
    "send_frame",
    "shard_of",
    "slo_burn_rate",
    "tile_measurement",
    "trace_unit_hash",
]
