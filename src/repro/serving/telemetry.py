"""Telemetry substrate: end-to-end request tracing + a unified registry.

Two halves, both deliberately dependency-free (stdlib only):

**Tracing.** A :class:`TraceContext` (trace id + parent span id) rides on
a request across every layer boundary — in-process hand-off, the TCP
wire (as an optional JSON field old peers simply ignore), and the worker
pipe protocol — and each layer records :class:`Span`\\ s against it:
frontend recv/decode, queue wait, micro-batch cut, version routing,
executor dispatch, the forward inside a shard-worker subprocess,
result-cache hits, and retry/breaker/degradation events. Spans are
assembled into per-request trace trees held in a bounded ring buffer
(oldest trace evicted first).

Sampling is deterministic and hash-based, like the rollout layer's
:func:`~repro.serving.rollout.request_unit_hash`: the decision is a pure
function of the trace id, so the same id samples the same way on every
tracer instance and across processes — reproducible traces, no RNG.

**Zero overhead when disabled** follows the
:class:`~repro.serving.faults.FaultInjector` discipline exactly:
components hold ``None`` by default and every hook site is a single
``is not None`` check. An *unsampled* request costs one hash at ingress
and nothing after (its context is never attached).

**Metrics.** A :class:`TelemetryRegistry` of named counters, gauges, and
histograms plus *collectors* — callbacks that contribute a component's
snapshot (``ServingStats``, ``MicroBatcher``, ``PlacementController``,
``RolloutController``, circuit breakers, ``FeedbackCollector``) — read
out in one lock-consistent pass by :meth:`TelemetryRegistry.collect`.
The same snapshot renders as Prometheus text exposition
(:meth:`TelemetryRegistry.prometheus`), with known per-shard /
per-version families emitted as labeled series and counters suffixed
``_total``. SLO burn-rate gauges (:func:`slo_burn_rate`) derive from the
serving layer's latency windows/EWMAs.
"""
from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "TelemetryRegistry",
    "TraceContext",
    "Tracer",
    "slo_burn_rate",
    "trace_unit_hash",
]


# ---------------------------------------------------------------------- #
# trace context + spans
# ---------------------------------------------------------------------- #


def trace_unit_hash(trace_id: str, salt: str = "") -> float:
    """Deterministic hash of a trace id into ``[0, 1)``.

    The sampling decision is this value compared against the sample
    rate — a pure function of the id, so it is identical on every
    tracer instance, thread, and process (no RNG, no shared state).
    """
    digest = hashlib.sha256(f"{salt}:{trace_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class TraceContext:
    """The portable part of a trace: id + current parent span.

    Carried on requests (in-process by reference, on the wire as an
    optional JSON field, over the worker pipe as a ``(trace_id,
    span_id)`` token). ``sampled`` is stamped once at ingress; an
    unsampled context is never attached, so every downstream hook sees
    either a sampled context or ``None``.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self, span_id: str) -> "TraceContext":
        """The same trace, re-parented under ``span_id``."""
        return replace(self, span_id=span_id)

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, entry) -> "TraceContext | None":
        """Rebuild from a wire dict; ``None`` on absent/malformed entries
        (a trace is never worth failing a request over)."""
        if not isinstance(entry, dict):
            return None
        trace_id = entry.get("trace_id")
        span_id = entry.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id, sampled=True)


@dataclass
class Span:
    """One timed operation inside a trace.

    ``start``/``end`` are wall-clock (``time.time()``) so spans recorded
    in different processes on the same host line up on one axis.
    ``end`` is ``None`` while the span is open.
    """

    span_id: str
    trace_id: str
    name: str
    parent_id: str | None
    start: float
    end: float | None = None
    process: str = "service"
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return max((self.end or self.start) - self.start, 0.0)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration_s": self.duration_s,
            "process": self.process,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Samples, records, and assembles per-request trace trees.

    Args:
        sample_rate: fraction of traces to record, in [0, 1]. The
            decision is :func:`trace_unit_hash`\\ (trace_id) < rate —
            deterministic per id.
        max_traces: ring-buffer bound on retained traces; starting a new
            trace beyond it evicts the oldest.
        salt: sampling-hash salt (distinct tracers can sample distinct
            subsets of the same id space).

    Thread-safe; shared by the frontends, the scheduler core, and the
    executor result path of one service. Worker subprocesses never hold
    a tracer — they return plain span dicts over the pipe, recorded here
    via :meth:`record_raw` (what "span assembly across the process
    boundary" means in practice).
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        max_traces: int = 256,
        salt: str = "",
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.sample_rate = sample_rate
        self.max_traces = max_traces
        self.salt = salt
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, list[Span]]" = OrderedDict()
        self._ids = itertools.count(1)
        self._prefix = f"{os.getpid():x}"
        self.traces_started = 0
        self.traces_evicted = 0
        self.spans_recorded = 0
        self.unsampled = 0

    # ------------------------------------------------------------------ #
    # sampling + ingress
    # ------------------------------------------------------------------ #

    def _next_id(self, kind: str) -> str:
        return f"{kind}-{self._prefix}-{next(self._ids):08x}"

    def should_sample(self, trace_id: str) -> bool:
        """The deterministic sampling verdict for ``trace_id``."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return trace_unit_hash(trace_id, self.salt) < self.sample_rate

    def ingress(
        self,
        request,
        process: str = "frontend",
        name: str = "request",
        start: float | None = None,
    ) -> TraceContext | None:
        """Open (or adopt) a trace for one arriving request.

        Returns a sampled :class:`TraceContext` whose ``span_id`` is the
        server-side root span, or ``None`` when the trace sampled out —
        the caller then attaches nothing and pays nothing further.

        A request already carrying a context (stamped by a client, or by
        the wire decoder) keeps its trace id — the root span recorded
        here is parented under the remote span, so a cross-process tree
        still hangs together.
        """
        ctx = getattr(request, "trace", None)
        remote_parent: str | None = None
        if ctx is not None:
            if not ctx.sampled or not self.should_sample(ctx.trace_id):
                self.unsampled += 1
                return None
            trace_id, remote_parent = ctx.trace_id, ctx.span_id
        else:
            trace_id = self._next_id("t")
            if not self.should_sample(trace_id):
                self.unsampled += 1
                return None
        root = self.start_span(
            TraceContext(trace_id=trace_id, span_id=remote_parent or "", sampled=True),
            name,
            process=process,
            parent_id=remote_parent,
            start=start,
        )
        return TraceContext(trace_id=trace_id, span_id=root, sampled=True)

    # ------------------------------------------------------------------ #
    # span recording
    # ------------------------------------------------------------------ #

    def _append_locked(self, span: Span) -> None:
        spans = self._traces.get(span.trace_id)
        if spans is None:
            while len(self._traces) >= self.max_traces:
                self._traces.popitem(last=False)
                self.traces_evicted += 1
            spans = self._traces[span.trace_id] = []
            self.traces_started += 1
        spans.append(span)
        self.spans_recorded += 1

    def start_span(
        self,
        ctx: TraceContext,
        name: str,
        process: str = "service",
        parent_id: str | None = None,
        attrs: dict | None = None,
        start: float | None = None,
    ) -> str:
        """Open a span under ``ctx`` (parent defaults to ``ctx.span_id``);
        returns its span id for :meth:`end_span`."""
        span = Span(
            span_id=self._next_id("s"),
            trace_id=ctx.trace_id,
            name=name,
            parent_id=ctx.span_id if parent_id is None else (parent_id or None),
            start=time.time() if start is None else start,
            process=process,
            attrs=dict(attrs) if attrs else {},
        )
        with self._lock:
            self._append_locked(span)
        return span.span_id

    def end_span(
        self,
        trace_id: str,
        span_id: str,
        status: str = "ok",
        attrs: dict | None = None,
    ) -> None:
        now = time.time()
        with self._lock:
            for span in reversed(self._traces.get(trace_id, ())):
                if span.span_id == span_id:
                    if span.end is None:
                        span.end = now
                    span.status = status
                    if attrs:
                        span.attrs.update(attrs)
                    return

    def record(
        self,
        ctx: TraceContext,
        name: str,
        start: float,
        end: float | None = None,
        process: str = "service",
        attrs: dict | None = None,
        status: str = "ok",
        parent_id: str | None = None,
    ) -> str:
        """Record one already-timed span (start/end known up front)."""
        span = Span(
            span_id=self._next_id("s"),
            trace_id=ctx.trace_id,
            name=name,
            parent_id=ctx.span_id if parent_id is None else (parent_id or None),
            start=start,
            end=time.time() if end is None else end,
            process=process,
            status=status,
            attrs=dict(attrs) if attrs else {},
        )
        with self._lock:
            self._append_locked(span)
        return span.span_id

    def event(self, ctx: TraceContext, name: str, attrs: dict | None = None) -> str:
        """A zero-duration marker span (breaker opened, retry, ...)."""
        now = time.time()
        return self.record(ctx, name, start=now, end=now, attrs=attrs, status="event")

    def record_raw(self, span_dict: dict) -> None:
        """Record a span shipped as a plain dict from another process
        (shard workers return these over the pipe — they never hold a
        tracer themselves)."""
        trace_id = span_dict.get("trace_id")
        if not trace_id:
            return
        span = Span(
            span_id=span_dict.get("span_id") or self._next_id("s"),
            trace_id=trace_id,
            name=span_dict.get("name", "span"),
            parent_id=span_dict.get("parent_id"),
            start=float(span_dict.get("start", 0.0)),
            end=span_dict.get("end"),
            process=span_dict.get("process", "worker"),
            status=span_dict.get("status", "ok"),
            attrs=dict(span_dict.get("attrs") or {}),
        )
        with self._lock:
            self._append_locked(span)

    @contextmanager
    def span(
        self,
        ctx: TraceContext,
        name: str,
        process: str = "service",
        attrs: dict | None = None,
    ):
        """Context manager over :meth:`start_span`/:meth:`end_span`;
        yields the child context for nesting."""
        span_id = self.start_span(ctx, name, process=process, attrs=attrs)
        try:
            yield ctx.child(span_id)
        except BaseException:
            self.end_span(ctx.trace_id, span_id, status="error")
            raise
        self.end_span(ctx.trace_id, span_id)

    def finish(
        self,
        ctx: TraceContext,
        status: str = "ok",
        attrs: dict | None = None,
    ) -> None:
        """Close the context's current span (typically the root)."""
        self.end_span(ctx.trace_id, ctx.span_id, status=status, attrs=attrs)

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def trace(self, trace_id: str) -> dict | None:
        """The assembled trace tree, or ``None`` for an unknown id."""
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                return None
            snapshot = [span.to_dict() for span in spans]
        children: dict[str | None, list[dict]] = {}
        ids = {entry["span_id"] for entry in snapshot}
        for entry in snapshot:
            parent = entry["parent_id"]
            # A span whose parent lives in another process's (or an
            # evicted) record still renders — as a root.
            children.setdefault(parent if parent in ids else None, []).append(entry)

        def build(entry: dict) -> dict:
            kids = sorted(
                children.get(entry["span_id"], ()), key=lambda e: e["start"]
            )
            return {**entry, "children": [build(kid) for kid in kids]}

        roots = sorted(children.get(None, ()), key=lambda e: e["start"])
        starts = [e["start"] for e in snapshot]
        ends = [e["end"] or e["start"] for e in snapshot]
        return {
            "trace_id": trace_id,
            "span_count": len(snapshot),
            "duration_s": max(ends) - min(starts) if snapshot else 0.0,
            "processes": sorted({e["process"] for e in snapshot}),
            "roots": [build(root) for root in roots],
        }

    def recent(self, n: int = 20) -> list[dict]:
        """Summaries of the newest ``n`` retained traces, newest first."""
        with self._lock:
            ids = list(self._traces)[-n:]
        out = []
        for trace_id in reversed(ids):
            tree = self.trace(trace_id)
            if tree is None:
                continue
            root = tree["roots"][0] if tree["roots"] else None
            out.append(
                {
                    "trace_id": trace_id,
                    "span_count": tree["span_count"],
                    "duration_s": tree["duration_s"],
                    "processes": tree["processes"],
                    "name": root["name"] if root else "",
                    "status": root["status"] if root else "",
                }
            )
        return out

    def render(self, trace_id: str) -> str:
        """ASCII trace tree — the ops-console view of one request."""
        tree = self.trace(trace_id)
        if tree is None:
            return f"trace {trace_id}: not retained"
        lines = [
            f"trace {trace_id} "
            f"({tree['span_count']} spans, {tree['duration_s'] * 1e3:.2f} ms, "
            f"processes: {', '.join(tree['processes'])})"
        ]

        def walk(node: dict, prefix: str, last: bool) -> None:
            branch = "└── " if last else "├── "
            attrs = node["attrs"]
            detail = (
                " {" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "}"
                if attrs
                else ""
            )
            mark = "" if node["status"] == "ok" else f" [{node['status']}]"
            lines.append(
                f"{prefix}{branch}{node['name']} "
                f"[{node['process']}] {node['duration_s'] * 1e3:.2f}ms"
                f"{mark}{detail}"
            )
            kids = node["children"]
            for i, kid in enumerate(kids):
                walk(kid, prefix + ("    " if last else "│   "), i == len(kids) - 1)

        roots = tree["roots"]
        for i, root in enumerate(roots):
            walk(root, "", i == len(roots) - 1)
        return "\n".join(lines)

    def chrome_trace(self, trace_id: str) -> dict | None:
        """The trace as a Chrome trace-event JSON document, or ``None``
        for an unknown id.

        The payload opens directly in ``chrome://tracing`` and Perfetto:
        each process that contributed spans becomes a track (an ``M``
        ``process_name`` metadata event), timed spans become complete
        (``X``) events with microsecond ``ts``/``dur``, and zero-duration
        marker spans become instant (``i``) events. Span/parent ids and
        attrs ride in ``args`` so the original tree stays recoverable.
        """
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                return None
            snapshot = [span.to_dict() for span in spans]
        snapshot.sort(key=lambda e: e["start"])
        pids: dict[str, int] = {}
        for entry in snapshot:
            pids.setdefault(entry["process"], len(pids) + 1)
        events: list[dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
            for process, pid in pids.items()
        ]
        for entry in snapshot:
            ts_us = entry["start"] * 1e6
            dur_us = entry["duration_s"] * 1e6
            args = {
                "span_id": entry["span_id"],
                "parent_id": entry["parent_id"],
                "status": entry["status"],
                **entry["attrs"],
            }
            base = {
                "name": entry["name"],
                "cat": entry["process"],
                "pid": pids[entry["process"]],
                "tid": 0,
                "ts": ts_us,
                "args": args,
            }
            if entry["status"] == "event" or dur_us <= 0.0:
                events.append({**base, "ph": "i", "s": "t"})
            else:
                events.append({**base, "ph": "X", "dur": dur_us})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id},
        }

    def snapshot(self) -> dict:
        """Tracer accounting for the metrics registry."""
        with self._lock:
            retained = len(self._traces)
        return {
            "trace_sample_rate": self.sample_rate,
            "traces_started": float(self.traces_started),
            "traces_retained": float(retained),
            "traces_evicted": float(self.traces_evicted),
            # The ring-eviction counter under its exposition name; kept
            # alongside the legacy key so existing dashboards survive.
            "trace_ring_evicted": float(self.traces_evicted),
            "traces_unsampled": float(self.unsampled),
            "spans_recorded": float(self.spans_recorded),
        }


# ---------------------------------------------------------------------- #
# metrics registry
# ---------------------------------------------------------------------- #


class Counter:
    """A monotonically increasing named value (thread-safe)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A named value that can go either way; optionally callback-backed."""

    __slots__ = ("name", "help", "fn", "_value", "_lock")

    def __init__(self, name: str, help: str = "", fn=None) -> None:
        self.name = name
        self.help = help
        self.fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        with self._lock:
            return self._value


#: Default histogram buckets: latency-shaped, in seconds.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics, thread-safe)."""

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1

    def snapshot(self) -> dict:
        # observe() bumps every bucket whose bound >= value, so _counts is
        # already cumulative — Prometheus bucket semantics directly.
        with self._lock:
            return {
                "count": float(self._count),
                "sum": self._sum,
                "buckets": {
                    str(bound): float(self._counts[i])
                    for i, bound in enumerate(self.buckets)
                },
            }


def slo_burn_rate(violation_fraction: float, objective: float) -> float:
    """How fast the error budget burns at the observed violation rate.

    ``1.0`` means exactly on budget (violations equal the allowance
    ``1 - objective``); ``> 1`` burns the budget early. An objective of
    1.0 leaves no budget, so any violation reads as an infinite burn —
    capped here to a large finite value to stay JSON-friendly.
    """
    budget = 1.0 - objective
    if budget <= 0.0:
        return 0.0 if violation_fraction <= 0.0 else 1e9
    return violation_fraction / budget


class TelemetryRegistry:
    """Named instruments + component collectors, read in one pass.

    Components either create owned instruments (:meth:`counter`,
    :meth:`gauge`, :meth:`histogram`) or register a *collector* — a
    callback returning a dict merged into the snapshot. ``collect()``
    runs everything under one lock, so a scrape sees a single
    consistent point in time (each component's snapshot is additionally
    internally consistent under its own lock).

    ``mark_counter()`` records which snapshot keys are semantically
    counters so the Prometheus exposition can type them and add the
    conventional ``_total`` suffix.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.RLock()
        self._instruments: "OrderedDict[str, Counter | Gauge | Histogram]" = (
            OrderedDict()
        )
        self._collectors: "OrderedDict[str, object]" = OrderedDict()
        self._counter_keys: set[str] = set()
        self.collector_errors = 0

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def _instrument(self, cls, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            instrument = cls(name, help=help, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get-or-create the named counter."""
        counter = self._instrument(Counter, name, help)
        self.mark_counter(name)
        return counter

    def gauge(self, name: str, help: str = "", fn=None) -> Gauge:
        """Get-or-create the named gauge (optionally callback-backed)."""
        gauge = self._instrument(Gauge, name, help)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        """Get-or-create the named histogram."""
        return self._instrument(Histogram, name, help, buckets=buckets)

    def register_collector(self, name: str, fn) -> None:
        """Register (or replace) the named snapshot contributor."""
        with self._lock:
            self._collectors[name] = fn

    def mark_counter(self, *names: str) -> None:
        """Declare snapshot keys as counter-typed for the exposition."""
        with self._lock:
            self._counter_keys.update(names)

    # ------------------------------------------------------------------ #
    # readout
    # ------------------------------------------------------------------ #

    def collect(self) -> dict:
        """One lock-consistent snapshot of every collector + instrument.

        Collector dicts merge in registration order (later wins on key
        collisions); instruments land under their own names. A failing
        collector is skipped and counted — a metrics scrape must never
        take the serving path down with it.
        """
        with self._lock:
            collectors = list(self._collectors.items())
            instruments = list(self._instruments.items())
        out: dict = {}
        for _, fn in collectors:
            try:
                data = fn()
            except Exception:
                self.collector_errors += 1
                continue
            if data:
                out.update(data)
        for name, instrument in instruments:
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        if self.collector_errors:
            out["telemetry_collector_errors"] = float(self.collector_errors)
        return out

    snapshot = collect

    # ------------------------------------------------------------------ #
    # Prometheus text exposition
    # ------------------------------------------------------------------ #

    #: Snapshot families rendered as labeled series instead of flattened
    #: metric names: family key -> label name for its sub-keys.
    _LABELED_FAMILIES = {
        "per_shard": "shard",
        "per_version": "version",
        "breakers": "shard",
        "shard_load_ewma": "shard",
        "shard_latency_ewma": "shard",
        "gateway_accesses": "endpoint",
        "profiler_stage": "stage",
        "prober_route": "route",
    }

    @staticmethod
    def _sanitize(name: str) -> str:
        out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
        return out if not out[:1].isdigit() else f"_{out}"

    def _series_name(self, *parts: str) -> str:
        return self._sanitize("_".join((self.namespace, *parts)))

    @staticmethod
    def _format_labels(labels: dict) -> str:
        # Label-value escaping per the exposition format: backslash
        # first (so the other escapes aren't double-escaped), then
        # quote, then newline — an unescaped newline in a label value
        # would truncate the sample line and corrupt the whole scrape.
        if not labels:
            return ""
        escaped = {
            k: str(v)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            for k, v in labels.items()
        }
        inner = ",".join(f'{k}="{v}"' for k, v in sorted(escaped.items()))
        return "{" + inner + "}"

    @staticmethod
    def _format_value(value: float) -> str:
        # The exposition format spells non-finite values "NaN", "+Inf",
        # "-Inf" — Python's "nan"/"inf" spellings are rejected by
        # Prometheus parsers.
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
        return f"{value:.10g}"

    def prometheus(self) -> str:
        """The full snapshot in Prometheus text exposition format."""
        snap = self.collect()
        samples: "OrderedDict[str, list[tuple[dict, float]]]" = OrderedDict()
        types: dict[str, str] = {}
        infos: dict[str, str] = {}

        def emit(name: str, labels: dict, value, counter: bool) -> None:
            if isinstance(value, bool):
                value = float(value)
            if isinstance(value, (int, float)):
                series = self._series_name(name) + ("_total" if counter else "")
                samples.setdefault(series, []).append((labels, float(value)))
                types[series] = "counter" if counter else "gauge"
            elif isinstance(value, str):
                infos[self._sanitize(name)] = value

        def walk(key: str, value, labels: dict, prefix: str) -> None:
            name = f"{prefix}_{key}" if prefix else key
            if isinstance(value, dict):
                if "buckets" in value and "count" in value and "sum" in value:
                    self._emit_histogram(samples, types, name, labels, value)
                    return
                family = self._LABELED_FAMILIES.get(key)
                if family is not None:
                    for member, entry in value.items():
                        member_labels = {**labels, family: member}
                        if isinstance(entry, dict):
                            for sub, sub_value in entry.items():
                                walk(sub, sub_value, member_labels, name)
                        else:
                            emit(
                                name,
                                member_labels,
                                entry,
                                key in self._counter_keys,
                            )
                    return
                for sub, sub_value in value.items():
                    walk(sub, sub_value, labels, name)
                return
            if isinstance(value, (list, tuple)):
                return  # audit logs (transitions, plans) are not series
            emit(name, labels, value, key in self._counter_keys)

        for key, value in snap.items():
            walk(key, value, {}, "")

        lines: list[str] = []
        for series, rows in samples.items():
            lines.append(f"# TYPE {series} {types[series]}")
            for labels, value in rows:
                formatted = (
                    self._format_value(value)
                    if isinstance(value, float)
                    else str(value)
                )
                lines.append(f"{series}{self._format_labels(labels)} {formatted}")
        if infos:
            labels = self._format_labels(infos)
            info_series = self._series_name("info")
            lines.append(f"# TYPE {info_series} gauge")
            lines.append(f"{info_series}{labels} 1")
        return "\n".join(lines) + "\n"

    def _emit_histogram(
        self, samples, types, name: str, labels: dict, value: dict
    ) -> None:
        series = self._series_name(name)
        types[f"{series}_bucket"] = "counter"
        types[f"{series}_sum"] = "counter"
        types[f"{series}_count"] = "counter"
        for bound, count in value["buckets"].items():
            samples.setdefault(f"{series}_bucket", []).append(
                ({**labels, "le": bound}, float(count))
            )
        samples.setdefault(f"{series}_bucket", []).append(
            ({**labels, "le": "+Inf"}, float(value["count"]))
        )
        samples.setdefault(f"{series}_sum", []).append((labels, float(value["sum"])))
        samples.setdefault(f"{series}_count", []).append(
            (labels, float(value["count"]))
        )

    def json(self) -> str:
        """The snapshot as a JSON document (the gateway's JSON format)."""
        return json.dumps(self.collect(), default=str, sort_keys=True)
