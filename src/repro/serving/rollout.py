"""Deployment control plane: rollout policies and the rollout controller.

The registry can already stage a checkpoint without serving it and
hot-swap atomically at micro-batch boundaries; this module decides *when*
that swap should happen, from evidence. A :class:`RolloutPolicy` is a
version chooser in front of the scheduler's per-batch snapshot: for every
request it names the version that must serve it (response path) and,
optionally, a version that should score it off the response path. The
service groups each micro-batch by chosen version and executes each group
as its own version-pure batch — so the PR 2 invariant (no response, and
no micro-batch, ever mixes checkpoints) survives the rollout machinery
untouched.

Three policies:

* :class:`FullActivation` — every request to the active version; today's
  behaviour and the default. Zero per-request cost beyond a method call.
* :class:`CanaryFraction` — a configured fraction of requests routes to
  the staged version, chosen **deterministically by request hash** (a
  sha256 over the request's stable identity): the same request always
  lands on the same side, across processes and across runs, so canary
  results are reproducible and cache routing stays coherent.
* :class:`ShadowScore` — every response is served by the active version;
  the staged version additionally scores a sampled fraction of the same
  traffic *after* the responses resolve. Clients never observe the
  staged model; its accuracy window fills anyway.

The :class:`RolloutController` drives the staged-checkpoint state machine
(``staged → shadow → canary → promoted``, or ``→ rolled_back`` at any
evaluated step) from the per-version error windows a
:class:`~repro.serving.feedback.FeedbackCollector` maintains, with
configurable promotion/abort margins and a bounded per-phase sample
budget — a staged checkpoint that cannot *prove* itself within the
budget is rolled back, never promoted by default.
"""
from __future__ import annotations

import hashlib
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

from .feedback import FeedbackCollector, request_key
from .protocol import Request

#: Rollout state-machine states (module constants, JSON-friendly).
IDLE = "idle"
SHADOW = "shadow"
CANARY = "canary"
PROMOTED = "promoted"
ROLLED_BACK = "rolled_back"

ROLLOUT_STATES = (IDLE, SHADOW, CANARY, PROMOTED, ROLLED_BACK)


def regressed_checkpoint(result):
    """A deterministically *regressed* copy of a checkpoint, for drills.

    Round-trips the checkpoint through its sealed-blob form (so the
    original is untouched) and negates the readout head: every score
    ranking is exactly reversed — the worst regression a rollout can
    face, and a reproducible one. This is the injection used by the
    rollback tests, ``benchmarks/bench_rollout.py``'s detection-latency
    gate, and the example's canary-rollback demo; production analogues
    are the periodic rollback drills that prove the abort path still
    works.

    Accepts a ``TrainResult`` or sealed blob bytes; returns a fresh
    ``TrainResult``.
    """
    from ..models.serialize import load_model_bytes, save_model_bytes

    blob = result if isinstance(result, bytes) else save_model_bytes(result)
    bad = load_model_bytes(blob)
    head = getattr(bad.model, "head", None)
    if head is None:
        head = bad.model.node_head
    for param in head.parameters():
        param.data *= -1.0
    bad.model.eval()
    return bad


def request_unit_hash(request: Request, salt: str = "") -> float:
    """Deterministic float in [0, 1) from a request's stable identity.

    Built on :func:`~repro.serving.feedback.request_key` (kernel
    fingerprints + tile dims), hashed with sha256 — uniform, stable
    across processes/machines, and independent of Python's per-process
    ``hash()`` randomization. The ``salt`` lets distinct rollouts sample
    distinct request subsets while staying individually deterministic.
    """
    digest = hashlib.sha256(
        (salt + "|" + repr(request_key(request))).encode()
    ).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class RolloutPolicy(ABC):
    """Per-request version chooser in front of the per-batch snapshot.

    ``route`` names the version that serves the request (the response
    path); ``shadow`` optionally names a version that should score the
    request off the response path. The service validates both against
    the registry and falls back to the active version, so a policy
    holding a version that was rolled back mid-flight degrades safely.
    """

    #: The staged version this policy is exercising (``None`` for the
    #: default full-activation policy) — surfaced in service metrics.
    staged_version: str | None = None

    @abstractmethod
    def route(self, request: Request, active: str) -> str:
        """The version that must serve ``request`` on the response path."""

    def shadow(self, request: Request, active: str) -> str | None:
        """A version to score ``request`` off the response path, if any."""
        return None

    def describe(self) -> dict:
        """Metrics-friendly summary of the policy in force."""
        return {"policy": type(self).__name__, "staged_version": self.staged_version}


class FullActivation(RolloutPolicy):
    """Serve everything with the active version (the default)."""

    def route(self, request: Request, active: str) -> str:
        return active


class CanaryFraction(RolloutPolicy):
    """Route a deterministic fraction of requests to the staged version.

    Args:
        staged_version: registry version receiving the canary slice.
        fraction: share of requests to route there, in [0, 1].
        salt: optional hash salt (distinct rollouts sample distinct
            request subsets; same salt = same routing, always).
    """

    def __init__(self, staged_version: str, fraction: float, salt: str = "") -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        self.staged_version = staged_version
        self.fraction = fraction
        self.salt = salt

    def route(self, request: Request, active: str) -> str:
        if request_unit_hash(request, self.salt) < self.fraction:
            return self.staged_version
        return active

    def describe(self) -> dict:
        return {**super().describe(), "fraction": self.fraction}


class ShadowScore(RolloutPolicy):
    """Serve with the active version; staged scores a sample off-path.

    Args:
        staged_version: version that shadow-scores sampled requests.
        sample_fraction: share of traffic to shadow, in [0, 1]
            (deterministic by request hash, like the canary split).
        salt: optional hash salt.
    """

    def __init__(
        self, staged_version: str, sample_fraction: float = 1.0, salt: str = ""
    ) -> None:
        if not 0.0 <= sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in [0, 1]")
        self.staged_version = staged_version
        self.sample_fraction = sample_fraction
        self.salt = salt

    def route(self, request: Request, active: str) -> str:
        return active

    def shadow(self, request: Request, active: str) -> str | None:
        if request_unit_hash(request, self.salt) < self.sample_fraction:
            return self.staged_version
        return None

    def describe(self) -> dict:
        return {**super().describe(), "sample_fraction": self.sample_fraction}


@dataclass(frozen=True)
class RolloutConfig:
    """Promotion/abort thresholds of the rollout state machine.

    Attributes:
        canary_fraction: request share the canary phase routes to the
            staged version.
        shadow_fraction: traffic share the shadow phase scores off-path.
        min_samples: joined feedback observations the staged version
            needs *within the current phase* before any decision.
        max_samples_per_phase: decision budget — a staged version still
            undecided (between the margins) after this many fresh
            observations is rolled back, not left limping forever.
        promote_margin: staged advances when its windowed mean error is
            within this margin of the active version's.
        abort_margin: staged rolls back the moment its windowed mean
            error exceeds the active version's by more than this.
        start_phase: ``"shadow"`` (default: observe before serving) or
            ``"canary"`` (skip shadow, go straight to a traffic slice).
        max_seconds_per_phase: wall-clock ceiling per phase, alongside
            the sample budget. The sample budget alone only concludes a
            rollout that *sees traffic*; a bursty or low-volume
            deployment could otherwise hold a staged checkpoint (and its
            warm executor state) in limbo indefinitely. At the ceiling
            the phase is decided on whatever evidence exists: a window
            already within the promote margin advances, anything else —
            including no evidence at all — rolls back. ``None``
            (default) keeps the sample budget as the only bound.
    """

    canary_fraction: float = 0.25
    shadow_fraction: float = 1.0
    min_samples: int = 24
    max_samples_per_phase: int = 200
    promote_margin: float = 0.05
    abort_margin: float = 0.15
    start_phase: str = SHADOW
    max_seconds_per_phase: float | None = None

    def __post_init__(self) -> None:
        if self.start_phase not in (SHADOW, CANARY):
            raise ValueError("start_phase must be 'shadow' or 'canary'")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.max_samples_per_phase < self.min_samples:
            raise ValueError("max_samples_per_phase must be >= min_samples")
        if self.abort_margin < self.promote_margin:
            raise ValueError("abort_margin must be >= promote_margin")
        if self.max_seconds_per_phase is not None and self.max_seconds_per_phase <= 0:
            raise ValueError("max_seconds_per_phase must be > 0 (or None)")


@dataclass(frozen=True)
class RolloutTransition:
    """One recorded state-machine transition (for audit/metrics)."""

    state: str
    reason: str
    staged_version: str | None
    staged_samples: int
    at: float


class RolloutController:
    """Drives staged checkpoints through shadow/canary to promotion.

    Args:
        service: the :class:`~repro.serving.service.CostModelService`
            whose rollout-policy slot and registry this controller owns
            while a rollout is in flight.
        feedback: the collector whose per-version error windows supply
            the evidence (the service should share this instance).
        config: thresholds; defaults are conservative.
        clock: injectable monotonic clock backing the per-phase
            wall-clock budget (tests drive it with a fake).

    The controller is intentionally *pulled*, not threaded: callers
    invoke :meth:`step` at their own cadence (per request, per batch,
    per tick) and get the current state back. All transitions are
    serialized under one lock, so concurrent steppers are safe.
    """

    def __init__(
        self,
        service,
        feedback: FeedbackCollector,
        config: RolloutConfig | None = None,
        clock=time.monotonic,
        journal=None,
    ) -> None:
        self.service = service
        self.feedback = feedback
        self.config = config or RolloutConfig()
        #: Duck-typed ops journal; every phase transition is recorded as
        #: a ``rollout.transition`` event when present.
        self.journal = journal
        self._clock = clock
        self._lock = threading.Lock()
        self.state = IDLE
        self.staged: str | None = None
        self._active_at_stage: str | None = None
        self._phase_entry_count = 0
        self._phase_entered_at: float | None = None
        self.transitions: list[RolloutTransition] = []
        # Contribute the controller's state machine to the service's
        # telemetry registry (fakes/mocks without one simply skip this).
        try:
            registry = getattr(service, "telemetry", None)
            if registry is not None:
                registry.register_collector(
                    "rollout_controller",
                    lambda: {"rollout_controller": self.describe()},
                )
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def stage(self, result, version: str | None = None) -> str:
        """Stage a checkpoint and start the rollout state machine.

        Args:
            result: a ``TrainResult``, pre-serialized blob bytes, or the
                name of an already-published registry version.
            version: explicit version name when publishing.

        Returns the staged version string. The previous rollout (if any)
        must have concluded; staging over a live rollout raises.
        """
        with self._lock:
            if self.state in (SHADOW, CANARY):
                raise RuntimeError(
                    f"rollout of {self.staged!r} still in flight ({self.state})"
                )
            registry = self.service.registry
            staged = registry.stage(result, version=version)
            self.staged = staged
            self._active_at_stage = registry.active_version
            self.feedback.reset_version(staged)
            if self.config.start_phase == CANARY:
                policy = CanaryFraction(
                    staged, self.config.canary_fraction, salt=staged
                )
                next_state = CANARY
            else:
                policy = ShadowScore(
                    staged, self.config.shadow_fraction, salt=staged
                )
                next_state = SHADOW
            self.service.set_rollout(policy)
            self._phase_entry_count = self.feedback.error_window(staged).total
            self._phase_entered_at = self._clock()
            self._transition_locked(next_state, "staged")
            return staged

    def step(self) -> str:
        """Evaluate the windows and advance the state machine one notch.

        Returns the (possibly new) state. Idempotent outside the live
        phases. Decision rule per phase, in priority order once
        ``min_samples`` fresh staged observations exist:

        1. staged mean error > active + ``abort_margin`` → roll back;
        2. staged mean error <= active + ``promote_margin`` → advance
           (shadow → canary, canary → promote);
        3. still undecided after ``max_samples_per_phase`` → roll back.

        With ``max_seconds_per_phase`` set, hitting the wall-clock
        ceiling forces a decision on whatever evidence exists: a window
        already within the promote margin advances, anything else —
        insufficient samples included — rolls back. Bursty and
        low-traffic deployments therefore always converge to a terminal
        state; they never hold a staged checkpoint in limbo.
        """
        with self._lock:
            if self.state not in (SHADOW, CANARY):
                return self.state
            staged_window = self.feedback.error_window(self.staged)
            active_window = self.feedback.error_window(self._active_at_stage)
            # Progress is measured on the *monotone* join total, never the
            # bounded window count — a saturated ring buffer must not
            # freeze the budget clock.
            fresh = staged_window.total - self._phase_entry_count
            timed_out = (
                self.config.max_seconds_per_phase is not None
                and self._phase_entered_at is not None
                and self._clock() - self._phase_entered_at
                >= self.config.max_seconds_per_phase
            )
            if fresh < self.config.min_samples or active_window.count == 0:
                if timed_out:
                    return self._rollback_locked(
                        f"phase wall-clock budget "
                        f"({self.config.max_seconds_per_phase:.1f}s) exhausted "
                        f"with {fresh} samples (< min_samples "
                        f"{self.config.min_samples})"
                    )
                return self.state
            gap = staged_window.mean_error - active_window.mean_error
            if gap > self.config.abort_margin:
                return self._rollback_locked(
                    f"error regression: staged {staged_window.mean_error:.4f} "
                    f"vs active {active_window.mean_error:.4f}"
                )
            if gap <= self.config.promote_margin:
                return self._advance_locked(staged_window.total)
            if fresh >= self.config.max_samples_per_phase:
                return self._rollback_locked(
                    f"undecided after {fresh} samples "
                    f"(gap {gap:.4f} between margins)"
                )
            if timed_out:
                return self._rollback_locked(
                    f"phase wall-clock budget "
                    f"({self.config.max_seconds_per_phase:.1f}s) exhausted, "
                    f"undecided (gap {gap:.4f} between margins)"
                )
            return self.state

    def abort(self, reason: str = "operator abort") -> str:
        """Roll back immediately, whatever the windows say."""
        with self._lock:
            if self.state not in (SHADOW, CANARY):
                return self.state
            return self._rollback_locked(reason)

    # ------------------------------------------------------------------ #
    # internals (lock held)
    # ------------------------------------------------------------------ #

    def _advance_locked(self, staged_total: int) -> str:
        if self.state == SHADOW:
            self.service.set_rollout(
                CanaryFraction(
                    self.staged, self.config.canary_fraction, salt=self.staged
                )
            )
            self._phase_entry_count = staged_total
            self._phase_entered_at = self._clock()
            return self._transition_locked(CANARY, "shadow window within margin")
        self.service.registry.activate(self.staged)
        self.service.set_rollout(FullActivation())
        return self._transition_locked(PROMOTED, "canary window within margin")

    def _rollback_locked(self, reason: str) -> str:
        self.service.set_rollout(FullActivation())
        self.service.registry.clear_staged()
        return self._transition_locked(ROLLED_BACK, reason)

    def _transition_locked(self, state: str, reason: str) -> str:
        self.state = state
        transition = RolloutTransition(
            state=state,
            reason=reason,
            staged_version=self.staged,
            staged_samples=self.feedback.error_window(self.staged).total,
            at=time.time(),
        )
        self.transitions.append(transition)
        if self.journal is not None:
            # Safe under our lock: the journal only takes its own lock
            # and never calls back out. Never allowed to fail a rollout.
            try:
                self.journal.record(
                    "rollout.transition",
                    state=state,
                    reason=reason,
                    staged_version=self.staged,
                    staged_samples=transition.staged_samples,
                )
            except Exception:
                pass
        return state

    def describe(self) -> dict:
        """Metrics-friendly controller summary."""
        with self._lock:
            return {
                "state": self.state,
                "staged_version": self.staged,
                "active_at_stage": self._active_at_stage,
                "transitions": [
                    {"state": t.state, "reason": t.reason, "samples": t.staged_samples}
                    for t in self.transitions
                ],
            }
