"""Transport frontends: request ingress for the scheduler core.

A frontend owns how requests *arrive*; it never schedules or executes.
Every frontend feeds the same :class:`~repro.serving.service.CostModelService`
scheduler core, so micro-batching coalesces traffic across transports —
an in-process tuner thread and a remote socket client land in the same
micro-batch and share the same forward.

* :class:`InProcessFrontend` — the zero-copy path: requests pass by
  reference into the scheduler. This is what PR 2 shipped implicitly; it
  is now a named layer.
* :class:`SocketFrontend` — a length-prefixed TCP server speaking the
  typed protocol's wire form (:func:`~repro.serving.protocol.decode_request`
  / :meth:`~repro.serving.protocol.Response.to_bytes`), so tuners in
  other processes or machines share one warm model. Ingress is a single
  selector loop (not a thread per connection): one scheduling quantum
  drains *every* readable connection, so concurrent clients' requests
  enter the micro-batcher together and coalesce — and N connections cost
  one thread. Responses are written from future callbacks as their
  micro-batches resolve, correlated by request id, so a pipelining
  client gets replies in completion order.

Pick the in-process frontend whenever the client can import the service
object (same interpreter, lowest latency). Pick the socket frontend when
clients live in other processes or hosts — its cost is one serialize +
deserialize per hop (mostly interned away for warm kernels), amortized
by the same micro-batching.
"""
from __future__ import annotations

import select
import selectors
import socket
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field, replace

from .client import ServiceEvaluator
from .faults import FaultInjector, corrupt_bytes
from .protocol import (
    ERROR_DISCONNECTED,
    ERROR_OVERLOADED,
    ERROR_UNAVAILABLE,
    NEED_KERNEL_PREFIX,
    Response,
    UnknownKernelError,
    WireError,
    decode_request,
    extract_frame,
    frame_bytes,
    kernel_interner,
)
from .resilience import Overloaded
from .service import CostModelService


class Frontend:
    """A request-ingress surface bound to one service (scheduler core)."""

    def __init__(self, service: CostModelService) -> None:
        self.service = service

    def close(self) -> None:
        """Release transport resources; idempotent."""

    def __enter__(self) -> "Frontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessFrontend(Frontend):
    """The same-interpreter ingress path: submit by reference.

    Thin by design — naming the layer is the point, so both transports
    have the same shape and the service itself stays transport-blind.
    """

    def submit(self, request):
        """Enqueue a request; returns the response future."""
        return self.service.submit(request)

    def evaluator(self, timeout_s: float = 60.0) -> ServiceEvaluator:
        """A client speaking the standard evaluator protocol."""
        return ServiceEvaluator(self.service, timeout_s=timeout_s)


@dataclass(eq=False)  # identity hashing: connections live in a set
class _Connection:
    """Per-connection ingress state on the selector loop."""

    sock: socket.socket
    #: Partial-frame accumulation between readiness events.
    buffer: bytearray = field(default_factory=bytearray)
    #: Connection-scoped kernel interning: a client ships each kernel
    #: graph once, then references it by fingerprint (the graph is the
    #: dominant per-request serialization cost). Scoping per connection
    #: keeps peers from observing or poisoning each other's kernels.
    interner: dict = field(default_factory=kernel_interner)
    #: Serializes response writes (future callbacks race per connection).
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    #: Requests submitted but not yet answered, by request id. On
    #: disconnect every still-pending future is resolved with a typed
    #: ``disconnected`` response so no waiter (shadow scorer, test,
    #: service shed pass) blocks on a peer that will never read the
    #: answer.
    inflight: dict[int, Future] = field(default_factory=dict)
    inflight_lock: threading.Lock = field(default_factory=threading.Lock)
    broken: bool = False


class SocketFrontend(Frontend):
    """Length-prefixed TCP ingress: remote tuners share the warm model.

    Args:
        service: the scheduler core to feed.
        host: bind address (default loopback).
        port: bind port; 0 picks a free one (read :attr:`address`).
        backlog: listen backlog.
        max_interned_kernels: per-connection kernel-interner bound.
        fault_injector: optional chaos injector; its ``frontend.recv``
            rules apply to inbound socket reads (``drop`` severs the
            connection, ``corrupt`` flips a byte so framing fails and
            the peer is dropped, ``delay`` adds ingress latency).

    One background thread multiplexes accept + read over every
    connection with a selector; decoded requests are submitted straight
    into the service's micro-batcher. If the service has no worker
    thread, the loop pumps :meth:`CostModelService.flush` after each
    drain (deterministic single-threaded mode, used by tests); with a
    running worker, the loop only ingests and the worker executes.

    Counters (``connections``, ``frames_in``, ``frames_out``,
    ``decode_errors``) are exposed via :meth:`stats`.
    """

    #: Max total wait for one response write before the peer is dropped.
    _SEND_DEADLINE_S = 10.0

    def __init__(
        self,
        service: CostModelService,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 64,
        max_interned_kernels: int = 4096,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        super().__init__(service)
        self.max_interned_kernels = max_interned_kernels
        self._faults = fault_injector
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        self.address: tuple[str, int] = self._listener.getsockname()
        self._lock = threading.Lock()
        self._closed = False
        self._connections: set[_Connection] = set()
        self.connections = 0
        self.frames_in = 0
        self.frames_out = 0
        self.decode_errors = 0
        self.dropped_connections = 0
        self.abandoned_requests = 0
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ, "accept")
        # Self-pipe so close() can interrupt a blocked select().
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, "wake")
        self._thread = threading.Thread(
            target=self._io_loop, name="socket-frontend-io", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # ingress loop
    # ------------------------------------------------------------------ #

    def _io_loop(self) -> None:
        while True:
            events = self._selector.select(timeout=0.5)
            if self._closed:
                return
            ingested = False
            for key, _mask in events:
                if key.data == "accept":
                    self._accept_ready()
                elif key.data == "wake":
                    try:
                        self._wake_r.recv(4096)
                    except OSError:
                        pass
                else:
                    ingested |= self._read_ready(key.data)
            if ingested and not self.service.is_running:
                # No worker thread: pump the scheduler on the IO thread
                # so a sync-mode service still answers socket clients.
                self.service.flush()

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock=sock)
            with self._lock:
                if self._closed:
                    sock.close()
                    return
                self._connections.add(connection)
                self.connections += 1
            self._selector.register(sock, selectors.EVENT_READ, connection)

    def _read_ready(self, connection: _Connection) -> bool:
        """Drain one readable connection; True if any request was submitted."""
        try:
            data = connection.sock.recv(1 << 18)
        except BlockingIOError:
            return False
        except OSError:
            self._drop(connection)
            return False
        if not data:
            self._drop(connection)
            return False
        if self._faults is not None:
            rule = self._faults.fire("frontend.recv")
            if rule is not None:
                if rule.kind in ("drop", "kill"):
                    # Sever the connection mid-frame: the peer sees a
                    # reset and its in-flight requests resolve typed.
                    self._drop(connection)
                    return False
                if rule.kind == "corrupt":
                    data = corrupt_bytes(data)
                elif rule.kind in ("delay", "hang"):
                    FaultInjector.maybe_delay(rule)
        connection.buffer.extend(data)
        ingested = False
        while True:
            try:
                frame = extract_frame(connection.buffer)
            except WireError:
                # Framing is unrecoverable mid-stream: drop the peer.
                self._drop(connection)
                return ingested
            if frame is None:
                return ingested
            self._handle_frame(connection, *frame)
            ingested = True

    def _handle_frame(
        self, connection: _Connection, request_id: int, body: bytes
    ) -> None:
        with self._lock:
            self.frames_in += 1
        tracer = self.service.tracer
        recv_at = time.time() if tracer is not None else 0.0
        try:
            request = decode_request(
                body,
                interner=connection.interner,
                max_interned=self.max_interned_kernels,
            )
        except UnknownKernelError as exc:
            # Interner miss on a fingerprint-only reference: ask the
            # client to retry with the kernel attached (the pipe-executor
            # miss/retry contract, over TCP).
            self._send(
                connection,
                request_id,
                Response(
                    value=None,
                    model_version=self.service.registry.active_version or "",
                    error=f"{NEED_KERNEL_PREFIX} {exc.fingerprint}",
                ),
                deadline_s=1.0,  # IO thread: never stall other peers' ingress
            )
            return
        except WireError as exc:
            with self._lock:
                self.decode_errors += 1
            self._send(
                connection,
                request_id,
                Response(
                    value=None,
                    model_version=self.service.registry.active_version or "",
                    error=f"bad request: {exc}",
                ),
                deadline_s=1.0,
            )
            return
        if tracer is not None:
            # Open (or adopt, for client-stamped contexts) the trace
            # here, where the frame actually arrived — the root span's
            # start predates decode, and the recv/decode cost shows as
            # its first child.
            ctx = tracer.ingress(
                request, process="frontend", name="request", start=recv_at
            )
            if ctx is not None:
                tracer.record(
                    ctx,
                    "frontend.recv",
                    start=recv_at,
                    process="frontend",
                    attrs={"transport": "socket", "bytes": len(body)},
                )
                request = replace(request, trace=ctx)
            elif getattr(request, "trace", None) is not None:
                # Sampled out: strip the wire context so no downstream
                # hook mistakes the request for a traced one.
                request = replace(request, trace=None)
        try:
            future = self.service.submit(request)
        except Overloaded as exc:
            # Admission control shed the request at the door: a typed,
            # retryable answer the client can back off on.
            self._send(
                connection,
                request_id,
                Response(
                    value=None,
                    model_version=self.service.registry.active_version or "",
                    error=str(exc),
                    error_code=ERROR_OVERLOADED,
                ),
                deadline_s=1.0,
            )
            return
        except Exception as exc:
            # A stopped service (closed scheduler) must answer, not kill
            # the IO thread and silently hang every connected client.
            self._send(
                connection,
                request_id,
                Response(
                    value=None,
                    model_version=self.service.registry.active_version or "",
                    error=f"service unavailable: {exc}",
                    error_code=ERROR_UNAVAILABLE,
                ),
                deadline_s=1.0,
            )
            return
        with connection.inflight_lock:
            connection.inflight[request_id] = future

        def _respond(fut: Future, rid: int = request_id) -> None:
            with connection.inflight_lock:
                connection.inflight.pop(rid, None)
            self._send(connection, rid, fut.result())

        future.add_done_callback(_respond)

    # ------------------------------------------------------------------ #
    # egress
    # ------------------------------------------------------------------ #

    def _send(
        self,
        connection: _Connection,
        request_id: int,
        response: Response,
        deadline_s: float | None = None,
    ) -> None:
        """Write one response frame (from worker/callback threads).

        The socket is non-blocking (it lives on the selector); small
        response frames virtually never fill the kernel buffer, and when
        one does we briefly wait for writability here rather than run a
        full outbound-queue state machine. The wait is bounded — this may
        run on the service's worker thread (future callbacks), so a peer
        that stops reading must never wedge response delivery for
        everyone: past the deadline the connection is dropped entirely
        (its requests must stop consuming forwards for discarded
        responses).
        """
        if connection.broken:
            return
        if deadline_s is None and threading.current_thread() is self._thread:
            # Any send on the selector IO thread — including a cache-hit
            # future that resolved inline during submit — must never
            # stall other peers' ingress behind one non-reading peer.
            deadline_s = 1.0
        try:
            payload = memoryview(frame_bytes(request_id, response.to_bytes()))
            deadline = time.monotonic() + (deadline_s or self._SEND_DEADLINE_S)
            with connection.send_lock:
                while payload:
                    try:
                        sent = connection.sock.send(payload)
                    except BlockingIOError:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise OSError("send deadline exceeded") from None
                        select.select([], [connection.sock], [], min(remaining, 1.0))
                        continue
                    payload = payload[sent:]
            with self._lock:
                self.frames_out += 1
        except (OSError, ValueError):
            # Peer went away or stopped reading: drop it so its pending
            # frames stop being decoded and executed for nothing.
            self._drop(connection)

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "connections": self.connections,
                "open_connections": len(self._connections),
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "decode_errors": self.decode_errors,
                "dropped_connections": self.dropped_connections,
                "abandoned_requests": self.abandoned_requests,
            }

    def _drop(self, connection: _Connection) -> None:
        connection.broken = True
        try:
            self._selector.unregister(connection.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            connection.sock.close()
        except OSError:
            pass
        with connection.inflight_lock:
            inflight = list(connection.inflight.values())
            connection.inflight.clear()
        abandoned = 0
        for future in inflight:
            if future.done():
                continue
            # Resolve, don't cancel: the service's shed pass skips done
            # futures (counted abandoned), and any other waiter gets a
            # typed error instead of blocking forever.
            try:
                future.set_result(
                    Response(
                        value=None,
                        model_version=self.service.registry.active_version or "",
                        error="client disconnected before response",
                        error_code=ERROR_DISCONNECTED,
                    )
                )
                abandoned += 1
            except InvalidStateError:
                pass  # raced a concurrent resolution; its callback won
        with self._lock:
            self._connections.discard(connection)
            self.dropped_connections += 1
            self.abandoned_requests += abandoned

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections)
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass
        self._thread.join(timeout=2)
        for connection in connections:
            self._drop(connection)
        for sock in (self._listener, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()


__all__ = [
    "Frontend",
    "InProcessFrontend",
    "SocketFrontend",
]
