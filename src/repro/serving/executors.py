"""Execution backends: where a micro-batch's model forwards actually run.

The scheduler core (:class:`~repro.serving.service.CostModelService`)
reduces each micro-batch to a list of shard-annotated *commands* — one
coalesced forward each — and hands them to an :class:`Executor`. Two
placements implement the interface:

* :class:`InThreadExecutor` — today's behaviour and the default: a
  fingerprint-sharded :class:`~repro.serving.replica.ReplicaPool` in the
  service's own process, commands executed sequentially on the worker
  thread. Zero IPC cost; forwards serialize on the GIL.
* :class:`ProcessShardExecutor` — each fingerprint-shard lives in its own
  worker subprocess fed over a pipe. Commands for different shards run
  truly in parallel (no GIL contention); checkpoints ship to workers as
  the registry's blob bytes, and a worker that dies is respawned and
  resynced to the in-flight version before it serves anything.

Both backends route through the same versioned
:class:`~repro.serving.placement.ShardMap` (whose uniform default matches
the legacy stable digest-slice function), so a request lands on the same
shard regardless of placement — what makes the two backends
interchangeable (and bitwise-identical at equal batch shape). Both also
act on :class:`~repro.serving.placement.RebalancePlan`s via
:meth:`Executor.apply_plan`: the in-thread pool resizes its replicas
(autoscaling), the process executor performs a version-safe live
migration (spawn + blob-sync new workers, swap the map, drain retired
workers).

Both backends keep a small LRU of **live versions** (``max_live_versions``,
default 2): a canary/shadow rollout alternates active- and staged-version
batches every few milliseconds, and serving both from warm state — warm
replica pools in-thread, per-version evaluators inside each worker
process — is what makes a rollout cost a version *switch* instead of a
version *rebuild* per batch.
"""
from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..compiler.kernels import Kernel
from ..compiler.tiling import TileConfig
from .faults import FaultInjector, FaultPlan
from .placement import RebalancePlan, ShardMap
from .protocol import lru_touch
from .registry import ModelRegistry
from .replica import ReplicaPool, shard_of
from .resilience import CrashLoopBackoff
from .workers import shard_worker


@dataclass(frozen=True)
class TileCommand:
    """One coalesced tile-scoring forward: all tiles of one kernel.

    ``trace`` is an optional ``(trace_id, parent_span_id)`` token from
    the telemetry layer; executors that honour it report the forward's
    span back in :attr:`CommandResult.spans`. ``None`` (the default and
    the untraced path) changes nothing on the wire or in behaviour.
    """

    shard: int
    kernel: Kernel
    tiles: tuple[TileConfig, ...]
    trace: tuple | None = None


@dataclass(frozen=True)
class ProgramCommand:
    """One coalesced program-pricing forward over many kernel tuples.

    ``trace`` — see :class:`TileCommand`.
    """

    shard: int
    programs: tuple[tuple[Kernel, ...], ...]
    trace: tuple | None = None


Command = TileCommand | ProgramCommand


@dataclass
class CommandResult:
    """Outcome of one command: a score array, or a traceback string.

    ``forwards`` is the number of model forward passes this result cost —
    0 for commands that rode along in another command's fused forward.

    ``infra`` marks an *infrastructure* failure — the worker died, hung
    past the dispatch timeout, or could not be (re)spawned — as opposed
    to the model itself raising on the inputs. The service feeds only
    infrastructure failures to the shard's circuit breaker and the
    graceful-degradation path; a model error is the request's own fault
    and is surfaced as-is.

    ``spans`` carries plain span dicts recorded where the forward ran
    (inside a shard-worker subprocess, or on the executing thread) for
    traced commands; the service re-parents them into each sampled
    request's trace. Empty for untraced commands.
    """

    value: np.ndarray | None = None
    error: str | None = None
    forwards: int = 1
    infra: bool = False
    spans: tuple = ()


def forward_span(trace: tuple, start: float, shard: int, process: str) -> dict:
    """A plain span dict for one traced forward (``(trace_id, parent)``
    token in, :attr:`CommandResult.spans` entry out — the same shape the
    shard workers ship over the pipe)."""
    return {
        "trace_id": trace[0],
        "parent_id": trace[1],
        "name": "worker.forward",
        "start": start,
        "end": time.time(),
        "process": process,
        "attrs": {"shard": shard, "pid": os.getpid()},
    }


class Executor(ABC):
    """Placement-agnostic execution backend for coalesced forwards."""

    #: Number of fingerprint shards (routing targets) this backend runs.
    num_shards: int = 1

    #: The versioned fingerprint → shard assignment in force. ``None``
    #: (e.g. a minimal test double) falls back to the legacy static
    #: ``fingerprint % n`` routing.
    shard_map: ShardMap | None = None

    def shard_for(self, shard_key: str) -> int:
        """The shard owning ``shard_key`` (stable digest-slice routing)."""
        if self.shard_map is not None:
            return self.shard_map.shard_for(shard_key)
        return shard_of(shard_key, self.num_shards)

    def apply_plan(self, plan: RebalancePlan) -> dict:
        """Act on a rebalance plan: re-place shards, swap the map.

        Implementations must apply the change atomically with respect to
        :meth:`run` — the serving layer additionally serializes both
        under its execution lock, so the swap always lands at a
        micro-batch boundary. Raises on a stale plan (``new_map.version``
        not above the current map's).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support placement changes"
        )

    def _check_plan(self, plan: RebalancePlan) -> ShardMap:
        if self.shard_map is None:
            raise ValueError("executor has no shard map to replace")
        if plan.new_map.version <= self.shard_map.version:
            raise ValueError(
                f"stale rebalance plan: map version {plan.new_map.version} "
                f"<= current {self.shard_map.version}"
            )
        return plan.new_map

    @abstractmethod
    def run(self, version: str, commands: list[Command]) -> list[CommandResult]:
        """Execute ``commands`` against checkpoint ``version``.

        Returns one :class:`CommandResult` per command, in order. A
        command failure lands in its result's ``error``; only a failure
        of the backend itself (e.g. an unknown version) may raise.
        """

    @abstractmethod
    def stats(self) -> dict:
        """Aggregated evaluator cache counters across shards."""

    def shard_stats(self) -> list[dict]:
        """Per-shard placement/liveness details (may be empty)."""
        return []

    def close(self) -> None:
        """Release backend resources; idempotent."""


class InThreadExecutor(Executor):
    """Replica-pool backend in the service's own process (the default).

    Args:
        registry: source of checkpoints (the service shares its own).
        replicas: shard count — evaluator replicas in the pool.
        max_cached_kernels: per-shard precompute/feature memo bound.
        share_kernel_cache: one precompute cache for all replicas.
        max_live_versions: warm replica pools kept concurrently (LRU).
            2 covers a rollout (active + staged) without rebuild thrash.
        fuse_tile_commands: opt-in cross-kernel fusion — all of a shard's
            tile commands in one micro-batch execute as a single
            multi-kernel forward (``score_tile_groups``), the same
            batching policy the process executor already applies inside
            each worker. Fusing changes the forward's batch shape, which
            moves scores only at float32 BLAS rounding level; a batch
            holding a single tile command per shard keeps its exact
            batch shape and stays bitwise-identical to the unfused path.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        replicas: int = 1,
        max_cached_kernels: int = 1024,
        share_kernel_cache: bool = True,
        max_live_versions: int = 2,
        fuse_tile_commands: bool = False,
        shard_map: ShardMap | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if max_live_versions < 1:
            raise ValueError("max_live_versions must be >= 1")
        self.registry = registry
        self.shard_map = shard_map or ShardMap.uniform(replicas)
        self.num_shards = self.shard_map.num_shards
        self.max_cached_kernels = max_cached_kernels
        self.share_kernel_cache = share_kernel_cache
        self.max_live_versions = max_live_versions
        self.fuse_tile_commands = fuse_tile_commands
        # Guards _pools: the serving thread LRU-touches it every batch
        # while metrics scrapes iterate it from other threads.
        self._pools_lock = threading.Lock()
        self._pools: OrderedDict[str, ReplicaPool] = OrderedDict()

    def _pool_for(self, version: str) -> ReplicaPool:
        with self._pools_lock:
            pool = self._pools.get(version)
            if pool is not None:
                lru_touch(self._pools, version, pool, self.max_live_versions)
                return pool
        # Build outside the lock (deserializing a checkpoint is slow and
        # must not block metrics); a racing builder of the same version
        # just wastes one construction.
        pool = ReplicaPool(
            self.registry.get(version),
            version,
            replicas=self.num_shards,
            max_cached_kernels=self.max_cached_kernels,
            share_kernel_cache=self.share_kernel_cache,
        )
        with self._pools_lock:
            existing = self._pools.get(version)
            if existing is not None:
                pool = existing
            lru_touch(self._pools, version, pool, self.max_live_versions)
            return pool

    def _run_fused_tiles(
        self,
        pool: ReplicaPool,
        commands: list[Command],
        results: list[CommandResult | None],
    ) -> None:
        """Execute all tile commands, one fused forward per shard."""
        by_shard: dict[int, list[int]] = {}
        for index, command in enumerate(commands):
            if isinstance(command, TileCommand):
                by_shard.setdefault(command.shard, []).append(index)
        for shard, indices in by_shard.items():
            evaluator = pool.replicas[shard]
            groups = [
                (commands[i].kernel, list(commands[i].tiles)) for i in indices
            ]
            trace = next(
                (commands[i].trace for i in indices
                 if commands[i].trace is not None),
                None,
            )
            started = time.time() if trace is not None else 0.0
            try:
                arrays = evaluator.score_tile_groups(groups)
                spans: tuple = ()
                if trace is not None:
                    # One shared fused forward: every command in it gets
                    # the span (it describes the forward each rode in).
                    spans = (forward_span(trace, started, shard, "replica"),)
                for position, (index, value) in enumerate(zip(indices, arrays)):
                    results[index] = CommandResult(
                        value=np.asarray(value),
                        forwards=1 if position == 0 else 0,
                        spans=spans,
                    )
            except Exception:
                message = traceback.format_exc()
                for index in indices:
                    results[index] = CommandResult(error=message)

    def run(self, version: str, commands: list[Command]) -> list[CommandResult]:
        pool = self._pool_for(version)
        results: list[CommandResult | None] = [None] * len(commands)
        if self.fuse_tile_commands:
            self._run_fused_tiles(pool, commands, results)
        for index, command in enumerate(commands):
            if results[index] is not None:
                continue
            evaluator = pool.replicas[command.shard]
            started = time.time() if command.trace is not None else 0.0
            try:
                if isinstance(command, TileCommand):
                    value = evaluator.score_tiles_batched(
                        command.kernel, list(command.tiles)
                    )
                else:
                    value = evaluator.program_runtimes_batched(
                        [list(kernels) for kernels in command.programs]
                    )
                spans = (
                    (forward_span(
                        command.trace, started, command.shard, "replica"
                    ),)
                    if command.trace is not None
                    else ()
                )
                results[index] = CommandResult(
                    value=np.asarray(value), spans=spans
                )
            except Exception:
                results[index] = CommandResult(error=traceback.format_exc())
        return results

    def stats(self) -> dict:
        with self._pools_lock:
            pools = list(self._pools.values())
        total: dict[str, int] = {}
        for pool in pools:
            for key, value in pool.stats().items():
                total[key] = total.get(key, 0) + value
        total["live_versions"] = len(pools)
        return total

    def shard_stats(self) -> list[dict]:
        with self._pools_lock:
            # Most-recently-used pool = the version that served last.
            current = next(reversed(self._pools)) if self._pools else None
            live = len(self._pools)
        return [
            {"shard": i, "placement": "thread", "alive": True,
             "version": current, "live_versions": live}
            for i in range(self.num_shards)
        ]

    def apply_plan(self, plan: RebalancePlan) -> dict:
        """Replica autoscaling + bucket moves for the in-thread pool.

        Every live version's pool is resized to the plan's shard count
        (new replicas share the kernel cache, whose bound rescales with
        the pool), then the map swaps. Callers serialize against
        :meth:`run` (the service holds its execution lock for both), so
        a command annotated under one map never executes under another.
        """
        new_map = self._check_plan(plan)
        with self._pools_lock:
            pools = list(self._pools.values())
        # Resizing builds evaluators (slow) — do it before taking the
        # map forward, outside the pools lock so metrics stay live.
        for pool in pools:
            pool.resize(new_map.num_shards)
        with self._pools_lock:
            self.shard_map = new_map
            self.num_shards = new_map.num_shards
        return {
            "placement": "thread",
            "map_version": new_map.version,
            "num_shards": new_map.num_shards,
            "moves": len(plan.moves),
            "resized_pools": len(pools),
        }


@dataclass
class _Shard:
    """Parent-side state of one worker subprocess."""

    index: int
    process: object = None
    conn: object = None
    #: Version the worker's *current* evaluator serves.
    version: str | None = None
    restarts: int = 0
    commands: int = 0
    #: Fingerprints the worker currently interns — steady-state requests
    #: for these ship without the (re-pickled) kernel graph attached.
    known: OrderedDict = field(default_factory=OrderedDict)
    #: Versions the worker holds a warm evaluator for (parent-side mirror
    #: of the worker's per-version LRU); switching to one of these is a
    #: cheap ``use`` message instead of a blob reload.
    loaded: OrderedDict = field(default_factory=OrderedDict)
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Respawn suppression: a worker that dies on every boot must fail
    #: fast (the service degrades its requests) instead of spinning the
    #: spawn path hot. One successful round trip resets it.
    backoff: CrashLoopBackoff = field(default_factory=CrashLoopBackoff)


class WorkerDiedError(RuntimeError):
    """A shard worker was unreachable even after a respawn."""


#: Pipe/worker failures that trigger a respawn + resync + retry.
_PIPE_ERRORS = (WorkerDiedError, EOFError, BrokenPipeError, OSError)


class ProcessShardExecutor(Executor):
    """Fingerprint shards in worker subprocesses — parallel forwards.

    Args:
        registry: source of checkpoint blobs shipped to workers.
        shards: worker process count.
        max_cached_kernels: per-worker evaluator cache / interning bound.
        start_method: ``multiprocessing`` start method. ``spawn`` (the
            default) is safe alongside the service's threads; ``fork`` is
            faster to boot but inherits the parent's thread state.
        request_timeout_s: the dispatch watchdog — per-message reply
            deadline before a worker is declared *hung* and
            killed/respawned. Pipe reads always use this bounded poll
            (never a blocking ``recv``), so a stopped-but-alive worker
            can stall one batch for at most this long, not forever.
        max_live_versions: warm per-version evaluators each worker keeps
            (LRU). 2 covers a rollout (active + staged): alternating
            versions between micro-batches costs a one-word ``use``
            message instead of re-shipping and re-deserializing the blob.
        fault_injector: optional chaos harness
            (:class:`~repro.serving.faults.FaultInjector`). Fires
            ``executor.dispatch`` parent-side per shard per batch (kill =
            SIGKILL, hang = SIGSTOP — the parent-side counters persist
            across respawns, which worker-side rules cannot), filters
            checkpoint blobs through ``registry.load`` on the way to
            workers, and ships the plan's ``worker.`` subset into each
            spawned worker. ``None`` (default) adds zero overhead.

    Workers are lazy: nothing is spawned until the first :meth:`run`, so
    constructing a service with this backend is cheap. Version sync is
    per-run: :meth:`run` ships the target version's blob to any shard not
    already on it (including a freshly respawned one) *before* that shard
    executes a command — the cross-process half of the hot-swap atomicity
    guarantee.

    Dispatch is two-phase per batch: every involved shard's whole slice
    is written to its pipe first (workers start computing immediately, in
    parallel), then replies are collected. A shard's tile commands are
    *fused* into one multi-kernel forward (``tile_batch``) — one pipe
    round trip and one forward per shard per batch, which is what
    amortizes the process boundary. Fusing changes the forward's batch
    shape, which moves scores only at float32 BLAS rounding level (the
    same trade micro-batch coalescing already makes); a batch holding a
    single tile command keeps its exact in-thread batch shape and stays
    bitwise-identical. Messages and replies are small relative to the
    pipe buffer, so the unacknowledged sends cannot deadlock.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        shards: int = 2,
        max_cached_kernels: int = 1024,
        start_method: str = "spawn",
        request_timeout_s: float = 30.0,
        max_live_versions: int = 2,
        shard_map: ShardMap | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_live_versions < 1:
            raise ValueError("max_live_versions must be >= 1")
        self.registry = registry
        self.shard_map = shard_map or ShardMap.uniform(shards)
        self.num_shards = self.shard_map.num_shards
        self.max_cached_kernels = max_cached_kernels
        self.request_timeout_s = request_timeout_s
        self.max_live_versions = max_live_versions
        self._faults = fault_injector
        worker_plan: FaultPlan | None = None
        if fault_injector is not None:
            worker_plan = fault_injector.plan.subset("worker.")
            if not worker_plan.rules:
                worker_plan = None
        self._worker_plan = worker_plan
        #: Duck-typed ops journal; worker respawns and crash-loop
        #: suppressions are recorded when present (``None`` = free).
        self.journal = None
        self._ctx = multiprocessing.get_context(start_method)
        self._shards = [_Shard(index=i) for i in range(self.num_shards)]
        # Serializes migrations (the shard list and map are only mutated
        # under it); the slow spawn/sync phase runs with no shard lock
        # held, so serving continues on the old placement meanwhile.
        self._migrate_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # worker lifecycle
    # ------------------------------------------------------------------ #

    @staticmethod
    def _stop_process(process) -> None:
        """Stop a worker process, escalating to SIGKILL.

        SIGTERM alone is not enough: a *stopped* (SIGSTOPped — the
        simulated-hang fault, or a genuinely wedged) process holds the
        signal pending and never dies, so after a grace join the kill is
        unconditional.
        """
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(timeout=1)
        if process.is_alive():
            process.kill()
            process.join(timeout=5)

    def _journal(self, kind: str, **fields) -> None:
        """Record a worker lifecycle event; never allowed to fail a
        dispatch (the journal only takes its own lock, so calling under
        a shard lock cannot deadlock)."""
        if self.journal is None:
            return
        try:
            self.journal.record(kind, **fields)
        except Exception:
            pass

    def _spawn_locked(self, shard: _Shard) -> None:
        """(Re)start ``shard``'s worker; caller holds ``shard.lock``."""
        respawn = shard.process is not None
        if respawn:
            shard.restarts += 1
            try:
                shard.conn.close()
            except OSError:
                pass
            self._stop_process(shard.process)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker,
            args=(
                child_conn,
                self.max_cached_kernels,
                self.max_live_versions,
                shard.index,
                self._worker_plan,
            ),
            name=f"cost-model-shard-{shard.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        shard.process = process
        shard.conn = parent_conn
        shard.version = None
        shard.known.clear()
        shard.loaded.clear()
        if respawn:
            self._journal(
                "worker.respawn",
                shard=shard.index,
                restarts=shard.restarts,
                pid=process.pid,
            )

    def _recv_locked(self, shard: _Shard):
        """Await one reply; raises on a dead or hung worker."""
        if not shard.conn.poll(self.request_timeout_s):
            raise WorkerDiedError(
                f"shard {shard.index} worker did not reply within "
                f"{self.request_timeout_s}s"
            )
        return shard.conn.recv()

    def _invalidate_locked(self, shard: _Shard) -> None:
        """Declare ``shard``'s pipe stream unusable after any failure.

        Killing the process (even if it is merely slow or hung, not
        dead) is what keeps the protocol in sync: a late reply from an
        abandoned command must never be mistaken for the ack of a later
        message, so the next :meth:`_sync_locked` always starts from a
        fresh process and a fresh pipe. Every invalidation also feeds
        the shard's crash-loop backoff — the respawn suppressor.
        """
        shard.version = None
        shard.loaded.clear()
        shard.backoff.record_failure()
        self._stop_process(shard.process)

    def _request_locked(self, shard: _Shard, message: tuple):
        """One send/recv round trip; raises on a dead or hung worker."""
        shard.conn.send(message)
        return self._recv_locked(shard)

    def _sync_locked(self, shard: _Shard, version: str) -> None:
        """Bring ``shard`` onto ``version``, respawning if needed.

        A version the worker already holds a warm evaluator for switches
        with a ``use`` message (no blob, no deserialize) — the fast path
        a rollout's per-batch version alternation rides on. A ``use``
        miss (the worker's per-version LRU evicted it) falls back to a
        full blob load, exactly like a kernel-interning miss.
        """
        alive = shard.process is not None and shard.process.is_alive()
        if alive and shard.version == version:
            return
        if not alive:
            suppressed = shard.backoff.remaining()
            if suppressed > 0:
                self._journal(
                    "worker.respawn_suppressed",
                    shard=shard.index,
                    remaining_s=suppressed,
                    failures=shard.backoff.failures,
                )
                raise WorkerDiedError(
                    f"shard {shard.index} respawn suppressed for "
                    f"{suppressed:.2f}s (crash-loop backoff after "
                    f"{shard.backoff.failures} consecutive failures)"
                )
            self._spawn_locked(shard)
        if version in shard.loaded:
            reply = self._request_locked(shard, ("use", version))
            if reply[0] == "ok":
                shard.version = version
                lru_touch(shard.loaded, version, True, self.max_live_versions)
                return
            # Worker-side eviction (or an older worker): reload in full.
            shard.loaded.pop(version, None)
        blob = self.registry.blob(version)
        if self._faults is not None:
            blob = self._faults.filter_blob(
                "registry.load", blob, shard=shard.index
            )
        reply = self._request_locked(shard, ("load", version, blob))
        if reply[0] != "ok":
            raise WorkerDiedError(
                f"shard {shard.index} failed to load {version}: {reply[1]}"
            )
        shard.version = version
        lru_touch(shard.loaded, version, True, self.max_live_versions)

    def _remember_known_locked(self, shard: _Shard, fingerprint: str) -> None:
        lru_touch(shard.known, fingerprint, True, self.max_cached_kernels)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    @staticmethod
    def _tile_entry(command: TileCommand, shard: _Shard, force: bool) -> tuple:
        """Wire entry for one tile command: dims cross the pipe, not
        TileConfig objects (cheaper to pickle); the kernel rides along
        only when the worker has not interned it."""
        fingerprint = command.kernel.fingerprint()
        payload = (
            command.kernel
            if force or fingerprint not in shard.known
            else None
        )
        return (fingerprint, payload, [t.dims for t in command.tiles])

    @staticmethod
    def _program_entries(command: ProgramCommand, shard: _Shard, force: bool):
        """Wire entries for one program command: every kernel crosses as
        ``(fingerprint, kernel_or_None)``, interned like tile kernels —
        fusion-tuner populations re-price the same kernels constantly."""
        return tuple(
            tuple(
                (
                    k.fingerprint(),
                    k
                    if force or k.fingerprint() not in shard.known
                    else None,
                )
                for k in kernels
            )
            for kernels in command.programs
        )

    def _remember_program_locked(self, shard: _Shard, command: ProgramCommand) -> None:
        for kernels in command.programs:
            for kernel in kernels:
                self._remember_known_locked(shard, kernel.fingerprint())

    def _forget_locked(self, shard: _Shard, fingerprints) -> None:
        for fingerprint in fingerprints:
            shard.known.pop(fingerprint, None)

    @staticmethod
    def _with_trace(message: tuple, trace: tuple | None) -> tuple:
        """Append a ``(trace_id, parent_span_id)`` pipe token, if any.

        Untraced messages keep their exact pre-telemetry shape (and the
        worker keeps its exact pre-telemetry replies), which is what the
        bitwise-identity gate relies on.
        """
        return message + (trace,) if trace is not None else message

    @staticmethod
    def _reply_spans(reply) -> tuple:
        """Worker-recorded span dicts riding on an ``ok`` reply."""
        return tuple(reply[2]) if len(reply) > 2 else ()

    def _execute_one_locked(self, shard: _Shard, command: Command):
        """Round-trip one command; returns the worker's reply tuple."""
        if isinstance(command, TileCommand):
            shard.conn.send(self._with_trace(
                ("tiles",) + self._tile_entry(command, shard, False),
                command.trace,
            ))
            reply = self._recv_locked(shard)
            if reply[0] == "miss":
                # The worker evicted this kernel from its interning map;
                # retry with the kernel attached.
                shard.known.pop(command.kernel.fingerprint(), None)
                shard.conn.send(self._with_trace(
                    ("tiles",) + self._tile_entry(command, shard, True),
                    command.trace,
                ))
                reply = self._recv_locked(shard)
            if reply[0] == "ok":
                self._remember_known_locked(shard, command.kernel.fingerprint())
            return reply
        shard.conn.send(self._with_trace(
            ("programs", self._program_entries(command, shard, False)),
            command.trace,
        ))
        reply = self._recv_locked(shard)
        if reply[0] == "miss":
            self._forget_locked(shard, reply[1])
            shard.conn.send(self._with_trace(
                ("programs", self._program_entries(command, shard, True)),
                command.trace,
            ))
            reply = self._recv_locked(shard)
        if reply[0] == "ok":
            self._remember_program_locked(shard, command)
        return reply

    def _send_batch_locked(self, shard: _Shard, items) -> tuple:
        """Phase A: write a shard's whole batch slice to its pipe.

        Tile commands fuse into one ``tile_batch`` message (one forward,
        one round trip); program commands follow individually and are
        answered in order. Nothing is awaited here, so every involved
        shard's worker starts computing before any reply is read.
        """
        tile_items = [(i, c) for i, c in items if isinstance(c, TileCommand)]
        program_items = [
            (i, c) for i, c in items if isinstance(c, ProgramCommand)
        ]
        if tile_items:
            trace = next(
                (c.trace for _, c in tile_items if c.trace is not None), None
            )
            shard.conn.send(self._with_trace(
                (
                    "tile_batch",
                    [self._tile_entry(c, shard, False) for _, c in tile_items],
                ),
                trace,
            ))
        for _, command in program_items:
            shard.conn.send(self._with_trace(
                ("programs", self._program_entries(command, shard, False)),
                command.trace,
            ))
        return tile_items, program_items

    def _resolve_tile_batch_locked(
        self,
        shard: _Shard,
        tile_items,
        reply,
        results: list[CommandResult | None],
    ) -> None:
        """Fan a fused tile_batch reply back out to per-command results."""
        if reply[0] == "ok":
            spans = self._reply_spans(reply)
            for position, ((index, command), value) in enumerate(
                zip(tile_items, reply[1])
            ):
                self._remember_known_locked(shard, command.kernel.fingerprint())
                results[index] = CommandResult(
                    value=value,
                    forwards=1 if position == 0 else 0,
                    spans=spans,
                )
                shard.commands += 1
        else:
            message = (
                str(reply[1])
                if reply[0] == "err"
                else f"kernel interning retry failed: {reply[1]!r}"
            )
            for index, _ in tile_items:
                results[index] = CommandResult(error=message)
                shard.commands += 1

    def _resolve_program_locked(
        self,
        shard: _Shard,
        index: int,
        command: ProgramCommand,
        reply,
        results: list[CommandResult | None],
    ) -> None:
        shard.commands += 1
        if reply[0] == "ok":
            self._remember_program_locked(shard, command)
            results[index] = CommandResult(
                value=reply[1], spans=self._reply_spans(reply)
            )
        else:
            message = (
                str(reply[1])
                if reply[0] == "err"
                else f"kernel interning retry failed: {reply[1]!r}"
            )
            results[index] = CommandResult(error=message)

    def _recv_batch_locked(
        self,
        shard: _Shard,
        plan: tuple,
        results: list[CommandResult | None],
    ) -> None:
        """Phase B: collect one shard's replies (send order == reply order).

        Interning misses are retried only *after* every phase-A reply is
        drained: the worker is a FIFO loop, so a retry enqueued earlier
        would interleave with — and desync — the remaining phase-A
        replies.
        """
        tile_items, program_items = plan
        tile_reply = self._recv_locked(shard) if tile_items else None
        deferred: list[tuple[int, ProgramCommand]] = []
        for index, command in program_items:
            reply = self._recv_locked(shard)
            if reply[0] == "miss":
                self._forget_locked(shard, reply[1])
                deferred.append((index, command))
                continue
            self._resolve_program_locked(shard, index, command, reply, results)
        retry_tiles = tile_items and tile_reply[0] == "miss"
        if retry_tiles:
            # The worker evicted some referenced kernels: resend the whole
            # fused batch with every kernel attached.
            self._forget_locked(shard, tile_reply[1])
            trace = next(
                (c.trace for _, c in tile_items if c.trace is not None), None
            )
            shard.conn.send(self._with_trace(
                (
                    "tile_batch",
                    [self._tile_entry(c, shard, True) for _, c in tile_items],
                ),
                trace,
            ))
        for index, command in deferred:
            shard.conn.send(self._with_trace(
                ("programs", self._program_entries(command, shard, True)),
                command.trace,
            ))
        if retry_tiles:
            tile_reply = self._recv_locked(shard)
        if tile_items:
            self._resolve_tile_batch_locked(shard, tile_items, tile_reply, results)
        for index, command in deferred:
            reply = self._recv_locked(shard)
            self._resolve_program_locked(shard, index, command, reply, results)

    def _fallback_locked(
        self,
        shard: _Shard,
        version: str,
        items,
        results: list[CommandResult | None],
    ) -> None:
        """Second attempt, one command at a time on a fresh worker.

        Entered after a pipe failure: the worker died (or was killed)
        mid-flight. Each retry resyncs the respawned worker to `version`
        first, so a killed worker can never come back serving a stale
        checkpoint.
        """
        for position, (index, command) in enumerate(items):
            if results[index] is not None:
                continue  # completed before the pipe broke
            try:
                self._sync_locked(shard, version)
                reply = self._execute_one_locked(shard, command)
                shard.commands += 1
                shard.backoff.record_success()
                if reply[0] == "ok":
                    results[index] = CommandResult(
                        value=reply[1], spans=self._reply_spans(reply)
                    )
                else:
                    results[index] = CommandResult(error=str(reply[1]))
            except _PIPE_ERRORS:
                self._invalidate_locked(shard)
                message = (
                    f"shard {shard.index} worker died twice on one "
                    f"batch:\n{traceback.format_exc()}"
                )
                for remaining_index, _ in items[position:]:
                    if results[remaining_index] is None:
                        results[remaining_index] = CommandResult(
                            error=message, infra=True
                        )
                return

    def run(self, version: str, commands: list[Command]) -> list[CommandResult]:
        if self._closed:
            raise RuntimeError("executor is closed")
        per_shard: dict[int, list[tuple[int, Command]]] = {}
        for index, command in enumerate(commands):
            per_shard.setdefault(command.shard, []).append((index, command))
        results: list[CommandResult | None] = [None] * len(commands)
        # Two-phase dispatch on the caller's thread: send every shard its
        # whole slice first (workers start computing immediately, in
        # parallel), then collect replies shard by shard. No dispatcher
        # threads, no cross-thread signaling — the caller only blocks on
        # pipe IO, with the GIL released, while workers compute.
        # Locks are taken in shard order (deadlock-free vs. stats()).
        ordered = sorted(per_shard)
        acquired: list[_Shard] = []
        try:
            for shard_index in ordered:
                shard = self._shards[shard_index]
                shard.lock.acquire()
                acquired.append(shard)
            plans: dict[int, tuple | None] = {}
            for shard_index in ordered:
                shard = self._shards[shard_index]
                try:
                    self._sync_locked(shard, version)
                    if self._faults is not None:
                        self._dispatch_fault_locked(shard)
                    plans[shard_index] = self._send_batch_locked(
                        shard, per_shard[shard_index]
                    )
                except _PIPE_ERRORS:
                    self._invalidate_locked(shard)
                    plans[shard_index] = None
            for shard_index in ordered:
                shard = self._shards[shard_index]
                plan = plans[shard_index]
                if plan is not None:
                    try:
                        self._recv_batch_locked(shard, plan, results)
                        shard.backoff.record_success()
                        continue
                    except _PIPE_ERRORS:
                        self._invalidate_locked(shard)
                self._fallback_locked(
                    shard, version, per_shard[shard_index], results
                )
        finally:
            for shard in acquired:
                shard.lock.release()
        return [
            result
            if result is not None
            else CommandResult(error="command was not dispatched", infra=True)
            for result in results
        ]

    def _dispatch_fault_locked(self, shard: _Shard) -> None:
        """Fire the ``executor.dispatch`` chaos hook against one shard.

        Runs parent-side, between version sync and batch send: ``kill``
        SIGKILLs the worker mid-batch (the send/recv path then sees a
        dead pipe), ``hang`` SIGSTOPs it — alive but unresponsive, the
        exact failure the bounded-poll watchdog exists for (teardown
        later escalates to SIGKILL, since a stopped process ignores
        SIGTERM) — and ``delay`` sleeps the dispatcher.
        """
        rule = self._faults.fire("executor.dispatch", shard=shard.index)
        if rule is None:
            return
        if rule.kind in ("kill", "hang"):
            if shard.process is None or not shard.process.is_alive():
                return
            sig = signal.SIGKILL if rule.kind == "kill" else signal.SIGSTOP
            try:
                os.kill(shard.process.pid, sig)
            except (OSError, ProcessLookupError):
                pass
        else:
            FaultInjector.maybe_delay(rule)

    # ------------------------------------------------------------------ #
    # placement migration
    # ------------------------------------------------------------------ #

    def _sync_new_shard_locked(self, shard: _Shard) -> int:
        """Spawn ``shard``'s worker and sync every live registry version.

        The staged version (and any other non-active live version) ships
        as a ``warm`` message — loaded into the worker's per-version LRU
        without switching — and the active version as a normal ``load``,
        so the worker ends exactly like a long-lived one mid-rollout:
        serving active, staged warm. Returns the number of checkpoint
        blobs shipped.
        """
        versions = self.registry.live_versions
        if not versions:
            return 0
        self._spawn_locked(shard)
        synced = 0
        for version in versions[1:]:
            blob = self.registry.blob(version)
            if self._faults is not None:
                blob = self._faults.filter_blob(
                    "registry.load", blob, shard=shard.index
                )
            reply = self._request_locked(shard, ("warm", version, blob))
            if reply[0] != "ok":
                raise WorkerDiedError(
                    f"shard {shard.index} failed to warm {version}: {reply[1]}"
                )
            lru_touch(shard.loaded, version, True, self.max_live_versions)
            synced += 1
        self._sync_locked(shard, versions[0])
        return synced + 1

    def _retire_shard_locked(self, shard: _Shard) -> None:
        """Drain and stop a shard whose assignment the plan removed.

        The caller holds the shard's lock, so no command is in flight —
        the worker's queue is empty by construction and a clean ``exit``
        *is* the drain. Escalates to terminate only on a hung worker.
        """
        if shard.process is None:
            return
        try:
            shard.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        shard.process.join(timeout=2)
        self._stop_process(shard.process)
        try:
            shard.conn.close()
        except OSError:
            pass
        shard.process = None
        shard.conn = None
        shard.version = None
        shard.known.clear()
        shard.loaded.clear()

    def apply_plan(self, plan: RebalancePlan) -> dict:
        """Version-safe live migration: spawn, sync, swap, drain.

        Ordering is what makes this safe — and cheap — under traffic:

        1. shards the plan adds are spawned and synced to every live
           registry version (active loaded, staged warmed) with **no
           serving lock held**: they are unroutable until the map swaps,
           so the old placement keeps serving while the slow work
           (process boot, blob deserialize) happens off to the side;
        2. every shard's lock is then taken (index order, the same order
           :meth:`run` uses) — in-flight batches finish first and no new
           command can dispatch mid-swap;
        3. the shard map swaps — a single reference assignment, so the
           next batch routes by the new table against fully warm workers;
        4. shards the plan removed are drained (their queues are empty
           under the held locks) and stopped.

        No response is dropped (nothing in flight crosses the swap), no
        batch mixes versions (per-run version sync is untouched), and
        numerics cannot move: every worker serves the same checkpoint
        bytes, so *which* worker executes a command is unobservable in
        the scores.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        with self._migrate_lock:
            new_map = self._check_plan(plan)
            new_count = new_map.num_shards
            new_shards: list[_Shard] = []
            blobs_synced = 0
            try:
                for index in range(len(self._shards), new_count):
                    shard = _Shard(index=index)
                    with shard.lock:
                        blobs_synced += self._sync_new_shard_locked(shard)
                    new_shards.append(shard)
            except BaseException:
                # A failed sync must not leak the workers already booted.
                for shard in new_shards:
                    with shard.lock:
                        self._retire_shard_locked(shard)
                raise
            acquired: list[_Shard] = []
            try:
                for shard in list(self._shards):
                    shard.lock.acquire()
                    acquired.append(shard)
                for shard in new_shards:
                    shard.lock.acquire()
                    acquired.append(shard)
                    self._shards.append(shard)
                retired = self._shards[new_count:]
                del self._shards[new_count:]
                self.shard_map = new_map
                self.num_shards = new_count
                for shard in retired:
                    self._retire_shard_locked(shard)
            finally:
                for shard in acquired:
                    shard.lock.release()
        return {
            "placement": "process",
            "map_version": new_map.version,
            "num_shards": new_count,
            "moves": len(plan.moves),
            "workers_spawned": len(new_shards),
            "blobs_synced": blobs_synced,
            "workers_retired": len(retired),
        }

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #

    def _worker_stats(self, shard: _Shard) -> dict | None:
        with shard.lock:
            if shard.process is None or not shard.process.is_alive():
                return None
            try:
                reply = self._request_locked(shard, ("stats",))
            except (WorkerDiedError, EOFError, BrokenPipeError, OSError):
                return None
        return reply[1] if reply[0] == "ok" else None

    def stats(self) -> dict:
        """Summed evaluator cache counters across live workers."""
        # Snapshot: a concurrent migration may grow/shrink the list.
        shards = list(self._shards)
        total: dict[str, int] = {}
        for shard in shards:
            payload = self._worker_stats(shard)
            if not payload:
                continue
            for key, value in payload.items():
                if isinstance(value, (int, float)):
                    total[key] = total.get(key, 0) + value
        total["worker_restarts"] = sum(s.restarts for s in shards)
        return total

    def shard_stats(self) -> list[dict]:
        return [
            {
                "shard": shard.index,
                "placement": "process",
                "alive": shard.process is not None and shard.process.is_alive(),
                "version": shard.version,
                "restarts": shard.restarts,
                "commands": shard.commands,
                "known_kernels": len(shard.known),
                "live_versions": len(shard.loaded),
                "backoff_failures": shard.backoff.failures,
                "backoff_remaining_s": shard.backoff.remaining(),
            }
            for shard in list(self._shards)
        ]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard in list(self._shards):
            with shard.lock:
                if shard.process is None:
                    continue
                try:
                    shard.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
                shard.process.join(timeout=2)
                self._stop_process(shard.process)
                try:
                    shard.conn.close()
                except OSError:
                    pass
